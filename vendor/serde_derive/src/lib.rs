//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! workspace's serde shim.
//!
//! The build environment has no crates.io access, so this proc-macro crate is
//! written against the raw `proc_macro` API (no `syn`/`quote`): it parses the
//! derive input token stream by hand and emits the impl as source text.
//!
//! Supported input shapes — the ones the workspace uses:
//! * unit / tuple / named-field structs (no generics),
//! * enums with unit, newtype, tuple, and struct variants,
//! * `#[serde(with = "module")]` on named struct fields (serialization calls
//!   `module::serialize(&field, serializer)`).

#![allow(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    ty: String,
    with: Option<String>,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Input {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes one `#[...]` attribute if present, returning its bracket group.
    fn take_attribute(&mut self) -> Option<TokenStream> {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == '#' {
                let save = self.pos;
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Bracket {
                        let inner = g.stream();
                        self.pos += 1;
                        return Some(inner);
                    }
                }
                self.pos = save;
            }
        }
        None
    }

    /// Consumes every leading attribute, returning the `with = "path"` value
    /// of the last `#[serde(with = "...")]` attribute seen, if any.
    fn skip_attributes(&mut self) -> Option<String> {
        let mut with = None;
        while let Some(attr) = self.take_attribute() {
            if let Some(w) = parse_serde_with(attr) {
                with = Some(w);
            }
        }
        with
    }

    /// Consumes `pub` / `pub(...)` if present.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected {what}, found {other:?}"),
        }
    }
}

/// Extracts `path` from a `serde(with = "path")` attribute body.
fn parse_serde_with(attr: TokenStream) -> Option<String> {
    let mut tokens = attr.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return None,
    }
    let group = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        _ => return None,
    };
    let mut inner = group.stream().into_iter();
    match inner.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "with" => {}
        other => panic!("serde derive shim: unsupported serde attribute {other:?}"),
    }
    match inner.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
        other => panic!("serde derive shim: malformed serde(with) attribute {other:?}"),
    }
    match inner.next() {
        Some(TokenTree::Literal(lit)) => {
            let s = lit.to_string();
            Some(s.trim_matches('"').to_string())
        }
        other => panic!("serde derive shim: malformed serde(with) value {other:?}"),
    }
}

fn parse_input(stream: TokenStream) -> Input {
    let mut cursor = Cursor::new(stream);
    cursor.skip_attributes();
    cursor.skip_visibility();
    let keyword = cursor.expect_ident("`struct` or `enum`");
    let name = cursor.expect_ident("type name");
    if let Some(TokenTree::Punct(p)) = cursor.peek() {
        if p.as_char() == '<' {
            panic!("serde derive shim: generic types are not supported (deriving for `{name}`)");
        }
    }
    match keyword.as_str() {
        "struct" => {
            let shape = match cursor.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde derive shim: unsupported struct body {other:?}"),
            };
            Input::Struct { name, shape }
        }
        "enum" => {
            let body = match cursor.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde derive shim: unsupported enum body {other:?}"),
            };
            Input::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde derive shim: cannot derive for `{other}`"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cursor.at_end() {
        let with = cursor.skip_attributes();
        cursor.skip_visibility();
        let name = cursor.expect_ident("field name");
        match cursor.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("serde derive shim: expected `:` after field `{name}`, found {other:?}")
            }
        }
        // Capture the type: every token up to a top-level comma. Generic
        // arguments contain no top-level commas because `<...>` commas sit
        // between `<`/`>` puncts; track angle-bracket depth to respect them.
        let mut ty = String::new();
        let mut depth = 0i32;
        while let Some(token) = cursor.peek() {
            if let TokenTree::Punct(p) = token {
                match p.as_char() {
                    ',' if depth == 0 => {
                        cursor.next();
                        break;
                    }
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
            }
            ty.push_str(&token.to_string());
            ty.push(' ');
            cursor.next();
        }
        fields.push(Field {
            name,
            ty: ty.trim().to_string(),
            with,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for token in stream {
        any = true;
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                    continue;
                }
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cursor.at_end() {
        cursor.skip_attributes();
        let name = cursor.expect_ident("variant name");
        let shape = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = Shape::Tuple(count_tuple_fields(g.stream()));
                cursor.next();
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = Shape::Named(parse_named_fields(g.stream()));
                cursor.next();
                s
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        while let Some(token) = cursor.peek() {
            if let TokenTree::Punct(p) = token {
                if p.as_char() == ',' {
                    cursor.next();
                    break;
                }
            }
            cursor.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// Emits the serialization of one named field into `__state`, honouring
/// `#[serde(with = "...")]`.
fn gen_named_field(out: &mut String, trait_path: &str, field: &Field, value: &str) {
    if let Some(with) = &field.with {
        out.push_str(&format!(
            "{{\n\
             #[allow(non_camel_case_types)]\n\
             struct __SerdeWith<'__a>(&'__a ({ty}));\n\
             impl<'__a> ::serde::Serialize for __SerdeWith<'__a> {{\n\
             fn serialize<__S2: ::serde::Serializer>(&self, __s: __S2) -> ::core::result::Result<__S2::Ok, __S2::Error> {{\n\
             {with}::serialize(self.0, __s)\n\
             }}\n\
             }}\n\
             ::serde::ser::{trait_path}::serialize_field(&mut __state, \"{name}\", &__SerdeWith(&{value}))?;\n\
             }}\n",
            ty = field.ty,
            name = field.name,
        ));
    } else {
        out.push_str(&format!(
            "::serde::ser::{trait_path}::serialize_field(&mut __state, \"{name}\", &{value})?;\n",
            name = field.name,
        ));
    }
}

fn gen_serialize(input: &Input) -> String {
    let (name, body) = match input {
        Input::Struct { name, shape } => {
            let mut body = String::new();
            match shape {
                Shape::Unit => {
                    body.push_str(&format!(
                        "::serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")"
                    ));
                }
                Shape::Tuple(1) => {
                    body.push_str(&format!(
                        "::serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
                    ));
                }
                Shape::Tuple(n) => {
                    body.push_str(&format!(
                        "let mut __state = ::serde::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {n}usize)?;\n"
                    ));
                    for i in 0..*n {
                        body.push_str(&format!(
                            "::serde::ser::SerializeTupleStruct::serialize_field(&mut __state, &self.{i})?;\n"
                        ));
                    }
                    body.push_str("::serde::ser::SerializeTupleStruct::end(__state)");
                }
                Shape::Named(fields) => {
                    body.push_str(&format!(
                        "let mut __state = ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {n}usize)?;\n",
                        n = fields.len()
                    ));
                    for f in fields {
                        gen_named_field(
                            &mut body,
                            "SerializeStruct",
                            f,
                            &format!("self.{}", f.name),
                        );
                    }
                    body.push_str("::serde::ser::SerializeStruct::end(__state)");
                }
            }
            (name, body)
        }
        Input::Enum { name, variants } => {
            let mut body = String::from("match self {\n");
            for (index, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        body.push_str(&format!(
                            "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(__serializer, \"{name}\", {index}u32, \"{vname}\"),\n"
                        ));
                    }
                    Shape::Tuple(1) => {
                        body.push_str(&format!(
                            "{name}::{vname}(__f0) => ::serde::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {index}u32, \"{vname}\", __f0),\n"
                        ));
                    }
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        body.push_str(&format!(
                            "{name}::{vname}({binds}) => {{\n\
                             let mut __state = ::serde::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {index}u32, \"{vname}\", {n}usize)?;\n",
                            binds = binders.join(", ")
                        ));
                        for b in &binders {
                            body.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut __state, {b})?;\n"
                            ));
                        }
                        body.push_str("::serde::ser::SerializeTupleVariant::end(__state)\n},\n");
                    }
                    Shape::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        body.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                             let mut __state = ::serde::Serializer::serialize_struct_variant(__serializer, \"{name}\", {index}u32, \"{vname}\", {n}usize)?;\n",
                            binds = binders.join(", "),
                            n = fields.len()
                        ));
                        for f in fields {
                            let value = f.name.clone();
                            gen_named_field(&mut body, "SerializeStructVariant", f, &value);
                        }
                        body.push_str("::serde::ser::SerializeStructVariant::end(__state)\n},\n");
                    }
                }
            }
            body.push('}');
            (name, body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

/// Emits the expression deserializing one named field, honouring
/// `#[serde(with = "...")]` (which calls `module::deserialize(&mut __d)`).
fn gen_named_field_de(field: &Field) -> String {
    if let Some(with) = &field.with {
        format!("{name}: {with}::deserialize(&mut __d)?", name = field.name)
    } else {
        format!(
            "{name}: ::serde::Deserialize::deserialize(&mut __d)?",
            name = field.name
        )
    }
}

/// Emits the constructor expression for a shape; field order matches the
/// serializer, and struct-literal / call-argument evaluation order is source
/// order, so reads happen in exactly the written order.
fn gen_shape_de(path: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => path.to_string(),
        Shape::Tuple(n) => {
            let fields: Vec<String> = (0..*n)
                .map(|_| "::serde::Deserialize::deserialize(&mut __d)?".to_string())
                .collect();
            format!("{path}({})", fields.join(", "))
        }
        Shape::Named(fields) => {
            let fields: Vec<String> = fields.iter().map(gen_named_field_de).collect();
            format!("{path} {{ {} }}", fields.join(", "))
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    let (name, body) = match input {
        Input::Struct { name, shape } => {
            let body = format!("::core::result::Result::Ok({})", gen_shape_de(name, shape));
            (name, body)
        }
        Input::Enum { name, variants } => {
            let mut body = String::from(
                "let __tag = ::serde::de::Deserializer::read_variant_tag(&mut __d)?;\n\
                 match __tag {\n",
            );
            for (index, v) in variants.iter().enumerate() {
                body.push_str(&format!(
                    "{index}u32 => ::core::result::Result::Ok({}),\n",
                    gen_shape_de(&format!("{name}::{}", v.name), &v.shape)
                ));
            }
            body.push_str(&format!(
                "_ => ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\
                 ::std::format!(\"invalid variant tag {{}} for enum {name}\", __tag))),\n}}"
            ));
            (name, body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         #[allow(unused_mut, unused_variables)]\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(mut __d: __D) -> ::core::result::Result<Self, __D::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde derive shim generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde derive shim generated invalid Deserialize impl")
}
