//! A vendored, minimal re-implementation of the `criterion` benchmarking API
//! surface this workspace uses. It actually measures: each benchmark is
//! warmed up, then sampled, and the mean/min per-iteration time (plus element
//! throughput, when declared) is printed to stdout.
//!
//! This is not a statistical harness — no outlier analysis, no plots — but
//! the numbers are real and the API matches criterion closely enough that
//! swapping the real crate back in is a manifest change.

#![allow(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput declaration for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched setup output is sized; the shim treats these identically.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, self.sample_size, None, &mut f);
        self
    }
}

/// A named group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        run_benchmark(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut impl FnMut(&mut Bencher),
) {
    // Warmup pass.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iter.push(bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let mut line = format!(
        "{name}: mean {:.3} us, min {:.3} us over {samples} samples",
        mean * 1e6,
        min * 1e6
    );
    match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            line.push_str(&format!(", {:.0} elem/s", n as f64 / mean));
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            line.push_str(&format!(", {:.0} B/s", n as f64 / mean));
        }
        _ => {}
    }
    println!("{line}");
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // A few iterations per sample to amortize timer overhead.
        let iters = 8u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let iters = 2u64;
        let mut elapsed = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
        self.iters = iters;
    }

    /// Like [`Bencher::iter_batched`] but hands the routine a mutable
    /// reference to the input.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        let iters = 2u64;
        let mut elapsed = Duration::ZERO;
        for _ in 0..iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
        self.iters = iters;
    }
}

/// Declares a benchmark entry point running each listed function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
