//! A vendored, minimal re-implementation of the `crossbeam::channel` API
//! surface this workspace uses: unbounded multi-producer single-consumer
//! channels with cloneable senders, `len()`, and `recv_timeout()`.

#![allow(missing_docs)]

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        available: Condvar,
        senders: AtomicUsize,
        receiver_alive: AtomicBool,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            senders: AtomicUsize::new(1),
            receiver_alive: AtomicBool::new(true),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if !self.shared.receiver_alive.load(Ordering::Acquire) {
                return Err(SendError(value));
            }
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            queue.push_back(value);
            drop(queue);
            self.shared.available.notify_one();
            Ok(())
        }

        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake a receiver blocked in recv so it can
                // observe the disconnect.
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.shared.senders.load(Ordering::Acquire) == 0
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            match queue.pop_front() {
                Some(v) => Ok(v),
                None if self.disconnected() => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _result) = self
                    .shared
                    .available
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                queue = guard;
            }
        }

        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receiver_alive.store(false, Ordering::Release);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_and_len() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = unbounded::<i32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx2, rx2) = unbounded();
            drop(rx2);
            assert_eq!(tx2.send(5), Err(SendError(5)));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
            }
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
