//! A vendored, minimal re-implementation of the `rand` API surface this
//! workspace uses: a seedable deterministic generator (`rngs::StdRng`) and
//! `Rng::gen_range` over half-open ranges of floats and integers.
//!
//! The generator is SplitMix64 — statistically fine for synthetic test-data
//! generation, deterministic across platforms, and dependency-free. It is
//! **not** a cryptographic generator.

#![allow(missing_docs)]

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! int_uniform {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl SampleUniform for $ty {
                fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                    assert!(range.start < range.end, "gen_range: empty range");
                    let span = range.end.abs_diff(range.start) as u64;
                    // Modulo bias is negligible for the small spans used here.
                    let offset = rng.next_u64() % span;
                    (range.start as i128 + offset as i128) as $ty
                }
            }
        )+
    };
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        f64::sample_range(rng, range.start as f64..range.end as f64) as f32
    }
}

/// A source of randomness.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns a uniform value in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        f64::sample_range(self, 0.0..1.0)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_f64() < p
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
            let i = rng.gen_range(-10i32..10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
        assert!(samples.iter().any(|x| *x < 0.1));
        assert!(samples.iter().any(|x| *x > 0.9));
    }
}
