//! A vendored, minimal re-implementation of the `bytes` API surface this
//! workspace uses: cheaply-cloneable immutable byte buffers ([`Bytes`]), a
//! growable builder ([`BytesMut`]), and the little-endian cursor traits
//! ([`Buf`], [`BufMut`]).

#![allow(missing_docs)]

use std::ops::RangeBounds;
use std::sync::Arc;

/// A cheaply-cloneable, immutable slice of bytes.
///
/// Clones share the underlying allocation; [`Buf`] reads advance a private
/// cursor, so consuming reads operate on a clone without copying data.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice (copies it; the shim keeps one representation).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::copy_from_slice(bytes)
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Self {
            data: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Takes ownership of a `Vec<u8>` without copying.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        let end = bytes.len();
        Self {
            data: Arc::from(bytes.into_boxed_slice()),
            start: 0,
            end,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a slice of the contents sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(start <= end && end <= len, "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let len = data.len();
        Self {
            data: Arc::from(data.into_boxed_slice()),
            start: 0,
            end: len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl serde::Serialize for Bytes {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self.as_slice())
    }
}

impl<'de> serde::Deserialize<'de> for Bytes {
    fn deserialize<D: serde::Deserializer<'de>>(mut deserializer: D) -> Result<Self, D::Error> {
        let buf = deserializer.read_byte_buf()?;
        Ok(Bytes::from_vec(buf))
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the buffer into an immutable `Bytes`.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Sequential little-endian reads over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, count: usize);
    fn chunk(&self) -> &[u8];

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, count: usize) {
        assert!(count <= self.len(), "advance past end of Bytes");
        self.start += count;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Sequential little-endian writes into a byte sink.
pub trait BufMut {
    fn put_slice(&mut self, slice: &[u8]);

    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }

    fn put_f64_le(&mut self, value: f64) {
        self.put_u64_le(value.to_bits());
    }

    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }

    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u64_f64() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64_le(7);
        buf.put_f64_le(1.5);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 16);
        assert_eq!(bytes.get_u64_le(), 7);
        assert_eq!(bytes.get_f64_le(), 1.5);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn clone_shares_and_slice_narrows() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let s = b.slice(1..3);
        assert_eq!(s.as_slice(), &[2, 3]);
        let mut consuming = b.clone();
        consuming.advance(2);
        assert_eq!(consuming.as_slice(), &[3, 4]);
        assert_eq!(
            b.as_slice(),
            &[1, 2, 3, 4],
            "clone consumption is independent"
        );
    }
}
