//! The serialization half of the data model.

use std::fmt::Display;

/// Trait for serializer error types.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized into any serializer.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format that can serialize the serde data model.
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;

    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

pub trait SerializeSeq {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeTuple {
    type Ok;
    type Error: Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeTupleStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeTupleVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeMap {
    type Ok;
    type Error: Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeStructVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and common std types.
// ---------------------------------------------------------------------------

macro_rules! primitive_impl {
    ($ty:ty, $method:ident) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self)
            }
        }
    };
}

primitive_impl!(bool, serialize_bool);
primitive_impl!(i8, serialize_i8);
primitive_impl!(i16, serialize_i16);
primitive_impl!(i32, serialize_i32);
primitive_impl!(i64, serialize_i64);
primitive_impl!(u8, serialize_u8);
primitive_impl!(u16, serialize_u16);
primitive_impl!(u32, serialize_u32);
primitive_impl!(u64, serialize_u64);
primitive_impl!(f32, serialize_f32);
primitive_impl!(f64, serialize_f64);
primitive_impl!(char, serialize_char);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<S, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: IntoIterator,
    I::Item: Serialize,
{
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in iter {
        seq.serialize_element(&item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, N, self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize, St> Serialize for std::collections::HashSet<T, St> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

fn serialize_map_iter<'a, S, K, V, I>(serializer: S, len: usize, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: IntoIterator<Item = (&'a K, &'a V)>,
{
    let mut map = serializer.serialize_map(Some(len))?;
    for (k, v) in iter {
        map.serialize_key(k)?;
        map.serialize_value(v)?;
    }
    map.end()
}

impl<K: Serialize, V: Serialize, St> Serialize for std::collections::HashMap<K, V, St> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.len(), self.iter())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.len(), self.iter())
    }
}

macro_rules! tuple_impl {
    ($len:expr, $($ty:ident . $idx:tt),+) => {
        impl<$($ty: Serialize),+> Serialize for ($($ty,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tuple = serializer.serialize_tuple($len)?;
                $(tuple.serialize_element(&self.$idx)?;)+
                tuple.end()
            }
        }
    };
}

tuple_impl!(1, T0.0);
tuple_impl!(2, T0.0, T1.1);
tuple_impl!(3, T0.0, T1.1, T2.2);
tuple_impl!(4, T0.0, T1.1, T2.2, T3.3);

impl Serialize for std::time::Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut state = serializer.serialize_struct("Duration", 2)?;
        state.serialize_field("secs", &self.as_secs())?;
        state.serialize_field("nanos", &self.subsec_nanos())?;
        state.end()
    }
}
