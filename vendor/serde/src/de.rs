//! The deserialization half of the data model.
//!
//! Unlike real serde's visitor-based, self-describing API, this shim models a
//! *positional* data model: the deserializer exposes one `read_*` method per
//! primitive plus length/tag reads for compound shapes, and derived
//! [`Deserialize`] impls read fields back in declaration order. This is
//! exactly the information a compact non-self-describing binary format (like
//! the `nimbus-net` codec, the only format in the workspace) needs, and it
//! lets the hand-rolled derive in `serde_derive` generate real decoding code
//! without `syn`/`quote`.
//!
//! Reborrowing works like real serde's `&mut Serializer` pattern: every
//! `&mut D` is itself a [`Deserializer`], so nested fields deserialize with
//! `T::deserialize(&mut d)`.

use std::fmt::Display;

/// Trait for deserializer error types.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A positional deserializer over the compact binary data model written by
/// the matching [`crate::Serializer`] implementation.
///
/// Compound shapes are driven by the caller: structs and tuples read their
/// fields in order with no framing, sequences and maps start with
/// [`Deserializer::read_seq_len`] / [`Deserializer::read_map_len`], options
/// with [`Deserializer::read_option_tag`], and enums with
/// [`Deserializer::read_variant_tag`].
pub trait Deserializer<'de>: Sized {
    /// Error type produced on malformed input.
    type Error: Error;

    /// Reads a `bool` (one byte).
    fn read_bool(&mut self) -> Result<bool, Self::Error>;
    /// Reads an `i8`.
    fn read_i8(&mut self) -> Result<i8, Self::Error>;
    /// Reads an `i16`.
    fn read_i16(&mut self) -> Result<i16, Self::Error>;
    /// Reads an `i32`.
    fn read_i32(&mut self) -> Result<i32, Self::Error>;
    /// Reads an `i64`.
    fn read_i64(&mut self) -> Result<i64, Self::Error>;
    /// Reads a `u8`.
    fn read_u8(&mut self) -> Result<u8, Self::Error>;
    /// Reads a `u16`.
    fn read_u16(&mut self) -> Result<u16, Self::Error>;
    /// Reads a `u32`.
    fn read_u32(&mut self) -> Result<u32, Self::Error>;
    /// Reads a `u64`.
    fn read_u64(&mut self) -> Result<u64, Self::Error>;
    /// Reads an `f32`.
    fn read_f32(&mut self) -> Result<f32, Self::Error>;
    /// Reads an `f64`.
    fn read_f64(&mut self) -> Result<f64, Self::Error>;
    /// Reads a `char`.
    fn read_char(&mut self) -> Result<char, Self::Error>;
    /// Reads a length-prefixed UTF-8 string.
    fn read_string(&mut self) -> Result<String, Self::Error>;
    /// Reads a length-prefixed byte buffer.
    fn read_byte_buf(&mut self) -> Result<Vec<u8>, Self::Error>;
    /// Reads an option tag: `true` means a value follows.
    fn read_option_tag(&mut self) -> Result<bool, Self::Error>;
    /// Reads a unit value (nothing on the wire).
    fn read_unit(&mut self) -> Result<(), Self::Error> {
        Ok(())
    }
    /// Reads a sequence length prefix.
    fn read_seq_len(&mut self) -> Result<usize, Self::Error>;
    /// Reads a map length prefix.
    fn read_map_len(&mut self) -> Result<usize, Self::Error>;
    /// Reads an enum variant tag.
    fn read_variant_tag(&mut self) -> Result<u32, Self::Error>;
}

macro_rules! forward_read {
    ($($name:ident -> $ty:ty),+ $(,)?) => {
        $(
            fn $name(&mut self) -> Result<$ty, Self::Error> {
                (**self).$name()
            }
        )+
    };
}

impl<'de, D: Deserializer<'de>> Deserializer<'de> for &mut D {
    type Error = D::Error;

    forward_read!(
        read_bool -> bool,
        read_i8 -> i8,
        read_i16 -> i16,
        read_i32 -> i32,
        read_i64 -> i64,
        read_u8 -> u8,
        read_u16 -> u16,
        read_u32 -> u32,
        read_u64 -> u64,
        read_f32 -> f32,
        read_f64 -> f64,
        read_char -> char,
        read_string -> String,
        read_byte_buf -> Vec<u8>,
        read_option_tag -> bool,
        read_unit -> (),
        read_seq_len -> usize,
        read_map_len -> usize,
        read_variant_tag -> u32,
    );
}

/// A data structure that can be deserialized from the positional data model.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

macro_rules! primitive_de {
    ($($ty:ty => $method:ident),+ $(,)?) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
                    d.$method()
                }
            }
        )+
    };
}

primitive_de!(
    bool => read_bool,
    i8 => read_i8,
    i16 => read_i16,
    i32 => read_i32,
    i64 => read_i64,
    u8 => read_u8,
    u16 => read_u16,
    u32 => read_u32,
    u64 => read_u64,
    f32 => read_f32,
    f64 => read_f64,
    char => read_char,
    String => read_string,
);

// `usize`/`isize` serialize as 64-bit values; mirror that here.
impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        let v = d.read_u64()?;
        usize::try_from(v).map_err(|_| D::Error::custom(format!("usize overflow: {v}")))
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        let v = d.read_i64()?;
        isize::try_from(v).map_err(|_| D::Error::custom(format!("isize overflow: {v}")))
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        d.read_unit()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        if d.read_option_tag()? {
            Ok(Some(T::deserialize(&mut d)?))
        } else {
            Ok(None)
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Box::new(T::deserialize(d)?))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        let len = d.read_seq_len()?;
        // Do not trust `len` for pre-allocation: a malformed length must fail
        // on the first missing element, not abort on an oversized alloc.
        let mut out = Vec::new();
        for _ in 0..len {
            out.push(T::deserialize(&mut d)?);
        }
        Ok(out)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(d)?.into_iter().collect())
    }
}

impl<'de, T, St> Deserialize<'de> for std::collections::HashSet<T, St>
where
    T: Deserialize<'de> + Eq + std::hash::Hash,
    St: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(d)?.into_iter().collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Vec::<T>::deserialize(d)?.into_iter().collect())
    }
}

impl<'de, K, V, St> Deserialize<'de> for std::collections::HashMap<K, V, St>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    St: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        let len = d.read_map_len()?;
        let mut out = Self::default();
        for _ in 0..len {
            let k = K::deserialize(&mut d)?;
            let v = V::deserialize(&mut d)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        let len = d.read_map_len()?;
        let mut out = Self::new();
        for _ in 0..len {
            let k = K::deserialize(&mut d)?;
            let v = V::deserialize(&mut d)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

macro_rules! tuple_de {
    ($($ty:ident),+) => {
        impl<'de, $($ty: Deserialize<'de>),+> Deserialize<'de> for ($($ty,)+) {
            fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
                Ok(($($ty::deserialize(&mut d)?,)+))
            }
        }
    };
}

tuple_de!(T0);
tuple_de!(T0, T1);
tuple_de!(T0, T1, T2);
tuple_de!(T0, T1, T2, T3);

// Mirrors the `Serialize` impl: a two-field struct of (secs: u64, nanos: u32).
impl<'de> Deserialize<'de> for std::time::Duration {
    fn deserialize<D: Deserializer<'de>>(mut d: D) -> Result<Self, D::Error> {
        let secs = d.read_u64()?;
        let nanos = d.read_u32()?;
        if nanos >= 1_000_000_000 {
            return Err(D::Error::custom(format!(
                "Duration nanos out of range: {nanos}"
            )));
        }
        Ok(std::time::Duration::new(secs, nanos))
    }
}
