//! The deserialization half of the data model — a stub.
//!
//! Nothing in the workspace deserializes at runtime (the transport hands over
//! in-process messages, and the codec only *counts* bytes), so this module
//! provides just enough surface for `#[derive(Deserialize)]` and
//! `#[serde(with = "...")]` deserialize helpers to compile. Every derived
//! impl returns an "unsupported" error if it is ever invoked.

use std::fmt::Display;

/// Trait for deserializer error types.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A format that could drive deserialization. No formats are provided by the
/// shim; the trait exists so generic bounds in user code compile.
pub trait Deserializer<'de>: Sized {
    type Error: Error;
}

/// A data structure that can (nominally) be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

macro_rules! unsupported_impl {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
                    Err(D::Error::custom(concat!(
                        "the vendored serde shim does not support deserializing ",
                        stringify!($ty)
                    )))
                }
            }
        )+
    };
}

unsupported_impl!(
    bool, i8, i16, i32, i64, u8, u16, u32, u64, f32, f64, char, String, usize, isize,
);

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        Err(D::Error::custom(
            "the vendored serde shim does not support deserializing sequences",
        ))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        Err(D::Error::custom(
            "the vendored serde shim does not support deserializing options",
        ))
    }
}
