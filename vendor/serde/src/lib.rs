//! A vendored, minimal re-implementation of the `serde` surface this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of serde's API the workspace needs: the full *serialization*
//! data model (trait `Serialize`, trait `Serializer` and the seven compound
//! serializer traits), plus a stub *deserialization* side whose derived impls
//! always error. The only consumer of serialization in the workspace is the
//! byte-counting codec in `nimbus-net`, which models wire sizes; nothing
//! deserializes at runtime.
//!
//! The companion `serde_derive` crate provides `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` compatible with this shim, including
//! `#[serde(with = "module")]` on named struct fields.

#![allow(missing_docs)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
// Derive macros live in a separate namespace from the traits, so both
// re-exports can share the names `Serialize` / `Deserialize`.
pub use serde_derive::{Deserialize, Serialize};
