//! A vendored, minimal re-implementation of the `serde` surface this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of serde's API the workspace uses: the full *serialization*
//! data model (trait `Serialize`, trait `Serializer` and the seven compound
//! serializer traits), plus a *positional* deserialization side (trait
//! `Deserialize` over `de::Deserializer`'s typed `read_*` methods) that
//! mirrors the compact non-self-describing binary layout the serializer
//! models. The consumers in the workspace are the `nimbus-net` codec
//! (byte-size accounting and the real wire encoder/decoder).
//!
//! The companion `serde_derive` crate provides `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` compatible with this shim, including
//! `#[serde(with = "module")]` on named struct fields.

#![allow(missing_docs)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
// Derive macros live in a separate namespace from the traits, so both
// re-exports can share the names `Serialize` / `Deserialize`.
pub use serde_derive::{Deserialize, Serialize};
