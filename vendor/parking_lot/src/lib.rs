//! A vendored, minimal re-implementation of the `parking_lot` API surface
//! this workspace uses: `Mutex`, `RwLock`, and `Condvar` with parking_lot's
//! poison-free signatures, layered over `std::sync`.

#![allow(missing_docs)]

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex whose `lock` returns the guard directly (poisoning is swallowed).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard for [`Mutex::lock`]. Holds the std guard in an `Option` so the
/// condvar can temporarily take it during waits.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable operating on this crate's [`MutexGuard`].
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let mut guard = pair.0.lock();
        let result = pair.1.wait_for(&mut guard, Duration::from_millis(5));
        assert!(result.timed_out());
        drop(guard);

        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            *pair2.0.lock() = true;
            pair2.1.notify_all();
        });
        let mut guard = pair.0.lock();
        while !*guard {
            let result = pair.1.wait_for(&mut guard, Duration::from_secs(5));
            assert!(
                !result.timed_out() || *guard,
                "waited too long for the flag"
            );
        }
        t.join().unwrap();
        assert!(*guard);
    }
}
