//! # nimbus
//!
//! A from-scratch Rust reproduction of **Nimbus** and its *execution
//! templates* (Mashayekhi et al., "Execution Templates: Caching Control Plane
//! Decisions for Strong Scaling of Data Analytics", USENIX ATC 2017).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`core`](nimbus_core) — commands, task graphs, versioned data objects,
//!   and the execution-template structures (controller templates, worker
//!   templates, edits, patches);
//! * [`net`](nimbus_net) — message types and the in-process transport;
//! * [`worker`](nimbus_worker) / [`controller`](nimbus_controller) — the two
//!   halves of the control plane;
//! * [`driver`](nimbus_driver) — the driver-program API (typed datasets,
//!   stages, basic blocks);
//! * [`runtime`](nimbus_runtime) — the in-process cluster;
//! * [`apps`](nimbus_apps) — logistic regression, k-means, and the
//!   water-simulation proxy;
//! * [`baselines`](nimbus_baselines) — Spark-like, Naiad-like, and MPI-like
//!   comparison points;
//! * [`sim`](nimbus_sim) — the cluster simulator that regenerates the paper's
//!   scale-out figures.
//!
//! Application code should import through [`prelude`]:
//!
//! ```ignore
//! use nimbus::prelude::*;
//!
//! let setup = AppSetup::new()
//!     .function(ADD, "add", |ctx| { /* ... */ Ok(()) })
//!     .object(LogicalObjectId(1), |_| VecF64::zeros(8));
//! let cluster = Cluster::start(ClusterConfig::new(4), setup);
//! let report = cluster.run_driver(|ctx| {
//!     let data: Dataset<VecF64> = ctx.define_dataset("data", 8)?;
//!     /* blocks, stages, fetches */
//!     Ok(())
//! })?;
//! ```
//!
//! See `examples/quickstart.rs` for the full minimal end-to-end job.

#![warn(missing_docs)]

pub use nimbus_apps as apps;
pub use nimbus_baselines as baselines;
pub use nimbus_controller as controller;
pub use nimbus_core as core;
pub use nimbus_driver as driver;
pub use nimbus_net as net;
pub use nimbus_runtime as runtime;
pub use nimbus_sim as sim;
pub use nimbus_worker as worker;

pub use nimbus_driver::{
    AsDataset, Dataset, DatasetHandle, DriverContext, DriverError, DriverResult, ScalarReadable,
    Session, StageSpec,
};
pub use nimbus_runtime::{AppSetup, Cluster, ClusterConfig, ClusterReport};

/// The driver vocabulary in one import: everything a driver program needs to
/// register an application, start a cluster, define typed datasets, submit
/// staged basic blocks, and read back convergence scalars.
pub mod prelude {
    pub use nimbus_core::appdata::{downcast_mut, downcast_ref, AppData, Scalar, VecF64};
    pub use nimbus_core::ids::JobId;
    pub use nimbus_core::ids::{
        FunctionId, LogicalObjectId, LogicalPartition, PartitionIndex, StageId, TaskId, WorkerId,
    };
    pub use nimbus_core::TaskParams;
    pub use nimbus_driver::{
        AsDataset, Dataset, DatasetHandle, DriverContext, DriverError, DriverResult,
        PartitionMapping, ScalarReadable, Session, StageParams, StageSpec,
    };
    pub use nimbus_runtime::{AppSetup, Cluster, ClusterConfig, ClusterReport};
}
