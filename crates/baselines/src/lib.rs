//! # nimbus-baselines
//!
//! The comparison systems of the paper's evaluation, re-expressed over the
//! same substrate so the comparisons isolate control-plane behaviour:
//!
//! * [`spark_like`] — a centralized per-task scheduler (Spark-opt): the
//!   controller dispatches every task individually and workers never cache
//!   execution state. On the real runtime this is Nimbus with templates
//!   disabled; in the simulator it is the `CentralizedPerTask` model.
//! * [`naiad_like`] — a static distributed dataflow (Naiad-opt /
//!   TensorFlow-like): the execution plan is installed once on the workers
//!   and any scheduling change requires a full re-installation.
//! * [`mpi_like`] — application-level messaging with no control plane during
//!   execution, the hand-tuned comparison point of the water simulation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod mpi_like;
pub mod naiad_like;
pub mod spark_like;

pub use naiad_like::StaticDataflowDriver;
pub use spark_like::spark_like_config;
