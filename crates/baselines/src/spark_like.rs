//! Spark-like centralized per-task scheduling.
//!
//! The paper's "Spark-opt" baseline replaces Spark task bodies with
//! spin-waits so the comparison isolates the control plane. The equivalent
//! configuration here disables execution templates: every stage of every
//! iteration flows through the controller as individual task submissions and
//! per-task command dispatches, and workers receive one `ExecuteCommands`
//! batch per task instead of a template instantiation.

use std::time::Duration;

use nimbus_runtime::ClusterConfig;

/// Returns a cluster configuration that behaves like a centralized per-task
/// scheduler: templates disabled, optional spin-wait task duration to
/// equalize task cost with other control planes.
pub fn spark_like_config(workers: usize, spin_wait: Option<Duration>) -> ClusterConfig {
    let mut config = ClusterConfig::new(workers).without_templates();
    config.spin_wait = spin_wait;
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_disables_templates() {
        let c = spark_like_config(4, Some(Duration::from_micros(200)));
        assert!(!c.enable_templates);
        assert_eq!(c.workers, 4);
        assert_eq!(c.spin_wait, Some(Duration::from_micros(200)));
    }
}
