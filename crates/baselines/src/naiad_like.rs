//! Naiad-like static distributed dataflow.
//!
//! Naiad and TensorFlow install a data-flow graph on every worker when the
//! job starts; workers then generate and exchange work without the
//! controller. The equivalent here is a driver wrapper that records each
//! basic block exactly once (the "installation") and afterwards only
//! re-instantiates it verbatim: no edits, no migrations, no allocation
//! changes. Any change to the schedule requires tearing the plan down and
//! re-installing it, which is what Table 3 and Figure 10 charge the
//! distributed-dataflow design for.

use nimbus_driver::{DriverContext, DriverError, DriverResult};

/// A driver wrapper that enforces static-dataflow semantics.
pub struct StaticDataflowDriver<'a> {
    ctx: &'a mut DriverContext,
    installed: Vec<String>,
    frozen: bool,
    /// Number of complete re-installations performed (each models the
    /// ~230 ms data-flow installation cost of Table 3).
    pub reinstallations: u64,
}

impl<'a> StaticDataflowDriver<'a> {
    /// Wraps a driver context.
    pub fn new(ctx: &'a mut DriverContext) -> Self {
        Self {
            ctx,
            installed: Vec::new(),
            frozen: false,
            reinstallations: 0,
        }
    }

    /// Access to the underlying context for dataset definition and fetches.
    pub fn ctx(&mut self) -> &mut DriverContext {
        self.ctx
    }

    /// Executes a block. The first execution installs the plan; later
    /// executions replay it unchanged.
    pub fn run_block(
        &mut self,
        name: &str,
        body: impl FnOnce(&mut DriverContext) -> DriverResult<()>,
    ) -> DriverResult<()> {
        if self.frozen && !self.installed.iter().any(|b| b == name) {
            return Err(DriverError::Misuse(format!(
                "static dataflow is frozen; block '{name}' was not part of the installed plan"
            )));
        }
        if !self.installed.iter().any(|b| b == name) {
            self.installed.push(name.to_string());
        }
        self.ctx.block(name, body)
    }

    /// Freezes the plan: from now on only installed blocks may run and any
    /// scheduling change requires [`StaticDataflowDriver::reinstall`].
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Scheduling changes (migration, allocation change) are rejected; the
    /// caller must pay for a full re-installation instead.
    pub fn migrate_tasks(&mut self, _block: &str, _count: usize) -> DriverResult<()> {
        Err(DriverError::Misuse(
            "a static dataflow cannot migrate tasks in place; reinstall the plan".to_string(),
        ))
    }

    /// Tears the plan down and counts a full re-installation. The next
    /// execution of each block records it again from scratch.
    pub fn reinstall(&mut self) {
        self.reinstallations += 1;
        self.installed.clear();
        self.frozen = false;
    }

    /// Blocks currently part of the installed plan.
    pub fn installed_blocks(&self) -> &[String] {
        &self.installed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::appdata::VecF64;
    use nimbus_core::ids::FunctionId;
    use nimbus_core::TaskParams;
    use nimbus_driver::{Dataset, StageSpec};
    use nimbus_runtime::{AppSetup, Cluster, ClusterConfig};

    #[test]
    fn static_dataflow_installs_once_and_rejects_changes() {
        let setup = AppSetup::new()
            .function(FunctionId(1), "bump", |ctx| {
                let v = ctx.write::<VecF64>(0)?;
                for x in v.values.iter_mut() {
                    *x += 1.0;
                }
                Ok(())
            })
            .object(nimbus_core::LogicalObjectId(1), |_| VecF64::zeros(2));
        let cluster = Cluster::start(ClusterConfig::new(2), setup);
        let report = cluster
            .run_driver(|ctx| {
                let data: Dataset<VecF64> = ctx.define_dataset("data", 2)?;
                let mut dataflow = StaticDataflowDriver::new(ctx);
                for _ in 0..3 {
                    dataflow.run_block("step", |ctx| {
                        ctx.submit_stage(
                            StageSpec::new("bump", FunctionId(1))
                                .write(&data)
                                .params(TaskParams::empty()),
                        )
                    })?;
                }
                dataflow.freeze();
                assert!(dataflow.migrate_tasks("step", 1).is_err());
                assert!(dataflow.run_block("other", |_ctx| Ok(())).is_err());
                assert_eq!(dataflow.installed_blocks(), ["step".to_string()]);
                dataflow.reinstall();
                assert_eq!(dataflow.reinstallations, 1);
                dataflow.ctx().fetch(&data, 0)
            })
            .unwrap();
        assert_eq!(report.output, 3.0);
        assert_eq!(report.controller.controller_templates_installed, 1);
    }
}
