//! MPI-like application-level messaging.
//!
//! PhysBAM's hand-tuned MPI libraries partition the simulation statically and
//! exchange data directly between ranks with no scheduler in the loop. They
//! cannot rebalance load and offer no fault tolerance — which is why the
//! paper reports that developers rarely use them in practice despite the
//! performance. For the evaluation, this baseline contributes the
//! zero-control-plane lower bound on iteration time (Figure 11); it is
//! modeled analytically rather than executed, since by construction it has no
//! control-plane code path to exercise.

use nimbus_sim::{
    simulate_iteration, ClusterModel, ControlPlane, IterationBreakdown, WorkloadModel,
};

/// Characteristics of an MPI-style static execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MpiLike {
    /// Number of ranks (one per worker).
    pub ranks: u32,
}

impl MpiLike {
    /// Creates a model with one rank per worker.
    pub fn new(ranks: u32) -> Self {
        Self { ranks }
    }

    /// Iteration time of a workload under static, scheduler-free execution.
    pub fn iteration(&self, workload: &WorkloadModel) -> IterationBreakdown {
        simulate_iteration(
            &ControlPlane::ApplicationMpi,
            &ClusterModel::new(self.ranks),
            workload,
        )
    }

    /// Static execution cannot rebalance: a load imbalance factor directly
    /// inflates iteration time by the same factor.
    pub fn iteration_with_imbalance(
        &self,
        workload: &WorkloadModel,
        imbalance: f64,
    ) -> IterationBreakdown {
        let mut b = self.iteration(workload);
        b.total_us *= imbalance.max(1.0);
        b.control_us = 0.0;
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpi_has_no_control_plane_but_suffers_imbalance() {
        let mpi = MpiLike::new(64);
        let workload = WorkloadModel::water_simulation_frame();
        let balanced = mpi.iteration(&workload);
        assert_eq!(balanced.control_us, 0.0);
        let imbalanced = mpi.iteration_with_imbalance(&workload, 1.4);
        assert!(imbalanced.total_us > balanced.total_us * 1.39);
    }
}
