//! # nimbus-driver
//!
//! The driver program API: dataset definitions, stage builders, and named
//! basic blocks that transparently record and re-instantiate execution
//! templates. Data-dependent control flow (convergence loops, error
//! thresholds) is expressed with ordinary Rust `while`/`if` around
//! [`DriverContext::fetch_scalar`] — exactly the structure of Figure 3 in the
//! paper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod context;
pub mod dataset;
pub mod error;
pub mod stage;

pub use context::{DatasetHandle, DriverContext};
pub use dataset::{AsDataset, Dataset, ScalarReadable};
pub use error::{DriverError, DriverResult};
pub use stage::{PartitionMapping, StageAccess, StageParams, StageSpec};
