//! # nimbus-driver
//!
//! The driver program API: job-scoped [`Session`]s, dataset definitions,
//! stage builders, and named basic blocks that transparently record and
//! re-instantiate execution templates. Data-dependent control flow
//! (convergence loops, error thresholds) is expressed with ordinary Rust
//! `while`/`if` around [`Session::fetch_scalar`] — exactly the structure of
//! Figure 3 in the paper. Many sessions can run concurrently against one
//! controller; each is its own isolated job. [`DriverContext`] remains as a
//! deprecated alias of [`Session`] for pre-session driver programs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod context;
pub mod dataset;
pub mod error;
pub mod stage;

pub use context::{DatasetHandle, DriverContext, Session};
pub use dataset::{AsDataset, Dataset, ScalarReadable};
pub use error::{DriverError, DriverResult};
pub use stage::{PartitionMapping, StageAccess, StageParams, StageSpec};
