//! The driver session: a synchronous, job-scoped handle to the controller.
//!
//! A driver program opens a [`Session`] (the controller assigns it a
//! [`JobId`] through the `OpenJob`/`JobAccepted` handshake), defines
//! datasets, submits stages, and wraps its loop bodies in named basic
//! blocks. The first execution of a block records an execution template;
//! later executions of the same block run the body again locally (to
//! collect fresh parameters and honour data-dependent control flow) but
//! send the controller a single template-instantiation message instead of
//! one message per task.
//!
//! Many sessions can be open against one controller at once — each is its
//! own job, fully namespaced controller- and worker-side. [`DriverContext`]
//! remains as a deprecated alias of [`Session`] so pre-session driver
//! programs compile unchanged (they run as an implicitly opened session).

use std::collections::HashMap;
use std::time::Duration;

use nimbus_core::appdata::AppData;
use nimbus_core::clock::Clock;
use nimbus_core::data::DatasetDef;
use nimbus_core::ids::{
    IdGenerator, JobId, LogicalObjectId, LogicalPartition, PartitionIndex, StageId, TaskId,
    WorkerId,
};
use nimbus_core::task::TaskSpec;
use nimbus_core::template::InstantiationParams;
use nimbus_core::TaskParams;
use nimbus_net::{
    ControllerToDriver, DriverMessage, Message, NodeId, TransportEndpoint, TransportEvent,
};

use crate::dataset::{AsDataset, Dataset, ScalarReadable};
use crate::error::{DriverError, DriverResult};
use crate::stage::{PartitionMapping, StageSpec};

/// A handle to a defined dataset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetHandle {
    /// The logical object identifier.
    pub id: LogicalObjectId,
    /// The dataset's name.
    pub name: String,
    /// The number of partitions.
    pub partitions: u32,
}

impl DatasetHandle {
    /// The logical partition at `index`.
    pub fn partition(&self, index: u32) -> LogicalPartition {
        LogicalPartition::new(self.id, PartitionIndex(index))
    }
}

/// The stage structure a basic block submitted while it was recorded: the
/// task width of every stage, in submission order. Replays are validated
/// against this before any instantiation message goes out — comparing
/// per-stage widths (not just totals) catches bodies that resubmit the same
/// number of tasks distributed differently, which would silently misalign
/// the per-task parameter binding.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct BlockShape {
    stage_tasks: Vec<u32>,
}

impl BlockShape {
    fn stages(&self) -> usize {
        self.stage_tasks.len()
    }

    fn tasks(&self) -> u64 {
        self.stage_tasks.iter().map(|t| u64::from(*t)).sum()
    }

    /// Describes the first divergence from `other`, for error messages.
    fn divergence(&self, other: &BlockShape) -> String {
        for (i, (a, b)) in self.stage_tasks.iter().zip(&other.stage_tasks).enumerate() {
            if a != b {
                return format!("stage {i} had {a} tasks when recorded, {b} on replay");
            }
        }
        format!(
            "recorded {} stages / {} tasks, replay submitted {} stages / {} tasks",
            self.stages(),
            self.tasks(),
            other.stages(),
            other.tasks()
        )
    }
}

enum BlockMode {
    /// Outside any block: stages are submitted task by task.
    Direct,
    /// Inside the first execution of a block: stages are submitted task by
    /// task while the controller records the template.
    Recording { shape: BlockShape },
    /// Inside a repeat execution: stage submissions only collect parameters;
    /// one instantiation message is sent at block end.
    Replay {
        params: Vec<TaskParams>,
        shape: BlockShape,
    },
}

/// A driver program's session with the controller: one job.
///
/// Open one with [`Session::connect`] (the explicit handshake, which learns
/// the controller-assigned [`JobId`]) or [`Session::new`] (the legacy
/// implicit open, where the controller creates the job on first contact and
/// the session tags its traffic with the `JobId(0)` wildcard). Either way,
/// every dataset, stage, template, checkpoint, and fetch of this session is
/// namespaced by its job — concurrent sessions against one controller are
/// fully isolated from each other.
///
/// The endpoint is type-erased rather than generic so driver programs — the
/// user-facing API surface — keep the same `&mut Session` signature whether
/// the cluster runs in-process or over TCP.
pub struct Session {
    endpoint: Box<dyn TransportEndpoint>,
    /// The controller-assigned job, or `JobId(0)` for an implicit session
    /// (resolved controller-side through the session table).
    job: JobId,
    dataset_ids: IdGenerator,
    task_ids: IdGenerator,
    stage_ids: IdGenerator,
    recorded_blocks: HashMap<String, BlockShape>,
    templates_enabled: bool,
    mode: BlockMode,
    reply_timeout: Duration,
    /// Where reply deadlines are read from. Real for production drivers;
    /// the simulation harness installs its virtual clock so the reply
    /// timeout becomes a scheduler-visible virtual deadline.
    clock: Clock,
    /// Number of controller round trips performed (for tests and metrics).
    pub control_round_trips: u64,
    /// Number of task-submission messages sent (for tests and metrics).
    pub tasks_submitted: u64,
    /// Number of template instantiation messages sent.
    pub instantiations_sent: u64,
}

/// Deprecated alias of [`Session`].
///
/// The single-implicit-job `DriverContext` API predates multi-tenant
/// sessions; it is kept so existing driver programs compile unchanged. New
/// code should use [`Session::connect`] and hold a `Session`.
pub type DriverContext = Session;

impl Session {
    /// Creates an implicitly opened session over a registered driver
    /// endpoint (any transport). No handshake is performed: the controller
    /// opens the job on this session's first message, and traffic is tagged
    /// with the `JobId(0)` wildcard. Prefer [`Session::connect`], which
    /// learns the real job id.
    pub fn new(endpoint: impl TransportEndpoint) -> Self {
        Self {
            endpoint: Box::new(endpoint),
            job: JobId(0),
            dataset_ids: IdGenerator::new(),
            task_ids: IdGenerator::new(),
            stage_ids: IdGenerator::new(),
            recorded_blocks: HashMap::new(),
            templates_enabled: true,
            mode: BlockMode::Direct,
            reply_timeout: Duration::from_secs(60),
            clock: Clock::Real,
            control_round_trips: 0,
            tasks_submitted: 0,
            instantiations_sent: 0,
        }
    }

    /// Opens a session: sends `OpenJob` and waits for the controller's
    /// `JobAccepted`, so [`Session::job`] returns the controller-assigned
    /// job id and every subsequent message carries it explicitly.
    pub fn connect(endpoint: impl TransportEndpoint) -> DriverResult<Self> {
        Self::connect_with_clock(endpoint, Clock::Real)
    }

    /// [`Session::connect`] with an explicit clock for reply deadlines.
    /// The simulation harness uses this to put driver timeouts on virtual
    /// time; production code should keep [`Session::connect`].
    pub fn connect_with_clock(
        endpoint: impl TransportEndpoint,
        clock: Clock,
    ) -> DriverResult<Self> {
        let mut session = Self::new(endpoint);
        session.clock = clock;
        session.send(DriverMessage::OpenJob)?;
        match session.wait_reply("open_job")? {
            ControllerToDriver::JobAccepted { job } => {
                session.job = job;
                Ok(session)
            }
            other => Err(DriverError::Controller(format!(
                "unexpected reply to open_job: {}",
                other.tag()
            ))),
        }
    }

    /// This session's job. `JobId(0)` for an implicit (non-handshake)
    /// session — the controller resolves the wildcard through its session
    /// table.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// Ends this session's job: the controller releases the job's state on
    /// itself and on every worker, and confirms. The cluster (and any other
    /// session) keeps running.
    pub fn close(&mut self) -> DriverResult<()> {
        self.send(DriverMessage::CloseJob)?;
        match self.wait_reply("close_job")? {
            ControllerToDriver::JobTerminated => Ok(()),
            other => Err(DriverError::Controller(format!(
                "unexpected reply to close_job: {}",
                other.tag()
            ))),
        }
    }

    /// Sets the timeout used while waiting for controller replies.
    pub fn set_reply_timeout(&mut self, timeout: Duration) {
        self.reply_timeout = timeout;
    }

    /// Replaces the clock reply deadlines are read from (see
    /// [`Session::connect_with_clock`]).
    pub fn set_clock(&mut self, clock: Clock) {
        self.clock = clock;
    }

    /// Returns whether templates are currently enabled on this session.
    pub fn templates_enabled(&self) -> bool {
        self.templates_enabled
    }

    fn send(&mut self, msg: DriverMessage) -> DriverResult<()> {
        self.endpoint
            .send(NodeId::Controller, Message::Driver { job: self.job, msg })
            .map_err(|e| DriverError::Net(e.to_string()))
    }

    fn wait_reply(&mut self, what: &str) -> DriverResult<ControllerToDriver> {
        self.control_round_trips += 1;
        let deadline = self.clock.now() + self.reply_timeout;
        loop {
            let remaining = deadline
                .checked_duration_since(self.clock.now())
                .ok_or_else(|| DriverError::Timeout(what.to_string()))?;
            let envelope = self
                .endpoint
                .recv_timeout(remaining)
                .map_err(|_| DriverError::Timeout(what.to_string()))?;
            match envelope.message {
                Message::ToDriver(ControllerToDriver::Error { message }) => {
                    return Err(DriverError::Controller(message));
                }
                Message::ToDriver(reply) => return Ok(reply),
                // A dead controller cannot answer: fail fast instead of
                // sitting out the full reply timeout (TCP transport only).
                Message::Transport(TransportEvent::PeerDisconnected(NodeId::Controller)) => {
                    return Err(DriverError::Net(format!(
                        "controller disconnected while waiting for {what}"
                    )));
                }
                _ => continue,
            }
        }
    }

    fn expect_ack(&mut self, what: &str) -> DriverResult<()> {
        match self.wait_reply(what)? {
            ControllerToDriver::Ack
            | ControllerToDriver::TemplateInstalled { .. }
            | ControllerToDriver::BarrierReached
            | ControllerToDriver::CheckpointCommitted { .. }
            | ControllerToDriver::RecoveryComplete { .. } => Ok(()),
            other => Err(DriverError::Controller(format!(
                "unexpected reply to {what}: {}",
                other.tag()
            ))),
        }
    }

    /// Defines a dataset with `partitions` partitions whose partitions hold
    /// `T`.
    ///
    /// This is the primary definition API: the returned [`Dataset<T>`]
    /// carries the partition type, so scalar fetches of this dataset (and
    /// any typed code built over it) are checked at compile time.
    ///
    /// Note the link to the worker-side factory registered with
    /// `AppSetup::object::<T>` is positional, not checked: dataset ids are
    /// assigned in definition order and must line up with the
    /// `LogicalObjectId`s the factories were registered under. A `T` that
    /// disagrees with the factory's concrete type surfaces at runtime as a
    /// downcast error inside task functions, not here. (Dataset ids are
    /// per-session: two sessions' "dataset 1" are different datasets.)
    pub fn define_dataset<T: AppData>(
        &mut self,
        name: &str,
        partitions: u32,
    ) -> DriverResult<Dataset<T>> {
        Ok(Dataset::from_handle(
            self.define_dataset_untyped(name, partitions)?,
        ))
    }

    /// Defines a dataset without a compile-time partition type. Prefer
    /// [`Session::define_dataset`]; this exists for generic infrastructure
    /// (benchmark harnesses, baselines) that manufactures datasets
    /// dynamically.
    pub fn define_dataset_untyped(
        &mut self,
        name: &str,
        partitions: u32,
    ) -> DriverResult<DatasetHandle> {
        let id = LogicalObjectId(self.dataset_ids.next_raw());
        self.send(DriverMessage::DefineDataset(DatasetDef::new(
            id, name, partitions,
        )))?;
        self.expect_ack("define_dataset")?;
        Ok(DatasetHandle {
            id,
            name: name.to_string(),
            partitions,
        })
    }

    /// Submits one stage: expands it into one task per partition.
    pub fn submit_stage(&mut self, stage: StageSpec) -> DriverResult<()> {
        let tasks = stage.task_count();
        match &mut self.mode {
            BlockMode::Replay { params, shape } => {
                // Replay: only collect this execution's parameters, in the
                // same task order as the recorded template.
                shape.stage_tasks.push(tasks);
                for p in 0..tasks {
                    params.push(stage.params.for_partition(p));
                }
                Ok(())
            }
            mode => {
                if let BlockMode::Recording { shape } = mode {
                    shape.stage_tasks.push(tasks);
                }
                let stage_id = StageId(self.stage_ids.next_raw());
                for p in 0..tasks {
                    let reads = stage
                        .reads
                        .iter()
                        .map(|a| match a.mapping {
                            PartitionMapping::Same => a.dataset.partition(p),
                            PartitionMapping::Fixed(fp) => LogicalPartition::new(a.dataset.id, fp),
                        })
                        .collect();
                    let writes = stage
                        .writes
                        .iter()
                        .map(|a| match a.mapping {
                            PartitionMapping::Same => a.dataset.partition(p),
                            PartitionMapping::Fixed(fp) => LogicalPartition::new(a.dataset.id, fp),
                        })
                        .collect();
                    let spec = TaskSpec {
                        id: TaskId(self.task_ids.next_raw()),
                        stage: stage_id,
                        function: stage.function,
                        reads,
                        writes,
                        params: stage.params.for_partition(p),
                        preferred_worker: None,
                    };
                    self.tasks_submitted += 1;
                    self.send(DriverMessage::SubmitTask(spec))?;
                }
                Ok(())
            }
        }
    }

    /// Executes a named basic block.
    ///
    /// The first time a block runs (with templates enabled) the body's stages
    /// are submitted normally while the controller records a template; the
    /// block ends by installing the template. Subsequent executions run the
    /// body locally to collect parameters and send a single instantiation
    /// message. With templates disabled the body is submitted normally every
    /// time.
    pub fn block(
        &mut self,
        name: &str,
        body: impl FnOnce(&mut Session) -> DriverResult<()>,
    ) -> DriverResult<()> {
        if !matches!(self.mode, BlockMode::Direct) {
            return Err(DriverError::Misuse(format!(
                "block '{name}' started while another block is active"
            )));
        }
        if !self.templates_enabled {
            return body(self);
        }
        if let Some(recorded) = self.recorded_blocks.get(name).cloned() {
            self.mode = BlockMode::Replay {
                params: Vec::new(),
                shape: BlockShape::default(),
            };
            let result = body(self);
            let (params, replayed) = match std::mem::replace(&mut self.mode, BlockMode::Direct) {
                BlockMode::Replay { params, shape } => (params, shape),
                _ => (Vec::new(), BlockShape::default()),
            };
            result?;
            // Replay validation: the body must resubmit exactly the recorded
            // per-stage structure, otherwise the per-task parameter binding
            // sent to the controller would be silently misaligned.
            if replayed != recorded {
                return Err(DriverError::Misuse(format!(
                    "block '{name}' replayed a different shape than it recorded ({}); \
                     a block body must be structurally identical on every execution \
                     (move data-dependent structure outside the block or rename it)",
                    recorded.divergence(&replayed)
                )));
            }
            self.instantiations_sent += 1;
            self.send(DriverMessage::InstantiateTemplate {
                name: name.to_string(),
                params: InstantiationParams::PerTask(params),
            })
        } else {
            self.send(DriverMessage::StartTemplate {
                name: name.to_string(),
            })?;
            self.expect_ack("start_template")?;
            self.mode = BlockMode::Recording {
                shape: BlockShape::default(),
            };
            let result = body(self);
            let shape = match std::mem::replace(&mut self.mode, BlockMode::Direct) {
                BlockMode::Recording { shape } => shape,
                _ => BlockShape::default(),
            };
            if let Err(body_error) = result {
                // The body failed mid-recording: tell the controller to
                // discard the partial template so the name (and future
                // blocks) stay usable. Best effort — the body's error is
                // what the caller needs to see either way.
                let aborted = self
                    .send(DriverMessage::AbortTemplate {
                        name: name.to_string(),
                    })
                    .and_then(|()| self.expect_ack("abort_template"));
                drop(aborted);
                return Err(body_error);
            }
            self.send(DriverMessage::FinishTemplate {
                name: name.to_string(),
            })?;
            self.expect_ack("finish_template")?;
            self.recorded_blocks.insert(name.to_string(), shape);
            Ok(())
        }
    }

    /// Fetches the current scalar value of one partition of a dataset whose
    /// type is known to have a scalar projection. This is the typed
    /// counterpart of [`Session::fetch_scalar`]: fetching a dataset of a
    /// non-[`ScalarReadable`] partition type is a compile error.
    pub fn fetch<T: ScalarReadable>(
        &mut self,
        dataset: &Dataset<T>,
        partition: u32,
    ) -> DriverResult<f64> {
        self.fetch_scalar(dataset, partition)
    }

    /// Fetches the current scalar value of one partition (synchronizes with
    /// all outstanding work first). This is how data-dependent loops read
    /// their convergence criteria.
    pub fn fetch_scalar<D: AsDataset + ?Sized>(
        &mut self,
        dataset: &D,
        partition: u32,
    ) -> DriverResult<f64> {
        let lp = dataset.dataset_partition(partition);
        self.send(DriverMessage::FetchValue { partition: lp })?;
        match self.wait_reply("fetch_value")? {
            ControllerToDriver::ValueFetched { value, .. } => Ok(value),
            other => Err(DriverError::Controller(format!(
                "unexpected reply to fetch: {}",
                other.tag()
            ))),
        }
    }

    /// Waits until every outstanding command of this job has completed.
    pub fn barrier(&mut self) -> DriverResult<()> {
        self.send(DriverMessage::Barrier)?;
        self.expect_ack("barrier")
    }

    /// Requests a checkpoint tagged with an application progress marker.
    pub fn checkpoint(&mut self, marker: u64) -> DriverResult<()> {
        self.send(DriverMessage::Checkpoint { marker })?;
        self.expect_ack("checkpoint")
    }

    /// Enables or disables execution templates at runtime (Figure 9 starts
    /// with templates disabled and turns them on at iteration 10).
    pub fn enable_templates(&mut self, enabled: bool) -> DriverResult<()> {
        self.templates_enabled = enabled;
        if !enabled {
            self.recorded_blocks.clear();
        }
        self.send(DriverMessage::EnableTemplates(enabled))?;
        self.expect_ack("enable_templates")
    }

    /// Asks the controller to migrate `count` tasks of a block before its
    /// next execution (exercises template edits).
    pub fn migrate_tasks(&mut self, block: &str, count: usize) -> DriverResult<()> {
        self.send(DriverMessage::MigrateTasks {
            name: block.to_string(),
            count,
        })?;
        self.expect_ack("migrate_tasks")
    }

    /// Informs the controller of a new worker allocation (cluster-manager
    /// events in Figure 9). The allocation is shared by every job on the
    /// controller.
    pub fn set_worker_allocation(&mut self, workers: Vec<WorkerId>) -> DriverResult<()> {
        self.send(DriverMessage::SetWorkerAllocation { workers })?;
        self.expect_ack("set_worker_allocation")
    }

    /// Injects an abrupt worker failure and waits for recovery to finish.
    /// Returns the progress marker of the checkpoint execution resumed from.
    pub fn fail_worker(&mut self, worker: WorkerId) -> DriverResult<u64> {
        self.send(DriverMessage::FailWorker { worker })?;
        match self.wait_reply("fail_worker")? {
            ControllerToDriver::RecoveryComplete { marker } => Ok(marker),
            other => Err(DriverError::Controller(format!(
                "unexpected reply to fail_worker: {}",
                other.tag()
            ))),
        }
    }

    /// Shuts the whole cluster down (every job, every worker) and waits for
    /// the controller to confirm. To end only this session's job, use
    /// [`Session::close`].
    pub fn shutdown(&mut self) -> DriverResult<()> {
        self.send(DriverMessage::Shutdown)?;
        match self.wait_reply("shutdown")? {
            ControllerToDriver::JobTerminated => Ok(()),
            other => Err(DriverError::Controller(format!(
                "unexpected reply to shutdown: {}",
                other.tag()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::appdata::VecF64;
    use nimbus_core::ids::FunctionId;
    use nimbus_net::{LatencyModel, Network};

    /// Spawns a thread acknowledging every driver request like a controller
    /// would — including the `OpenJob` handshake — so `Session` can be
    /// unit-tested without a cluster.
    fn ack_controller(network: &Network) -> std::thread::JoinHandle<u64> {
        let endpoint = network.register(NodeId::Controller);
        std::thread::spawn(move || {
            let mut replies = 0u64;
            loop {
                let envelope = match endpoint.recv() {
                    Ok(e) => e,
                    Err(_) => return replies,
                };
                let from = envelope.from;
                let reply = match envelope.message {
                    Message::Driver {
                        msg: DriverMessage::Shutdown,
                        ..
                    } => {
                        let _ = endpoint
                            .send(from, Message::ToDriver(ControllerToDriver::JobTerminated));
                        return replies + 1;
                    }
                    Message::Driver {
                        msg: DriverMessage::OpenJob,
                        ..
                    } => Some(ControllerToDriver::JobAccepted { job: JobId(7) }),
                    Message::Driver {
                        msg: DriverMessage::CloseJob,
                        ..
                    } => Some(ControllerToDriver::JobTerminated),
                    Message::Driver {
                        msg: DriverMessage::SubmitTask(_),
                        ..
                    }
                    | Message::Driver {
                        msg: DriverMessage::InstantiateTemplate { .. },
                        ..
                    } => None,
                    Message::Driver { .. } => Some(ControllerToDriver::Ack),
                    _ => None,
                };
                if let Some(reply) = reply {
                    replies += 1;
                    let _ = endpoint.send(from, Message::ToDriver(reply));
                }
            }
        })
    }

    fn two_stage_body(ctx: &mut Session, data: &Dataset<VecF64>, stages: u32) -> DriverResult<()> {
        for s in 0..stages {
            ctx.submit_stage(
                StageSpec::new(format!("s{s}"), FunctionId(1))
                    .write(data)
                    .params(TaskParams::from_scalar(1.0)),
            )?;
        }
        Ok(())
    }

    /// The `OpenJob` handshake assigns the session its job, and subsequent
    /// traffic carries it.
    #[test]
    fn connect_learns_the_assigned_job() {
        let network = Network::new(LatencyModel::None);
        let controller = ack_controller(&network);
        let mut session = Session::connect(network.register(NodeId::Driver)).unwrap();
        assert_eq!(session.job(), JobId(7));
        session.close().unwrap();
        session.shutdown().unwrap();
        controller.join().unwrap();
    }

    /// The legacy constructor stays an implicit session: job zero, no
    /// handshake round trip.
    #[test]
    fn legacy_context_is_an_implicit_session() {
        let network = Network::new(LatencyModel::None);
        let controller = ack_controller(&network);
        let mut ctx = DriverContext::new(network.register(NodeId::Driver));
        assert_eq!(ctx.job(), JobId(0));
        ctx.barrier().unwrap();
        ctx.shutdown().unwrap();
        controller.join().unwrap();
    }

    #[test]
    fn replay_with_fewer_stages_is_misuse() {
        let network = Network::new(LatencyModel::None);
        let controller = ack_controller(&network);
        let mut ctx = Session::connect(network.register(NodeId::Driver)).unwrap();

        let data = ctx.define_dataset::<VecF64>("data", 4).unwrap();
        // Record with two stages (8 tasks).
        ctx.block("b", |ctx| two_stage_body(ctx, &data, 2)).unwrap();
        assert_eq!(ctx.tasks_submitted, 8);
        // Replay with one stage: rejected before any instantiation is sent.
        let err = ctx
            .block("b", |ctx| two_stage_body(ctx, &data, 1))
            .unwrap_err();
        assert!(matches!(err, DriverError::Misuse(_)), "got {err:?}");
        assert_eq!(ctx.instantiations_sent, 0);
        // A correctly-shaped replay still instantiates.
        ctx.block("b", |ctx| two_stage_body(ctx, &data, 2)).unwrap();
        assert_eq!(ctx.instantiations_sent, 1);

        ctx.shutdown().unwrap();
        controller.join().unwrap();
    }

    #[test]
    fn replay_with_different_task_count_is_misuse() {
        let network = Network::new(LatencyModel::None);
        let controller = ack_controller(&network);
        let mut ctx = Session::new(network.register(NodeId::Driver));

        let data = ctx.define_dataset::<VecF64>("data", 4).unwrap();
        ctx.block("b", |ctx| {
            ctx.submit_stage(StageSpec::new("s", FunctionId(1)).write(&data))
        })
        .unwrap();
        // Same stage count, but a different expansion width (1 task vs 4).
        let err = ctx
            .block("b", |ctx| {
                ctx.submit_stage(
                    StageSpec::new("s", FunctionId(1))
                        .write_partition(&data, 0)
                        .partitions(1),
                )
            })
            .unwrap_err();
        assert!(matches!(err, DriverError::Misuse(_)), "got {err:?}");
        assert_eq!(ctx.instantiations_sent, 0);

        ctx.shutdown().unwrap();
        controller.join().unwrap();
    }

    #[test]
    fn replay_with_same_totals_but_reordered_stages_is_misuse() {
        let network = Network::new(LatencyModel::None);
        let controller = ack_controller(&network);
        let mut ctx = Session::new(network.register(NodeId::Driver));

        let data = ctx.define_dataset::<VecF64>("data", 4).unwrap();
        // Record: wide stage (4 tasks) then narrow stage (1 task).
        ctx.block("b", |ctx| {
            ctx.submit_stage(StageSpec::new("wide", FunctionId(1)).write(&data))?;
            ctx.submit_stage(
                StageSpec::new("narrow", FunctionId(1))
                    .write_partition(&data, 0)
                    .partitions(1),
            )
        })
        .unwrap();
        // Replay with the stages swapped: same stage count (2) and same task
        // total (5), but the per-stage widths differ — the parameter binding
        // would be misaligned, so this must be rejected.
        let err = ctx
            .block("b", |ctx| {
                ctx.submit_stage(
                    StageSpec::new("narrow", FunctionId(1))
                        .write_partition(&data, 0)
                        .partitions(1),
                )?;
                ctx.submit_stage(StageSpec::new("wide", FunctionId(1)).write(&data))
            })
            .unwrap_err();
        assert!(matches!(err, DriverError::Misuse(_)), "got {err:?}");
        assert!(
            err.to_string().contains("stage 0"),
            "names the stage: {err}"
        );
        assert_eq!(ctx.instantiations_sent, 0);

        ctx.shutdown().unwrap();
        controller.join().unwrap();
    }

    #[test]
    fn failed_recording_sends_abort() {
        let network = Network::new(LatencyModel::None);
        let controller = ack_controller(&network);
        let mut ctx = Session::new(network.register(NodeId::Driver));

        let data = ctx.define_dataset::<VecF64>("data", 4).unwrap();
        let err = ctx
            .block("b", |ctx| {
                ctx.submit_stage(StageSpec::new("s", FunctionId(1)).write(&data))?;
                Err(DriverError::Misuse("application gave up".to_string()))
            })
            .unwrap_err();
        // The body's own error surfaces, and the block is NOT marked
        // recorded: the next execution records again instead of replaying.
        assert!(err.to_string().contains("application gave up"));
        ctx.block("b", |ctx| {
            ctx.submit_stage(StageSpec::new("s", FunctionId(1)).write(&data))
        })
        .unwrap();
        assert_eq!(ctx.instantiations_sent, 0, "second run re-records");

        ctx.shutdown().unwrap();
        controller.join().unwrap();
    }

    #[test]
    fn nested_blocks_are_misuse() {
        let network = Network::new(LatencyModel::None);
        let controller = ack_controller(&network);
        let mut ctx = Session::new(network.register(NodeId::Driver));

        let err = ctx
            .block("outer", |ctx| ctx.block("inner", |_| Ok(())))
            .unwrap_err();
        assert!(matches!(err, DriverError::Misuse(_)), "got {err:?}");

        ctx.shutdown().unwrap();
        controller.join().unwrap();
    }
}
