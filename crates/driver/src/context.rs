//! The driver context: a synchronous handle to the controller.
//!
//! A driver program defines datasets, submits stages, and wraps its loop
//! bodies in named basic blocks. The first execution of a block records an
//! execution template; later executions of the same block run the body again
//! locally (to collect fresh parameters and honour data-dependent control
//! flow) but send the controller a single template-instantiation message
//! instead of one message per task.

use std::collections::HashSet;
use std::time::Duration;

use nimbus_core::data::DatasetDef;
use nimbus_core::ids::{IdGenerator, LogicalObjectId, LogicalPartition, PartitionIndex, StageId, TaskId, WorkerId};
use nimbus_core::task::TaskSpec;
use nimbus_core::template::InstantiationParams;
use nimbus_core::TaskParams;
use nimbus_net::{ControllerToDriver, DriverMessage, Endpoint, Message, NodeId};

use crate::error::{DriverError, DriverResult};
use crate::stage::{PartitionMapping, StageSpec};

/// A handle to a defined dataset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetHandle {
    /// The logical object identifier.
    pub id: LogicalObjectId,
    /// The dataset's name.
    pub name: String,
    /// The number of partitions.
    pub partitions: u32,
}

impl DatasetHandle {
    /// The logical partition at `index`.
    pub fn partition(&self, index: u32) -> LogicalPartition {
        LogicalPartition::new(self.id, PartitionIndex(index))
    }
}

enum BlockMode {
    /// Outside any block: stages are submitted task by task.
    Direct,
    /// Inside the first execution of a block: stages are submitted task by
    /// task while the controller records the template.
    Recording,
    /// Inside a repeat execution: stage submissions only collect parameters;
    /// one instantiation message is sent at block end.
    Replay { params: Vec<TaskParams> },
}

/// The driver program's connection to the controller.
pub struct DriverContext {
    endpoint: Endpoint,
    dataset_ids: IdGenerator,
    task_ids: IdGenerator,
    stage_ids: IdGenerator,
    recorded_blocks: HashSet<String>,
    templates_enabled: bool,
    mode: BlockMode,
    reply_timeout: Duration,
    /// Number of controller round trips performed (for tests and metrics).
    pub control_round_trips: u64,
    /// Number of task-submission messages sent (for tests and metrics).
    pub tasks_submitted: u64,
    /// Number of template instantiation messages sent.
    pub instantiations_sent: u64,
}

impl DriverContext {
    /// Creates a context over a registered driver endpoint.
    pub fn new(endpoint: Endpoint) -> Self {
        Self {
            endpoint,
            dataset_ids: IdGenerator::new(),
            task_ids: IdGenerator::new(),
            stage_ids: IdGenerator::new(),
            recorded_blocks: HashSet::new(),
            templates_enabled: true,
            mode: BlockMode::Direct,
            reply_timeout: Duration::from_secs(60),
            control_round_trips: 0,
            tasks_submitted: 0,
            instantiations_sent: 0,
        }
    }

    /// Sets the timeout used while waiting for controller replies.
    pub fn set_reply_timeout(&mut self, timeout: Duration) {
        self.reply_timeout = timeout;
    }

    /// Returns whether templates are currently enabled on this driver.
    pub fn templates_enabled(&self) -> bool {
        self.templates_enabled
    }

    fn send(&mut self, msg: DriverMessage) -> DriverResult<()> {
        self.endpoint
            .send(NodeId::Controller, Message::Driver(msg))
            .map_err(|e| DriverError::Net(e.to_string()))
    }

    fn wait_reply(&mut self, what: &str) -> DriverResult<ControllerToDriver> {
        self.control_round_trips += 1;
        let deadline = std::time::Instant::now() + self.reply_timeout;
        loop {
            let remaining = deadline
                .checked_duration_since(std::time::Instant::now())
                .ok_or_else(|| DriverError::Timeout(what.to_string()))?;
            let envelope = self
                .endpoint
                .recv_timeout(remaining)
                .map_err(|_| DriverError::Timeout(what.to_string()))?;
            match envelope.message {
                Message::ToDriver(ControllerToDriver::Error { message }) => {
                    return Err(DriverError::Controller(message));
                }
                Message::ToDriver(reply) => return Ok(reply),
                _ => continue,
            }
        }
    }

    fn expect_ack(&mut self, what: &str) -> DriverResult<()> {
        match self.wait_reply(what)? {
            ControllerToDriver::Ack
            | ControllerToDriver::TemplateInstalled { .. }
            | ControllerToDriver::BarrierReached
            | ControllerToDriver::CheckpointCommitted { .. }
            | ControllerToDriver::RecoveryComplete { .. } => Ok(()),
            other => Err(DriverError::Controller(format!(
                "unexpected reply to {what}: {}",
                other.tag()
            ))),
        }
    }

    /// Defines a dataset with `partitions` partitions.
    pub fn define_dataset(&mut self, name: &str, partitions: u32) -> DriverResult<DatasetHandle> {
        let id = LogicalObjectId(self.dataset_ids.next_raw());
        self.send(DriverMessage::DefineDataset(DatasetDef::new(
            id, name, partitions,
        )))?;
        self.expect_ack("define_dataset")?;
        Ok(DatasetHandle {
            id,
            name: name.to_string(),
            partitions,
        })
    }

    /// Submits one stage: expands it into one task per partition.
    pub fn submit_stage(&mut self, stage: StageSpec) -> DriverResult<()> {
        let tasks = stage.task_count();
        match &mut self.mode {
            BlockMode::Replay { params } => {
                // Replay: only collect this execution's parameters, in the
                // same task order as the recorded template.
                for p in 0..tasks {
                    params.push(stage.params.for_partition(p));
                }
                Ok(())
            }
            _ => {
                let stage_id = StageId(self.stage_ids.next_raw());
                for p in 0..tasks {
                    let reads = stage
                        .reads
                        .iter()
                        .map(|a| match a.mapping {
                            PartitionMapping::Same => a.dataset.partition(p),
                            PartitionMapping::Fixed(fp) => {
                                LogicalPartition::new(a.dataset.id, fp)
                            }
                        })
                        .collect();
                    let writes = stage
                        .writes
                        .iter()
                        .map(|a| match a.mapping {
                            PartitionMapping::Same => a.dataset.partition(p),
                            PartitionMapping::Fixed(fp) => {
                                LogicalPartition::new(a.dataset.id, fp)
                            }
                        })
                        .collect();
                    let spec = TaskSpec {
                        id: TaskId(self.task_ids.next_raw()),
                        stage: stage_id,
                        function: stage.function,
                        reads,
                        writes,
                        params: stage.params.for_partition(p),
                        preferred_worker: None,
                    };
                    self.tasks_submitted += 1;
                    self.send(DriverMessage::SubmitTask(spec))?;
                }
                Ok(())
            }
        }
    }

    /// Executes a named basic block.
    ///
    /// The first time a block runs (with templates enabled) the body's stages
    /// are submitted normally while the controller records a template; the
    /// block ends by installing the template. Subsequent executions run the
    /// body locally to collect parameters and send a single instantiation
    /// message. With templates disabled the body is submitted normally every
    /// time.
    pub fn block(
        &mut self,
        name: &str,
        body: impl FnOnce(&mut DriverContext) -> DriverResult<()>,
    ) -> DriverResult<()> {
        if !matches!(self.mode, BlockMode::Direct) {
            return Err(DriverError::Misuse(format!(
                "block '{name}' started while another block is active"
            )));
        }
        if !self.templates_enabled {
            return body(self);
        }
        if self.recorded_blocks.contains(name) {
            self.mode = BlockMode::Replay { params: Vec::new() };
            let result = body(self);
            let params = match std::mem::replace(&mut self.mode, BlockMode::Direct) {
                BlockMode::Replay { params } => params,
                _ => Vec::new(),
            };
            result?;
            self.instantiations_sent += 1;
            self.send(DriverMessage::InstantiateTemplate {
                name: name.to_string(),
                params: InstantiationParams::PerTask(params),
            })
        } else {
            self.send(DriverMessage::StartTemplate {
                name: name.to_string(),
            })?;
            self.expect_ack("start_template")?;
            self.mode = BlockMode::Recording;
            let result = body(self);
            self.mode = BlockMode::Direct;
            result?;
            self.send(DriverMessage::FinishTemplate {
                name: name.to_string(),
            })?;
            self.expect_ack("finish_template")?;
            self.recorded_blocks.insert(name.to_string());
            Ok(())
        }
    }

    /// Fetches the current scalar value of one partition (synchronizes with
    /// all outstanding work first). This is how data-dependent loops read
    /// their convergence criteria.
    pub fn fetch_scalar(&mut self, dataset: &DatasetHandle, partition: u32) -> DriverResult<f64> {
        let lp = dataset.partition(partition);
        self.send(DriverMessage::FetchValue { partition: lp })?;
        match self.wait_reply("fetch_value")? {
            ControllerToDriver::ValueFetched { value, .. } => Ok(value),
            other => Err(DriverError::Controller(format!(
                "unexpected reply to fetch: {}",
                other.tag()
            ))),
        }
    }

    /// Waits until every outstanding command in the cluster has completed.
    pub fn barrier(&mut self) -> DriverResult<()> {
        self.send(DriverMessage::Barrier)?;
        self.expect_ack("barrier")
    }

    /// Requests a checkpoint tagged with an application progress marker.
    pub fn checkpoint(&mut self, marker: u64) -> DriverResult<()> {
        self.send(DriverMessage::Checkpoint { marker })?;
        self.expect_ack("checkpoint")
    }

    /// Enables or disables execution templates at runtime (Figure 9 starts
    /// with templates disabled and turns them on at iteration 10).
    pub fn enable_templates(&mut self, enabled: bool) -> DriverResult<()> {
        self.templates_enabled = enabled;
        if !enabled {
            self.recorded_blocks.clear();
        }
        self.send(DriverMessage::EnableTemplates(enabled))?;
        self.expect_ack("enable_templates")
    }

    /// Asks the controller to migrate `count` tasks of a block before its
    /// next execution (exercises template edits).
    pub fn migrate_tasks(&mut self, block: &str, count: usize) -> DriverResult<()> {
        self.send(DriverMessage::MigrateTasks {
            name: block.to_string(),
            count,
        })?;
        self.expect_ack("migrate_tasks")
    }

    /// Informs the controller of a new worker allocation (cluster-manager
    /// events in Figure 9).
    pub fn set_worker_allocation(&mut self, workers: Vec<WorkerId>) -> DriverResult<()> {
        self.send(DriverMessage::SetWorkerAllocation { workers })?;
        self.expect_ack("set_worker_allocation")
    }

    /// Injects an abrupt worker failure and waits for recovery to finish.
    /// Returns the progress marker of the checkpoint execution resumed from.
    pub fn fail_worker(&mut self, worker: WorkerId) -> DriverResult<u64> {
        self.send(DriverMessage::FailWorker { worker })?;
        match self.wait_reply("fail_worker")? {
            ControllerToDriver::RecoveryComplete { marker } => Ok(marker),
            other => Err(DriverError::Controller(format!(
                "unexpected reply to fail_worker: {}",
                other.tag()
            ))),
        }
    }

    /// Shuts the job down and waits for the controller to confirm.
    pub fn shutdown(&mut self) -> DriverResult<()> {
        self.send(DriverMessage::Shutdown)?;
        match self.wait_reply("shutdown")? {
            ControllerToDriver::JobTerminated => Ok(()),
            other => Err(DriverError::Controller(format!(
                "unexpected reply to shutdown: {}",
                other.tag()
            ))),
        }
    }
}
