//! Typed datasets: the compile-time layer over [`DatasetHandle`].
//!
//! A [`Dataset<T>`] remembers the application data type its partitions hold.
//! Defining a dataset with [`DriverContext::define_dataset::<T>`] makes the
//! partition type part of the driver's vocabulary:
//!
//! * the driver can only [`DriverContext::fetch`] convergence scalars from
//!   datasets whose type is [`ScalarReadable`] (checked at compile time),
//! * `T` documents — and typed code over the dataset enforces — the type
//!   task functions downcast to with `read::<T>` / `write::<T>`.
//!
//! The link to the worker-side factory (`AppSetup::object::<T>`) remains
//! positional: dataset ids are assigned in definition order, and a mismatch
//! surfaces as a runtime downcast error inside task functions.
//!
//! Untyped [`DatasetHandle`]s remain available (via
//! [`DriverContext::define_dataset_untyped`]) for generic infrastructure such
//! as the benchmark harness; every stage-builder and fetch API accepts both
//! through the [`AsDataset`] trait.
//!
//! [`DriverContext`]: crate::context::DriverContext
//! [`DriverContext::define_dataset::<T>`]: crate::context::DriverContext::define_dataset
//! [`DriverContext::fetch`]: crate::context::DriverContext::fetch
//! [`DriverContext::define_dataset_untyped`]: crate::context::DriverContext::define_dataset_untyped

use std::marker::PhantomData;

use nimbus_core::appdata::AppData;
use nimbus_core::ids::{LogicalObjectId, LogicalPartition};

use crate::context::DatasetHandle;

/// A dataset whose partitions are known (at compile time) to hold `T`.
///
/// Dereferences to the underlying [`DatasetHandle`], so `.partitions`,
/// `.name`, and `.partition(i)` work unchanged.
pub struct Dataset<T: AppData> {
    handle: DatasetHandle,
    _partition_type: PhantomData<fn() -> T>,
}

impl<T: AppData> Dataset<T> {
    /// Wraps an untyped handle, asserting its partitions hold `T`.
    ///
    /// This is the escape hatch for code that obtained a handle through the
    /// untyped API; [`DriverContext::define_dataset`] is the checked path.
    ///
    /// [`DriverContext::define_dataset`]: crate::context::DriverContext::define_dataset
    pub fn from_handle(handle: DatasetHandle) -> Self {
        Self {
            handle,
            _partition_type: PhantomData,
        }
    }

    /// The untyped handle.
    pub fn handle(&self) -> &DatasetHandle {
        &self.handle
    }

    /// Unwraps into the untyped handle.
    pub fn into_handle(self) -> DatasetHandle {
        self.handle
    }

    /// The dataset's logical object identifier.
    pub fn id(&self) -> LogicalObjectId {
        self.handle.id
    }
}

impl<T: AppData> Clone for Dataset<T> {
    fn clone(&self) -> Self {
        Self {
            handle: self.handle.clone(),
            _partition_type: PhantomData,
        }
    }
}

impl<T: AppData> std::fmt::Debug for Dataset<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Dataset<{}>({:?})",
            std::any::type_name::<T>(),
            self.handle
        )
    }
}

impl<T: AppData> std::ops::Deref for Dataset<T> {
    type Target = DatasetHandle;
    fn deref(&self) -> &DatasetHandle {
        &self.handle
    }
}

/// Anything that names a dataset: a typed [`Dataset<T>`] or a raw
/// [`DatasetHandle`]. Stage builders and fetches accept either.
pub trait AsDataset {
    /// The underlying untyped handle.
    fn dataset_handle(&self) -> &DatasetHandle;

    /// The logical partition at `index`.
    fn dataset_partition(&self, index: u32) -> LogicalPartition {
        self.dataset_handle().partition(index)
    }
}

impl AsDataset for DatasetHandle {
    fn dataset_handle(&self) -> &DatasetHandle {
        self
    }
}

impl<T: AppData> AsDataset for Dataset<T> {
    fn dataset_handle(&self) -> &DatasetHandle {
        &self.handle
    }
}

impl<D: AsDataset + ?Sized> AsDataset for &D {
    fn dataset_handle(&self) -> &DatasetHandle {
        (**self).dataset_handle()
    }
}

// The compile-time gate for typed fetches lives in `nimbus-core::appdata`,
// next to the `AppData::scalar_value` overrides it mirrors, so the two lists
// cannot drift apart.
pub use nimbus_core::appdata::ScalarReadable;

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::appdata::{Scalar, VecF64};

    fn handle() -> DatasetHandle {
        DatasetHandle {
            id: LogicalObjectId(3),
            name: "grid".to_string(),
            partitions: 4,
        }
    }

    #[test]
    fn typed_dataset_derefs_to_handle() {
        let d: Dataset<VecF64> = Dataset::from_handle(handle());
        assert_eq!(d.partitions, 4);
        assert_eq!(d.name, "grid");
        assert_eq!(d.id(), LogicalObjectId(3));
        assert_eq!(d.partition(2), handle().partition(2));
        assert!(format!("{d:?}").contains("VecF64"));
    }

    #[test]
    fn as_dataset_accepts_both_layers() {
        fn partitions_of(d: &impl AsDataset) -> u32 {
            d.dataset_handle().partitions
        }
        let raw = handle();
        let typed: Dataset<Scalar> = Dataset::from_handle(handle());
        assert_eq!(partitions_of(&raw), 4);
        assert_eq!(partitions_of(&typed), 4);
        assert_eq!(partitions_of(&&typed), 4);
    }
}
