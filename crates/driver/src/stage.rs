//! Stage builders: how a driver program describes parallel operations.
//!
//! A stage is a computation over datasets that expands into one task per
//! partition (Section 3.3). Reads and writes either follow the stage's
//! partitioning (task `p` touches partition `p`) or pin a fixed partition
//! (broadcast reads of a shared model, reductions into a single output).

use nimbus_core::ids::{FunctionId, PartitionIndex};
use nimbus_core::TaskParams;

use crate::context::DatasetHandle;
use crate::dataset::AsDataset;

/// How a stage's tasks map onto a dataset's partitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionMapping {
    /// Task `p` accesses partition `p` of the dataset.
    Same,
    /// Every task accesses the given fixed partition (broadcast/reduce).
    Fixed(PartitionIndex),
}

/// One dataset access of a stage.
#[derive(Clone, Debug)]
pub struct StageAccess {
    /// The dataset accessed.
    pub dataset: DatasetHandle,
    /// The partition mapping.
    pub mapping: PartitionMapping,
}

/// How per-task parameters are produced.
pub enum StageParams {
    /// Every task receives the same parameter block.
    Shared(TaskParams),
    /// Parameters are computed per partition index.
    PerPartition(Box<dyn Fn(u32) -> TaskParams>),
}

impl StageParams {
    /// Resolves the parameters for partition `p`.
    pub fn for_partition(&self, p: u32) -> TaskParams {
        match self {
            StageParams::Shared(params) => params.clone(),
            StageParams::PerPartition(f) => f(p),
        }
    }
}

/// A declarative description of one stage, built by the driver and expanded
/// into tasks by [`crate::context::DriverContext::submit_stage`].
pub struct StageSpec {
    /// Human-readable stage name (stable across iterations of a block).
    pub name: String,
    /// The application function every task of the stage runs.
    pub function: FunctionId,
    /// Datasets read by each task, in the order the function expects.
    pub reads: Vec<StageAccess>,
    /// Datasets written by each task, in the order the function expects.
    pub writes: Vec<StageAccess>,
    /// Parameter source.
    pub params: StageParams,
    /// Number of tasks; defaults to the partition count of the first
    /// `Same`-mapped access.
    pub partitions: Option<u32>,
}

impl StageSpec {
    /// Starts describing a stage.
    pub fn new(name: impl Into<String>, function: FunctionId) -> Self {
        Self {
            name: name.into(),
            function,
            reads: Vec::new(),
            writes: Vec::new(),
            params: StageParams::Shared(TaskParams::empty()),
            partitions: None,
        }
    }

    /// Adds a partition-aligned read.
    pub fn read<D: AsDataset + ?Sized>(mut self, dataset: &D) -> Self {
        self.reads.push(StageAccess {
            dataset: dataset.dataset_handle().clone(),
            mapping: PartitionMapping::Same,
        });
        self
    }

    /// Adds a broadcast read of one fixed partition (defaults to 0).
    pub fn read_broadcast<D: AsDataset + ?Sized>(mut self, dataset: &D) -> Self {
        self.reads.push(StageAccess {
            dataset: dataset.dataset_handle().clone(),
            mapping: PartitionMapping::Fixed(PartitionIndex(0)),
        });
        self
    }

    /// Adds a read of a specific fixed partition.
    pub fn read_partition<D: AsDataset + ?Sized>(mut self, dataset: &D, partition: u32) -> Self {
        self.reads.push(StageAccess {
            dataset: dataset.dataset_handle().clone(),
            mapping: PartitionMapping::Fixed(PartitionIndex(partition)),
        });
        self
    }

    /// Adds a partition-aligned write.
    pub fn write<D: AsDataset + ?Sized>(mut self, dataset: &D) -> Self {
        self.writes.push(StageAccess {
            dataset: dataset.dataset_handle().clone(),
            mapping: PartitionMapping::Same,
        });
        self
    }

    /// Adds a write to a specific fixed partition (reduction output).
    pub fn write_partition<D: AsDataset + ?Sized>(mut self, dataset: &D, partition: u32) -> Self {
        self.writes.push(StageAccess {
            dataset: dataset.dataset_handle().clone(),
            mapping: PartitionMapping::Fixed(PartitionIndex(partition)),
        });
        self
    }

    /// Sets a shared parameter block for every task of the stage.
    pub fn params(mut self, params: TaskParams) -> Self {
        self.params = StageParams::Shared(params);
        self
    }

    /// Sets a per-partition parameter function.
    pub fn params_per_partition(mut self, f: impl Fn(u32) -> TaskParams + 'static) -> Self {
        self.params = StageParams::PerPartition(Box::new(f));
        self
    }

    /// Overrides the number of tasks.
    pub fn partitions(mut self, n: u32) -> Self {
        self.partitions = Some(n);
        self
    }

    /// The number of tasks this stage expands into.
    pub fn task_count(&self) -> u32 {
        if let Some(n) = self.partitions {
            return n;
        }
        self.reads
            .iter()
            .chain(self.writes.iter())
            .find(|a| a.mapping == PartitionMapping::Same)
            .map(|a| a.dataset.partitions)
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::ids::LogicalObjectId;

    fn handle(id: u64, parts: u32) -> DatasetHandle {
        DatasetHandle {
            id: LogicalObjectId(id),
            name: format!("d{id}"),
            partitions: parts,
        }
    }

    #[test]
    fn task_count_follows_same_mapped_access() {
        let d = handle(1, 8);
        let g = handle(2, 1);
        let s = StageSpec::new("gradient", FunctionId(1))
            .read(&d)
            .read_broadcast(&g)
            .write(&d);
        assert_eq!(s.task_count(), 8);
        let reduce = StageSpec::new("reduce", FunctionId(2))
            .read_partition(&d, 3)
            .write_partition(&g, 0);
        assert_eq!(reduce.task_count(), 1);
        let forced = StageSpec::new("forced", FunctionId(3)).partitions(5);
        assert_eq!(forced.task_count(), 5);
    }

    #[test]
    fn params_resolution() {
        let shared = StageSpec::new("a", FunctionId(1)).params(TaskParams::from_scalar(2.0));
        assert_eq!(shared.params.for_partition(7).as_scalar().unwrap(), 2.0);
        let per = StageSpec::new("b", FunctionId(1))
            .params_per_partition(|p| TaskParams::from_scalar(p as f64));
        assert_eq!(per.params.for_partition(3).as_scalar().unwrap(), 3.0);
    }

    #[test]
    fn task_count_without_same_mapped_access_defaults_to_one() {
        // All accesses pin fixed partitions: nothing implies a width, so the
        // stage is a single task regardless of the datasets' partition counts.
        let d = handle(1, 8);
        let e = handle(2, 16);
        let s = StageSpec::new("pinned", FunctionId(1))
            .read_partition(&d, 7)
            .read_broadcast(&e)
            .write_partition(&e, 3);
        assert_eq!(s.task_count(), 1);
        // No accesses at all behaves the same.
        assert_eq!(StageSpec::new("empty", FunctionId(1)).task_count(), 1);
    }

    #[test]
    fn partitions_override_beats_same_and_fixed_mappings() {
        let d = handle(1, 8);
        let g = handle(2, 1);
        // Same-mapped access says 8, the override says 3: the override wins,
        // whether set before or after the accesses.
        let after = StageSpec::new("a", FunctionId(1)).read(&d).partitions(3);
        assert_eq!(after.task_count(), 3);
        let before = StageSpec::new("b", FunctionId(1)).partitions(3).read(&d);
        assert_eq!(before.task_count(), 3);
        // Override combined with only fixed mappings: still the override.
        let fixed = StageSpec::new("c", FunctionId(1))
            .read_partition(&d, 2)
            .write_partition(&g, 0)
            .partitions(5);
        assert_eq!(fixed.task_count(), 5);
        // The first Same-mapped access decides when several disagree.
        let mixed = StageSpec::new("d", FunctionId(1))
            .read_partition(&g, 0)
            .read(&d)
            .write(&handle(3, 2));
        assert_eq!(mixed.task_count(), 8);
    }

    #[test]
    fn for_partition_per_partition_closure_sees_every_index() {
        let per = StageParams::PerPartition(Box::new(|p| TaskParams::from_u64s(&[p as u64 * 2])));
        for p in [0u32, 1, 31] {
            assert_eq!(
                per.for_partition(p).as_u64s().unwrap(),
                vec![p as u64 * 2],
                "partition {p}"
            );
        }
        // Shared params are cloned identically for any index, including ones
        // past the stage's width.
        let shared = StageParams::Shared(TaskParams::from_scalar(4.0));
        assert_eq!(shared.for_partition(0).as_scalar().unwrap(), 4.0);
        assert_eq!(shared.for_partition(1_000_000).as_scalar().unwrap(), 4.0);
        // An empty shared block stays empty per task.
        let empty = StageParams::Shared(TaskParams::empty());
        assert!(empty.for_partition(9).is_empty());
    }
}
