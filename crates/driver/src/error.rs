//! Driver-side error types.

use std::fmt;

/// Errors surfaced to the driver program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// The controller rejected a request.
    Controller(String),
    /// The transport failed or timed out.
    Net(String),
    /// The driver used the block API incorrectly (for example nesting two
    /// blocks with the same name).
    Misuse(String),
    /// A reply from the controller did not arrive in time.
    Timeout(String),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Controller(m) => write!(f, "controller error: {m}"),
            DriverError::Net(m) => write!(f, "transport error: {m}"),
            DriverError::Misuse(m) => write!(f, "driver misuse: {m}"),
            DriverError::Timeout(m) => write!(f, "timed out waiting for {m}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// Result alias for driver operations.
pub type DriverResult<T> = Result<T, DriverError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(DriverError::Timeout("barrier".into())
            .to_string()
            .contains("barrier"));
    }
}
