//! Template management on the controller: recording basic blocks, generating
//! controller and worker templates, planning instantiations (with validation
//! and patching), and planning migration edits.
//!
//! This module implements Section 4 of the paper. Recording happens while the
//! block's tasks are being scheduled normally; at the end of the block the
//! recorded task stream is post-processed into table-based templates. On
//! later executions of the block the controller validates preconditions
//! (skipping validation entirely for back-to-back runs of a self-validating
//! template), patches data placement if needed, and sends one small
//! instantiation message per worker.

use std::collections::{HashMap, HashSet};

use nimbus_core::graph::AssignedCommand;
use nimbus_core::ids::{
    CommandId, LogicalPartition, PhysicalObjectId, TaskId, TemplateId, TransferId, WorkerId,
};
use nimbus_core::task::TaskSpec;
use nimbus_core::template::{
    compute_patch, validate_preconditions, ControllerTaskEntry, ControllerTemplate,
    InstantiationParams, Patch, PatchCache, PatchDirective, Precondition, SkeletonEntry,
    SkeletonKind, TemplateEdit, TemplateRegistry, WorkerInstantiation, WorkerTemplate,
    WorkerTemplateGroup,
};
use nimbus_core::{Command, CommandKind, TaskParams};

use crate::data_manager::DataManager;
use crate::error::{ControllerError, ControllerResult};
use crate::expansion::{Bookkeeping, ExpandedTask, IdGens};

/// Result of finishing a recording: the controller template, its worker
/// template group, and the per-worker templates to install.
pub type InstalledTemplates = (TemplateId, TemplateId, Vec<(WorkerId, WorkerTemplate)>);

/// State accumulated while a basic block is being recorded.
pub struct RecordingState {
    /// The block name the driver supplied.
    pub name: String,
    entries: Vec<ControllerTaskEntry>,
    commands: Vec<AssignedCommand>,
    entry_of_command: HashMap<CommandId, usize>,
    lp_last_writer: HashMap<LogicalPartition, usize>,
    lp_readers: HashMap<LogicalPartition, Vec<usize>>,
}

impl RecordingState {
    /// Starts recording a block.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            entries: Vec::new(),
            commands: Vec::new(),
            entry_of_command: HashMap::new(),
            lp_last_writer: HashMap::new(),
            lp_readers: HashMap::new(),
        }
    }

    /// Records one task (already expanded and dispatched) into the block.
    pub fn record_task(&mut self, spec: &TaskSpec, expanded: &ExpandedTask) {
        let index = self.entries.len();
        let mut before = Vec::new();
        for lp in &spec.reads {
            if let Some(w) = self.lp_last_writer.get(lp) {
                before.push(*w);
            }
        }
        for lp in &spec.writes {
            if let Some(w) = self.lp_last_writer.get(lp) {
                before.push(*w);
            }
            if let Some(rs) = self.lp_readers.get(lp) {
                before.extend(rs.iter().copied());
            }
        }
        before.retain(|b| *b < index);
        before.sort_unstable();
        before.dedup();

        self.entries.push(ControllerTaskEntry {
            index,
            stage: spec.stage,
            function: spec.function,
            reads: spec.reads.clone(),
            writes: spec.writes.clone(),
            before,
            assigned_worker: expanded.worker,
            default_params: spec.params.clone(),
        });
        for lp in &spec.reads {
            self.lp_readers.entry(*lp).or_default().push(index);
        }
        for lp in &spec.writes {
            self.lp_last_writer.insert(*lp, index);
            self.lp_readers.insert(*lp, Vec::new());
        }
        self.commands.extend(expanded.commands.iter().cloned());
        self.entry_of_command.insert(expanded.task_command, index);
    }

    /// Number of tasks recorded so far.
    pub fn task_count(&self) -> usize {
        self.entries.len()
    }
}

/// Everything the controller must send to execute a planned instantiation.
pub struct InstantiationPlan {
    /// The worker-template group being instantiated.
    pub group: TemplateId,
    /// Patch commands to dispatch before the instantiation messages.
    pub patch_commands: Vec<AssignedCommand>,
    /// One instantiation message per worker.
    pub per_worker: Vec<(WorkerId, WorkerInstantiation)>,
    /// True if validation was skipped (back-to-back self-validating run).
    pub auto_validated: bool,
    /// True if a cached patch was reused.
    pub patch_cache_hit: bool,
    /// Number of worker commands this instantiation will produce.
    pub expected_commands: u64,
    /// Number of tasks this instantiation schedules.
    pub task_count: u64,
}

/// Controller-side template bookkeeping.
pub struct TemplateManager {
    /// Installed controller templates and worker-template groups.
    pub registry: TemplateRegistry,
    /// Cached patches.
    pub patch_cache: PatchCache,
    /// The group that executed most recently (for auto-validation and patch
    /// cache keys).
    pub last_executed: Option<TemplateId>,
    /// Instrumentation: basic-block recordings finished since creation. The
    /// membership-churn tests pin this against [`Self::edits_planned`] to
    /// prove that rejoin is served by edits, never by re-recording.
    pub recordings_finished: u64,
    /// Instrumentation: template edits queued since creation.
    pub edits_planned: u64,
    recording: Option<RecordingState>,
    /// Edits planned but not yet shipped, per group and worker.
    pending_edits: HashMap<TemplateId, HashMap<WorkerId, Vec<TemplateEdit>>>,
    /// Reusable sorted-worker scratch for [`Self::plan_instantiation`], so
    /// steady-state planning does not materialize a fresh worker list per
    /// block.
    worker_scratch: Vec<WorkerId>,
}

impl Default for TemplateManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TemplateManager {
    /// Creates an empty template manager.
    pub fn new() -> Self {
        Self {
            registry: TemplateRegistry::new(),
            patch_cache: PatchCache::new(),
            last_executed: None,
            recordings_finished: 0,
            edits_planned: 0,
            recording: None,
            pending_edits: HashMap::new(),
            worker_scratch: Vec::new(),
        }
    }

    /// Returns true if a block is currently being recorded.
    pub fn is_recording(&self) -> bool {
        self.recording.is_some()
    }

    /// Name of the block currently being recorded, if any.
    pub fn recording_name(&self) -> Option<&str> {
        self.recording.as_ref().map(|r| r.name.as_str())
    }

    /// Starts recording a basic block.
    pub fn start_recording(&mut self, name: &str) -> ControllerResult<()> {
        if let Some(r) = &self.recording {
            return Err(ControllerError::RecordingStateMismatch(format!(
                "cannot start '{name}' while '{}' is still recording",
                r.name
            )));
        }
        self.recording = Some(RecordingState::new(name));
        Ok(())
    }

    /// Records an expanded task into the open block, if one is recording.
    pub fn record_task(&mut self, spec: &TaskSpec, expanded: &ExpandedTask) {
        if let Some(r) = &mut self.recording {
            r.record_task(spec, expanded);
        }
    }

    /// Finishes recording: builds and installs the controller template and
    /// the worker-template group, and returns the worker templates that must
    /// be installed on workers.
    pub fn finish_recording(
        &mut self,
        name: &str,
        dm: &DataManager,
        ids: &IdGens,
    ) -> ControllerResult<InstalledTemplates> {
        let recording = self.recording.take().ok_or_else(|| {
            ControllerError::RecordingStateMismatch(format!(
                "finish of '{name}' without a matching start"
            ))
        })?;
        if recording.name != name {
            return Err(ControllerError::RecordingStateMismatch(format!(
                "finish of '{name}' while recording '{}'",
                recording.name
            )));
        }
        let ct_id = TemplateId(ids.templates.next_raw());
        let controller_template =
            ControllerTemplate::new(ct_id, recording.name.clone(), recording.entries.clone())?;
        let group_id = TemplateId(ids.templates.next_raw());
        let group = build_group(
            group_id,
            &controller_template,
            &recording.commands,
            &recording.entry_of_command,
            dm,
        )?;
        let installs: Vec<(WorkerId, WorkerTemplate)> = group
            .per_worker
            .iter()
            .map(|(w, t)| (*w, t.clone()))
            .collect();
        self.registry
            .install_controller_template(controller_template);
        self.registry.install_group(group);
        self.recordings_finished += 1;
        Ok((ct_id, group_id, installs))
    }

    /// Abandons an in-progress recording without installing anything: the
    /// driver's block body failed, so the partial template is discarded.
    /// Aborting when nothing is recording is a no-op (templates may be
    /// disabled, or the start itself may have failed).
    pub fn abort_recording(&mut self, name: &str) -> ControllerResult<()> {
        match &self.recording {
            Some(r) if r.name != name => Err(ControllerError::RecordingStateMismatch(format!(
                "abort of '{name}' while recording '{}'",
                r.name
            ))),
            _ => {
                self.recording = None;
                Ok(())
            }
        }
    }

    /// Installs a pre-built group (used when regenerating templates after an
    /// allocation change).
    pub fn install_group(&mut self, group: WorkerTemplateGroup) -> Vec<(WorkerId, WorkerTemplate)> {
        let installs: Vec<(WorkerId, WorkerTemplate)> = group
            .per_worker
            .iter()
            .map(|(w, t)| (*w, t.clone()))
            .collect();
        self.registry.install_group(group);
        installs
    }

    /// Queues migration edits for the group currently serving `block`,
    /// migrating up to `count` tasks to other workers of the allocation
    /// (each worker sheds tasks to its successor in the sorted worker list).
    /// Returns how many tasks were actually planned for migration.
    pub fn plan_migrations(
        &mut self,
        block: &str,
        count: usize,
        workers: &[WorkerId],
        dm: &mut DataManager,
    ) -> ControllerResult<usize> {
        if workers.len() < 2 || count == 0 {
            return Ok(0);
        }
        let ct = self
            .registry
            .controller_template_by_name(block)
            .ok_or_else(|| ControllerError::UnknownBlock(block.to_string()))?;
        let ct_id = ct.id;
        let group_id = self
            .registry
            .find_group_for_workers(ct_id, workers)
            .map(|g| g.id)
            .ok_or_else(|| ControllerError::UnknownBlock(block.to_string()))?;
        self.plan_group_migrations(group_id, count, None, dm)
    }

    /// Queues migration edits moving up to `count` tasks of `group_id` onto
    /// `dest` (from every other member, round-robin). This is the
    /// partition-migration half of the rejoin handshake: a worker admitted
    /// into a running job receives its share of the block through template
    /// edits, never through re-recording.
    pub fn plan_migrations_to(
        &mut self,
        group_id: TemplateId,
        dest: WorkerId,
        count: usize,
        dm: &mut DataManager,
    ) -> ControllerResult<usize> {
        self.plan_group_migrations(group_id, count, Some(dest), dm)
    }

    /// Shared planner: migrates up to `count` tasks of the group. With
    /// `dest_override` every move targets that worker; otherwise each source
    /// sheds to its successor in the sorted member list.
    fn plan_group_migrations(
        &mut self,
        group_id: TemplateId,
        count: usize,
        dest_override: Option<WorkerId>,
        dm: &mut DataManager,
    ) -> ControllerResult<usize> {
        if count == 0 {
            return Ok(0);
        }
        // Task entries already queued for each destination but not yet
        // applied (earlier planning rounds): their slots are taken.
        let mut queued_task_adds: HashMap<WorkerId, usize> = HashMap::new();
        if let Some(pending) = self.pending_edits.get(&group_id) {
            for (w, edits) in pending {
                let adds = edits
                    .iter()
                    .filter(
                        |e| matches!(e, TemplateEdit::AddEntry { entry } if entry.kind.is_task()),
                    )
                    .count();
                queued_task_adds.insert(*w, adds);
            }
        }
        let group = self.registry.group_mut(group_id)?;

        let mut planned = 0usize;
        let worker_list: Vec<WorkerId> = group.workers();
        let mut edits_by_worker: HashMap<WorkerId, Vec<TemplateEdit>> = HashMap::new();

        'outer: for (wi, source) in worker_list.iter().enumerate() {
            let dest = dest_override.unwrap_or(worker_list[(wi + 1) % worker_list.len()]);
            if dest == *source {
                continue;
            }
            // Collect candidate task entries on the source worker.
            let candidates: Vec<(usize, SkeletonEntry)> = {
                let st = group
                    .per_worker
                    .get(source)
                    .expect("group worker list matches per_worker");
                st.entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.kind.is_task() && e.writes.len() == 1)
                    .map(|(i, e)| (i, e.clone()))
                    .collect()
            };
            for (entry_index, entry) in candidates {
                if planned >= count {
                    break 'outer;
                }
                let taken = queued_task_adds.entry(dest).or_insert(0);
                let Some((dest_edits, source_edit)) =
                    plan_entry_move(group, dm, *source, dest, entry_index, &entry, *taken)
                else {
                    continue;
                };
                *taken += 1;
                edits_by_worker
                    .entry(*source)
                    .or_default()
                    .push(source_edit);
                edits_by_worker.entry(dest).or_default().extend(dest_edits);
                planned += 1;
            }
        }

        if planned > 0 {
            self.patch_cache.invalidate_target(group_id);
            let pending = self.pending_edits.entry(group_id).or_default();
            for (w, edits) in edits_by_worker {
                self.edits_planned += edits.len() as u64;
                pending.entry(w).or_default().extend(edits);
            }
        }
        Ok(planned)
    }

    /// Admits `joining` into every installed group as part of the rejoin
    /// handshake for a worker the controller has no live templates for:
    ///
    /// 1. Groups referencing a *previous incarnation* of the worker are
    ///    retired — their skeletons point at physical instances that died
    ///    with it and could never validate again.
    /// 2. Each surviving group gains an (initially empty) member template
    ///    for the worker, returned so the controller can install it.
    /// 3. A fair share of each group's tasks is queued to migrate onto the
    ///    worker through template edits; the data those tasks need follows
    ///    through the ordinary precondition/patch copy path.
    ///
    /// Returns the templates to install and the number of task migrations
    /// planned.
    pub fn admit_worker(
        &mut self,
        joining: WorkerId,
        workers_after: &[WorkerId],
        dm: &mut DataManager,
    ) -> ControllerResult<(Vec<WorkerTemplate>, usize)> {
        self.registry.remove_groups_with_worker(joining);
        let mut installs = Vec::new();
        let mut planned_total = 0usize;
        for group_id in self.registry.group_ids() {
            let share = {
                let group = self.registry.group(group_id)?;
                let total_tasks: usize = group.per_worker.values().map(|t| t.task_count()).sum();
                total_tasks / workers_after.len().max(1)
            };
            let template = {
                let group = self.registry.group_mut(group_id)?;
                match group.per_worker.get(&joining) {
                    Some(t) => t.clone(),
                    None => {
                        let t = WorkerTemplate::new(
                            group_id,
                            group.controller_template,
                            joining,
                            vec![],
                        )?;
                        group.per_worker.insert(joining, t.clone());
                        t
                    }
                }
            };
            installs.push(template);
            planned_total += self.plan_migrations_to(group_id, joining, share, dm)?;
        }
        Ok((installs, planned_total))
    }

    /// The installed (controller-side, hence patched and edited) worker
    /// templates of every group `worker` belongs to — what a worker
    /// returning within the rejoin grace window must reinstall, since its
    /// fresh process has an empty template cache.
    pub fn templates_for_worker(&self, worker: WorkerId) -> Vec<WorkerTemplate> {
        self.registry
            .group_ids()
            .into_iter()
            .filter_map(|id| self.registry.group(id).ok())
            .filter_map(|g| g.per_worker.get(&worker).cloned())
            .collect()
    }

    /// Number of edits queued for the given group.
    pub fn pending_edit_count(&self, group: TemplateId) -> usize {
        self.pending_edits
            .get(&group)
            .map(|m| m.values().map(Vec::len).sum())
            .unwrap_or(0)
    }

    /// Plans the execution of an installed group: validation, patching,
    /// per-worker instantiation messages, and data-state updates.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_instantiation(
        &mut self,
        group_id: TemplateId,
        params: &InstantiationParams,
        dm: &mut DataManager,
        bk: &mut Bookkeeping,
        ids: &IdGens,
    ) -> ControllerResult<InstantiationPlan> {
        let edits = self.pending_edits.remove(&group_id).unwrap_or_default();
        let has_edits = !edits.is_empty();

        // Apply pending edits to the controller's mirror of the skeletons so
        // both sides stay identical.
        {
            let group = self.registry.group_mut(group_id)?;
            for (worker, worker_edits) in &edits {
                if let Some(t) = group.per_worker.get_mut(worker) {
                    t.apply_edits(worker_edits)?;
                }
            }
        }
        // Borrowed, not cloned: the group holds every worker's skeleton, so
        // cloning it per instantiation was an O(tasks) allocation on the
        // single hottest path of the controller.
        let group = self.registry.group(group_id)?;
        let controller_template = self
            .registry
            .controller_template(group.controller_template)?;

        // Validation and patching (Section 4.2).
        let mut auto_validated = false;
        let mut patch_cache_hit = false;
        let mut patch_commands: Vec<AssignedCommand> = Vec::new();
        if self.last_executed == Some(group_id) && group.is_self_validating() && !has_edits {
            auto_validated = true;
        } else {
            let violated =
                validate_preconditions(&group.preconditions, &dm.instances, &dm.versions);
            if !violated.is_empty() {
                // A checkpoint restore rewinds the instance map, but the
                // template mirror keeps every edit applied since — so a
                // precondition may name an instance the restored map has
                // never heard of (created by a migration after the
                // checkpoint). Re-register it from the precondition's own
                // metadata, at the factory version: the patch below then
                // creates and fills it before any entry reads or writes it.
                // Without this the patch path has no destination to create
                // (`emit_patch_commands` skips unknown objects) and the copy
                // lands on a worker that was never told to allocate it.
                for pre in &violated {
                    if dm.instances.get(pre.physical).is_none() {
                        dm.instances.insert(nimbus_core::PhysicalInstance::new(
                            pre.physical,
                            pre.logical,
                            pre.worker,
                        ));
                    }
                }
                let cached = self.patch_cache.lookup(self.last_executed, group_id);
                let patch = match cached {
                    Some(p) if patch_covers(&p, &violated, dm) => {
                        patch_cache_hit = true;
                        p
                    }
                    _ => {
                        let p = compute_patch(group_id, &violated, &dm.instances, &dm.versions)?;
                        self.patch_cache
                            .store(self.last_executed, group_id, p.clone());
                        p
                    }
                };
                patch_commands = emit_patch_commands(&patch, dm, bk, ids);
            }
        }

        // Parameters and fresh task identifiers.
        let per_entry_params = controller_template.resolve_params(params)?;
        let task_count = controller_template.task_count();
        let task_base = ids.tasks.next_block(task_count as u64);
        let base_transfer = ids.transfers.next_block(group.transfer_slots.max(1) as u64);

        // Patch commands are dispatched (and counted) separately by the
        // controller; expected_commands covers only the template's entries.
        let mut per_worker = Vec::with_capacity(group.per_worker.len());
        let mut expected_commands = 0u64;
        self.worker_scratch.clear();
        self.worker_scratch.extend(group.per_worker.keys().copied());
        self.worker_scratch.sort_unstable();
        for &worker in &self.worker_scratch {
            let template = &group.per_worker[&worker];
            let live_entries = template.entries.iter().filter(|e| !e.kind.is_nop()).count() as u64;
            expected_commands += live_entries;
            let base_command = ids.commands.next_block(template.len().max(1) as u64);
            let slot_map: &[usize] = group
                .task_slot_map
                .get(&worker)
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let task_ids: Vec<TaskId> = slot_map
                .iter()
                .map(|entry| TaskId(task_base + *entry as u64))
                .collect();
            let params_vec: Vec<TaskParams> = slot_map
                .iter()
                .map(|entry| {
                    per_entry_params
                        .get(*entry)
                        .cloned()
                        .unwrap_or_else(TaskParams::empty)
                })
                .collect();
            per_worker.push((
                worker,
                WorkerInstantiation {
                    template: group_id,
                    base_command_id: base_command,
                    base_transfer_id: base_transfer,
                    task_ids,
                    params: params_vec,
                    edits: edits.get(&worker).cloned().unwrap_or_default(),
                },
            ));
        }

        // Advance the version map and instance versions according to the
        // cached per-block write totals and exit offsets.
        let mut entry_versions: HashMap<LogicalPartition, u64> = HashMap::new();
        for lp in group.write_totals.keys() {
            entry_versions.insert(*lp, dm.versions.current(*lp).raw());
        }
        for po in group.exit_offsets.keys() {
            if let Some(inst) = dm.instances.get(*po) {
                entry_versions
                    .entry(inst.logical)
                    .or_insert_with(|| dm.versions.current(inst.logical).raw());
            }
        }
        for (lp, total) in &group.write_totals {
            dm.versions.bump_by(*lp, *total);
        }
        for (po, offset) in &group.exit_offsets {
            if let Some(inst) = dm.instances.get(*po) {
                let lp = inst.logical;
                let base = entry_versions.get(&lp).copied().unwrap_or(0);
                let _ = dm
                    .instances
                    .set_version(*po, nimbus_core::Version(base + *offset));
            }
        }

        self.last_executed = Some(group_id);
        Ok(InstantiationPlan {
            group: group_id,
            patch_commands,
            per_worker,
            auto_validated,
            patch_cache_hit,
            expected_commands,
            task_count: task_count as u64,
        })
    }
}

/// Plans moving one migratable task entry from `source` to `dest` (the
/// Figure 6 shape: the destination receives inputs, runs the task, and sends
/// the output back; the source's old task slot becomes the matching
/// receive). Mutates the group's controller-side bookkeeping (transfer
/// slots, task-slot map, exit offsets, preconditions) and returns the
/// destination edits plus the source edit, or `None` when the entry is not
/// migratable. `dest_task_adds_queued` counts task entries already queued
/// for `dest` in unapplied edits, so consecutive moves get distinct slots.
fn plan_entry_move(
    group: &mut WorkerTemplateGroup,
    dm: &mut DataManager,
    source: WorkerId,
    dest: WorkerId,
    entry_index: usize,
    entry: &SkeletonEntry,
    dest_task_adds_queued: usize,
) -> Option<(Vec<TemplateEdit>, TemplateEdit)> {
    let SkeletonKind::RunTask {
        function,
        task_slot,
    } = entry.kind
    else {
        return None;
    };
    let source_output = *entry.writes.first()?;
    let output_lp = dm.instances.get(source_output).map(|i| i.logical)?;
    // The migrated task gets dedicated destination-side instances for its
    // inputs and output. Dedicated (rather than shared) instances keep it
    // independent of the destination's resident entries — in particular of
    // the end-of-block refresh copies — so the edit cannot introduce
    // ordering cycles; the inputs become preconditions that validation and
    // patching refresh with the block-entry versions every iteration.
    let mut dest_edits: Vec<TemplateEdit> = Vec::new();
    let mut dest_inputs = Vec::new();
    let mut new_preconditions = Vec::new();
    let mut input_lps = Vec::with_capacity(entry.reads.len());
    for input in &entry.reads {
        input_lps.push(dm.instances.get(*input).map(|i| i.logical)?);
    }
    for lp in input_lps {
        let inst = dm.create_dedicated_instance(lp, dest);
        dest_edits.push(TemplateEdit::AddEntry {
            entry: SkeletonEntry::new(SkeletonKind::CreateData {
                object: inst.id,
                logical: lp,
            }),
        });
        dest_inputs.push(inst.id);
        new_preconditions.push(Precondition::new(dest, inst.id, lp));
    }
    let dest_output = dm.create_dedicated_instance(output_lp, dest);
    dest_edits.push(TemplateEdit::AddEntry {
        entry: SkeletonEntry::new(SkeletonKind::CreateData {
            object: dest_output.id,
            logical: output_lp,
        }),
    });
    // Nimbus data objects are mutable: a task may update its output in
    // place, so the migrated task's output object must also hold the
    // block-entry version when the block starts.
    new_preconditions.push(Precondition::new(dest, dest_output.id, output_lp));

    // Destination runs the task and sends the result back to the source
    // object; the source's old task slot becomes the matching receive so
    // downstream dependencies are preserved.
    let return_slot = group.transfer_slots;
    group.transfer_slots += 1;
    let controller_entry = group
        .task_slot_map
        .get(&source)
        .and_then(|m| m.get(task_slot))
        .copied();
    let dest_task_slot = group
        .per_worker
        .get(&dest)
        .map(|t| t.task_slots)
        .unwrap_or(0)
        + dest_task_adds_queued;
    let task_entry = SkeletonEntry::new(SkeletonKind::RunTask {
        function,
        task_slot: dest_task_slot,
    })
    .with_reads(dest_inputs.clone())
    .with_writes(vec![dest_output.id])
    .with_param_slot(dest_task_slot)
    .with_default_params(entry.default_params.clone());
    dest_edits.push(TemplateEdit::AddEntry { entry: task_entry });
    dest_edits.push(TemplateEdit::AddEntry {
        entry: SkeletonEntry::new(SkeletonKind::SendCopy {
            from: dest_output.id,
            to_worker: source,
            transfer_slot: return_slot,
        })
        .with_reads(vec![dest_output.id]),
    });
    let source_edit = TemplateEdit::ReplaceEntry {
        index: entry_index,
        entry: SkeletonEntry::new(SkeletonKind::ReceiveCopy {
            to: source_output,
            from_worker: dest,
            transfer_slot: return_slot,
        })
        .with_writes(vec![source_output]),
    };

    // Bookkeeping on the group mirror.
    if let Some(ce) = controller_entry {
        group.task_slot_map.entry(dest).or_default().push(ce);
    }
    if let Some(off) = group.exit_offsets.get(&source_output).copied() {
        group.exit_offsets.insert(dest_output.id, off);
    }
    group.preconditions.extend(new_preconditions);

    Some((dest_edits, source_edit))
}

/// Returns true if a cached patch still repairs all violated preconditions
/// with up-to-date sources.
fn patch_covers(patch: &Patch, violated: &[Precondition], dm: &DataManager) -> bool {
    violated.iter().all(|pre| {
        patch.directives.iter().any(|d| match d {
            PatchDirective::LocalCopy { to, from, .. } => {
                *to == pre.physical && dm.is_up_to_date(*from)
            }
            PatchDirective::Transfer { to, from, .. } => {
                *to == pre.physical && dm.is_up_to_date(*from)
            }
        })
    })
}

/// Converts patch directives into dispatchable commands, updating the data
/// manager and dependency bookkeeping.
pub fn emit_patch_commands(
    patch: &Patch,
    dm: &mut DataManager,
    bk: &mut Bookkeeping,
    ids: &IdGens,
) -> Vec<AssignedCommand> {
    let mut out = Vec::with_capacity(patch.directives.len() * 2);
    // Destinations introduced by edits may not exist on the worker yet (their
    // create entries ship with the next instantiation); prepend an idempotent
    // create so the copy always has somewhere to land.
    let ensure_exists = |to: &PhysicalObjectId,
                         worker: WorkerId,
                         out: &mut Vec<AssignedCommand>,
                         dm: &DataManager,
                         bk: &mut Bookkeeping,
                         ids: &IdGens| {
        if let Some(inst) = dm.instances.get(*to) {
            let id = ids.command();
            let command = Command::new(
                id,
                CommandKind::CreateData {
                    object: *to,
                    logical: inst.logical,
                },
            );
            bk.note_write(*to, id);
            out.push(AssignedCommand { command, worker });
        }
    };
    for d in &patch.directives {
        match d {
            PatchDirective::LocalCopy { worker, from, to } => {
                ensure_exists(to, *worker, &mut out, dm, bk, ids);
                let id = ids.command();
                let mut before = bk.read_deps(*from);
                before.extend(bk.write_deps(*to));
                before.sort_unstable();
                before.dedup();
                let command = Command::new(
                    id,
                    CommandKind::LocalCopy {
                        from: *from,
                        to: *to,
                    },
                )
                .with_before(before);
                bk.note_read(*from, id);
                bk.note_write(*to, id);
                out.push(AssignedCommand {
                    command,
                    worker: *worker,
                });
                if let Some(inst) = dm.instances.get(*to) {
                    dm.record_refresh(inst.logical, *to);
                }
            }
            PatchDirective::Transfer {
                from_worker,
                from,
                to_worker,
                to,
            } => {
                ensure_exists(to, *to_worker, &mut out, dm, bk, ids);
                let transfer = ids.transfer();
                let send_id = ids.command();
                let send = Command::new(
                    send_id,
                    CommandKind::SendCopy {
                        from: *from,
                        to_worker: *to_worker,
                        transfer,
                    },
                )
                .with_before(bk.read_deps(*from));
                bk.note_read(*from, send_id);
                out.push(AssignedCommand {
                    command: send,
                    worker: *from_worker,
                });
                let recv_id = ids.command();
                let recv = Command::new(
                    recv_id,
                    CommandKind::ReceiveCopy {
                        to: *to,
                        from_worker: *from_worker,
                        transfer,
                    },
                )
                .with_before(bk.write_deps(*to));
                bk.note_write(*to, recv_id);
                out.push(AssignedCommand {
                    command: recv,
                    worker: *to_worker,
                });
                if let Some(inst) = dm.instances.get(*to) {
                    dm.record_refresh(inst.logical, *to);
                }
            }
        }
    }
    out
}

/// Returns the objects a command implicitly reads and writes (copy sources
/// and destinations included).
fn accesses(command: &Command) -> (Vec<PhysicalObjectId>, Vec<PhysicalObjectId>) {
    let mut reads = command.read_set.clone();
    let mut writes = command.write_set.clone();
    match &command.kind {
        CommandKind::LocalCopy { from, to } => {
            reads.push(*from);
            writes.push(*to);
        }
        CommandKind::SendCopy { from, .. } => reads.push(*from),
        CommandKind::ReceiveCopy { to, .. } => writes.push(*to),
        CommandKind::LoadData { object, .. } => writes.push(*object),
        CommandKind::SaveData { object, .. } => reads.push(*object),
        CommandKind::CreateData { object, .. } => writes.push(*object),
        CommandKind::DestroyData { object } => writes.push(*object),
        CommandKind::RunTask { .. } => {}
    }
    reads.sort_unstable();
    reads.dedup();
    writes.sort_unstable();
    writes.dedup();
    reads.retain(|r| !writes.contains(r));
    (reads, writes)
}

struct PerWorkerBuild {
    entries: Vec<SkeletonEntry>,
    task_slots: usize,
    obj_last_writer: HashMap<PhysicalObjectId, usize>,
    obj_readers: HashMap<PhysicalObjectId, Vec<usize>>,
    written: HashSet<PhysicalObjectId>,
}

impl PerWorkerBuild {
    fn new() -> Self {
        Self {
            entries: Vec::new(),
            task_slots: 0,
            obj_last_writer: HashMap::new(),
            obj_readers: HashMap::new(),
            written: HashSet::new(),
        }
    }
}

/// Builds a worker-template group from the commands recorded for one basic
/// block (Section 4.1).
pub fn build_group(
    group_id: TemplateId,
    controller_template: &ControllerTemplate,
    commands: &[AssignedCommand],
    entry_of_command: &HashMap<CommandId, usize>,
    dm: &DataManager,
) -> ControllerResult<WorkerTemplateGroup> {
    let mut builds: HashMap<WorkerId, PerWorkerBuild> = HashMap::new();
    let mut local_index: HashMap<CommandId, (WorkerId, usize)> = HashMap::new();
    let mut transfer_slots: HashMap<TransferId, usize> = HashMap::new();
    let mut task_slot_map: HashMap<WorkerId, Vec<usize>> = HashMap::new();
    let mut preconditions: Vec<Precondition> = Vec::new();
    let mut precondition_objs: HashSet<PhysicalObjectId> = HashSet::new();

    // Exit-offset simulation state (program order).
    let mut lp_writes: HashMap<LogicalPartition, u64> = HashMap::new();
    let mut obj_offset: HashMap<PhysicalObjectId, u64> = HashMap::new();
    let mut transfer_offset: HashMap<TransferId, u64> = HashMap::new();

    for ac in commands {
        // Data creation is one-time setup, not part of the repetitive block:
        // replaying a create neither allocates anything new (workers treat it
        // as idempotent) nor refreshes the object's contents, so it must not
        // count as an in-block write for precondition analysis. Drop it from
        // the template; dependencies on it resolve through the worker's local
        // completion history.
        if matches!(ac.command.kind, CommandKind::CreateData { .. }) {
            continue;
        }
        let worker = ac.worker;
        let build = builds.entry(worker).or_insert_with(PerWorkerBuild::new);
        let index = build.entries.len();
        local_index.insert(ac.command.id, (worker, index));

        let (reads, writes) = accesses(&ac.command);
        // Preconditions: objects read before any in-block write.
        for obj in &reads {
            if !build.written.contains(obj) && !precondition_objs.contains(obj) {
                if let Some(inst) = dm.instances.get(*obj) {
                    preconditions.push(Precondition::new(worker, *obj, inst.logical));
                    precondition_objs.insert(*obj);
                }
            }
        }
        // Nimbus data objects are mutable: a task write updates the object's
        // current contents in place, so an object a task writes before any
        // in-block refresh depends on the block-entry version exactly like a
        // read does. Copy, load, and receive destinations are full overwrites
        // and carry no such dependency.
        if matches!(ac.command.kind, CommandKind::RunTask { .. }) {
            for obj in &writes {
                if !build.written.contains(obj) && !precondition_objs.contains(obj) {
                    if let Some(inst) = dm.instances.get(*obj) {
                        preconditions.push(Precondition::new(worker, *obj, inst.logical));
                        precondition_objs.insert(*obj);
                    }
                }
            }
        }

        let next_slot = transfer_slots.len();
        let kind = match &ac.command.kind {
            CommandKind::CreateData { object, logical } => {
                obj_offset.insert(*object, 0);
                SkeletonKind::CreateData {
                    object: *object,
                    logical: *logical,
                }
            }
            CommandKind::DestroyData { object } => SkeletonKind::DestroyData { object: *object },
            CommandKind::LocalCopy { from, to } => {
                let off = obj_offset.get(from).copied().unwrap_or(0);
                obj_offset.insert(*to, off);
                SkeletonKind::LocalCopy {
                    from: *from,
                    to: *to,
                }
            }
            CommandKind::SendCopy {
                from,
                to_worker,
                transfer,
            } => {
                let slot = *transfer_slots.entry(*transfer).or_insert(next_slot);
                transfer_offset.insert(*transfer, obj_offset.get(from).copied().unwrap_or(0));
                SkeletonKind::SendCopy {
                    from: *from,
                    to_worker: *to_worker,
                    transfer_slot: slot,
                }
            }
            CommandKind::ReceiveCopy {
                to,
                from_worker,
                transfer,
            } => {
                let slot = *transfer_slots.entry(*transfer).or_insert(next_slot);
                let off = transfer_offset.get(transfer).copied().unwrap_or(0);
                obj_offset.insert(*to, off);
                SkeletonKind::ReceiveCopy {
                    to: *to,
                    from_worker: *from_worker,
                    transfer_slot: slot,
                }
            }
            CommandKind::LoadData { object, key } => {
                obj_offset.insert(*object, 0);
                SkeletonKind::LoadData {
                    object: *object,
                    key: key.clone(),
                }
            }
            CommandKind::SaveData { object, key } => SkeletonKind::SaveData {
                object: *object,
                key: key.clone(),
            },
            CommandKind::RunTask { function, .. } => {
                let slot = build.task_slots;
                build.task_slots += 1;
                let entry_index = entry_of_command.get(&ac.command.id).copied().unwrap_or(0);
                task_slot_map.entry(worker).or_default().push(entry_index);
                for obj in &ac.command.write_set {
                    if let Some(inst) = dm.instances.get(*obj) {
                        let count = lp_writes.entry(inst.logical).or_insert(0);
                        *count += 1;
                        obj_offset.insert(*obj, *count);
                    }
                }
                SkeletonKind::RunTask {
                    function: *function,
                    task_slot: slot,
                }
            }
        };

        let before: Vec<usize> = ac
            .command
            .before
            .iter()
            .filter_map(|dep| match local_index.get(dep) {
                Some((w, idx)) if *w == worker => Some(*idx),
                _ => None,
            })
            .collect();
        let param_slot = match &kind {
            SkeletonKind::RunTask { task_slot, .. } => Some(*task_slot),
            _ => None,
        };
        let entry = SkeletonEntry {
            kind,
            reads: ac.command.read_set.clone(),
            writes: ac.command.write_set.clone(),
            before,
            param_slot,
            default_params: ac.command.params.clone(),
        };
        for obj in &reads {
            build.obj_readers.entry(*obj).or_default().push(index);
        }
        for obj in &writes {
            build.obj_last_writer.insert(*obj, index);
            build.obj_readers.insert(*obj, Vec::new());
            build.written.insert(*obj);
        }
        build.entries.push(entry);
    }

    // Append end-of-block refresh copies so the template meets its own
    // preconditions at exit (auto-validation of tight loops, Section 4.2).
    let mut next_transfer_slot = transfer_slots.len();
    let mut postconditions = Vec::new();
    for pre in &preconditions {
        let total = lp_writes.get(&pre.logical).copied().unwrap_or(0);
        let current = obj_offset.get(&pre.physical).copied().unwrap_or(0);
        if current == total {
            postconditions.push(*pre);
            continue;
        }
        // Find a source object holding the block-exit version of the same
        // partition, preferring one on the same worker.
        let candidates: Vec<PhysicalObjectId> = obj_offset
            .iter()
            .filter(|(po, off)| {
                **off == total
                    && dm
                        .instances
                        .get(**po)
                        .map(|i| i.logical == pre.logical)
                        .unwrap_or(false)
            })
            .map(|(po, _)| *po)
            .collect();
        let source = candidates
            .iter()
            .find(|po| dm.instances.get(**po).map(|i| i.worker) == Some(pre.worker))
            .or_else(|| candidates.first())
            .copied();
        let Some(source) = source else {
            continue;
        };
        let source_worker = dm
            .instances
            .get(source)
            .map(|i| i.worker)
            .unwrap_or(pre.worker);
        if source_worker == pre.worker {
            let build = builds.entry(pre.worker).or_insert_with(PerWorkerBuild::new);
            let index = build.entries.len();
            let mut before: Vec<usize> = build
                .obj_last_writer
                .get(&source)
                .copied()
                .into_iter()
                .collect();
            before.extend(build.obj_last_writer.get(&pre.physical).copied());
            before.extend(
                build
                    .obj_readers
                    .get(&pre.physical)
                    .cloned()
                    .unwrap_or_default(),
            );
            before.sort_unstable();
            before.dedup();
            build.entries.push(
                SkeletonEntry::new(SkeletonKind::LocalCopy {
                    from: source,
                    to: pre.physical,
                })
                .with_before(before),
            );
            build.obj_last_writer.insert(pre.physical, index);
            build.obj_readers.entry(source).or_default().push(index);
        } else {
            let slot = next_transfer_slot;
            next_transfer_slot += 1;
            {
                let src_build = builds
                    .entry(source_worker)
                    .or_insert_with(PerWorkerBuild::new);
                let src_index = src_build.entries.len();
                let before: Vec<usize> = src_build
                    .obj_last_writer
                    .get(&source)
                    .copied()
                    .into_iter()
                    .collect();
                src_build.entries.push(
                    SkeletonEntry::new(SkeletonKind::SendCopy {
                        from: source,
                        to_worker: pre.worker,
                        transfer_slot: slot,
                    })
                    .with_reads(vec![source])
                    .with_before(before),
                );
                src_build
                    .obj_readers
                    .entry(source)
                    .or_default()
                    .push(src_index);
            }
            {
                let dst_build = builds.entry(pre.worker).or_insert_with(PerWorkerBuild::new);
                let dst_index = dst_build.entries.len();
                let mut before: Vec<usize> = dst_build
                    .obj_last_writer
                    .get(&pre.physical)
                    .copied()
                    .into_iter()
                    .collect();
                before.extend(
                    dst_build
                        .obj_readers
                        .get(&pre.physical)
                        .cloned()
                        .unwrap_or_default(),
                );
                before.sort_unstable();
                before.dedup();
                dst_build.entries.push(
                    SkeletonEntry::new(SkeletonKind::ReceiveCopy {
                        to: pre.physical,
                        from_worker: source_worker,
                        transfer_slot: slot,
                    })
                    .with_writes(vec![pre.physical])
                    .with_before(before),
                );
                dst_build.obj_last_writer.insert(pre.physical, dst_index);
            }
        }
        obj_offset.insert(pre.physical, total);
        postconditions.push(*pre);
    }

    let mut per_worker = std::collections::BTreeMap::new();
    for (worker, build) in builds {
        let template =
            WorkerTemplate::new(group_id, controller_template.id, worker, build.entries)?;
        per_worker.insert(worker, template);
    }

    Ok(WorkerTemplateGroup {
        id: group_id,
        controller_template: controller_template.id,
        per_worker,
        preconditions,
        postconditions,
        transfer_slots: next_transfer_slot,
        write_totals: lp_writes,
        exit_offsets: obj_offset,
        task_slot_map,
    })
}
