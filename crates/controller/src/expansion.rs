//! Expansion of logical tasks into concrete worker commands.
//!
//! This is the controller's per-task scheduling path: given a logical task,
//! pick its worker, make sure every partition it reads is present and
//! up to date on that worker (inserting create and copy commands as needed),
//! emit the task command with a correct before set, and update the version
//! and dependency bookkeeping. The same code runs when a basic block is being
//! recorded into a template — the resulting commands are what the worker
//! templates cache.

use std::collections::HashMap;

use nimbus_core::graph::AssignedCommand;
use nimbus_core::ids::{
    CommandId, IdGenerator, LogicalPartition, PhysicalObjectId, TransferId, WorkerId,
};
use nimbus_core::lineage::{LineageLog, LineageRecord};
use nimbus_core::task::TaskSpec;
use nimbus_core::{Command, CommandKind};

use crate::data_manager::DataManager;
use crate::error::{ControllerError, ControllerResult};

/// Identifier generators owned by the controller.
pub struct IdGens {
    /// Command identifiers.
    pub commands: IdGenerator,
    /// Data transfer identifiers.
    pub transfers: IdGenerator,
    /// Task identifiers (used when instantiating templates).
    pub tasks: IdGenerator,
    /// Template identifiers.
    pub templates: IdGenerator,
    /// Checkpoint identifiers.
    pub checkpoints: IdGenerator,
}

impl IdGens {
    /// Creates fresh generators.
    pub fn new() -> Self {
        Self {
            commands: IdGenerator::new(),
            transfers: IdGenerator::new(),
            tasks: IdGenerator::starting_at(1_000_000),
            templates: IdGenerator::new(),
            checkpoints: IdGenerator::new(),
        }
    }

    /// Next command id.
    pub fn command(&self) -> CommandId {
        CommandId(self.commands.next_raw())
    }

    /// Next transfer id.
    pub fn transfer(&self) -> TransferId {
        TransferId(self.transfers.next_raw())
    }
}

impl Default for IdGens {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-object dependency bookkeeping used to build before sets on the
/// per-task scheduling path.
#[derive(Default)]
pub struct Bookkeeping {
    last_writer: HashMap<PhysicalObjectId, CommandId>,
    readers_since_write: HashMap<PhysicalObjectId, Vec<CommandId>>,
}

impl Bookkeeping {
    /// Creates empty bookkeeping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dependencies a reader of `obj` must wait for.
    pub fn read_deps(&self, obj: PhysicalObjectId) -> Vec<CommandId> {
        self.last_writer.get(&obj).copied().into_iter().collect()
    }

    /// Dependencies a writer of `obj` must wait for (last writer plus every
    /// reader since then).
    pub fn write_deps(&self, obj: PhysicalObjectId) -> Vec<CommandId> {
        let mut deps: Vec<CommandId> = self.last_writer.get(&obj).copied().into_iter().collect();
        if let Some(rs) = self.readers_since_write.get(&obj) {
            deps.extend(rs.iter().copied());
        }
        deps
    }

    /// Notes that `cmd` reads `obj`.
    pub fn note_read(&mut self, obj: PhysicalObjectId, cmd: CommandId) {
        self.readers_since_write.entry(obj).or_default().push(cmd);
    }

    /// Notes that `cmd` writes `obj`.
    pub fn note_write(&mut self, obj: PhysicalObjectId, cmd: CommandId) {
        self.last_writer.insert(obj, cmd);
        self.readers_since_write.insert(obj, Vec::new());
    }

    /// Forgets everything (used after halting workers during recovery).
    pub fn clear(&mut self) {
        self.last_writer.clear();
        self.readers_since_write.clear();
    }
}

fn dedup_before(mut before: Vec<CommandId>, this: CommandId) -> Vec<CommandId> {
    before.retain(|c| *c != this);
    before.sort_unstable();
    before.dedup();
    before
}

/// Emits the command that creates an instance on a worker, if needed, and
/// returns the instance.
pub fn ensure_instance_commands(
    lp: LogicalPartition,
    worker: WorkerId,
    dm: &mut DataManager,
    bk: &mut Bookkeeping,
    ids: &IdGens,
    out: &mut Vec<AssignedCommand>,
) -> nimbus_core::PhysicalInstance {
    let (instance, created) = dm.ensure_instance(lp, worker);
    if created {
        let id = ids.command();
        let command = Command::new(
            id,
            CommandKind::CreateData {
                object: instance.id,
                logical: lp,
            },
        )
        .with_before(dedup_before(bk.write_deps(instance.id), id));
        bk.note_write(instance.id, id);
        out.push(AssignedCommand { command, worker });
    }
    instance
}

/// Makes sure the instance of `lp` on `worker` holds the latest version,
/// emitting a local copy or a send/receive pair if it is stale. Returns the
/// up-to-date instance on `worker`.
pub fn refresh_instance(
    lp: LogicalPartition,
    worker: WorkerId,
    dm: &mut DataManager,
    bk: &mut Bookkeeping,
    ids: &IdGens,
    out: &mut Vec<AssignedCommand>,
) -> ControllerResult<nimbus_core::PhysicalInstance> {
    let instance = ensure_instance_commands(lp, worker, dm, bk, ids, out);
    if dm.is_up_to_date(instance.id) {
        return Ok(instance);
    }
    let holder = dm
        .latest_holder(lp, Some(worker))
        .ok_or(ControllerError::UnknownPartition(lp))?;
    if holder.worker == worker {
        // A fresher copy exists on the same worker: local copy.
        let id = ids.command();
        let command = Command::new(
            id,
            CommandKind::LocalCopy {
                from: holder.id,
                to: instance.id,
            },
        )
        .with_before(dedup_before(
            [bk.read_deps(holder.id), bk.write_deps(instance.id)].concat(),
            id,
        ));
        bk.note_read(holder.id, id);
        bk.note_write(instance.id, id);
        out.push(AssignedCommand { command, worker });
    } else {
        let transfer = ids.transfer();
        let send_id = ids.command();
        let send = Command::new(
            send_id,
            CommandKind::SendCopy {
                from: holder.id,
                to_worker: worker,
                transfer,
            },
        )
        .with_before(dedup_before(bk.read_deps(holder.id), send_id));
        bk.note_read(holder.id, send_id);
        out.push(AssignedCommand {
            command: send,
            worker: holder.worker,
        });

        let recv_id = ids.command();
        let recv = Command::new(
            recv_id,
            CommandKind::ReceiveCopy {
                to: instance.id,
                from_worker: holder.worker,
                transfer,
            },
        )
        .with_before(dedup_before(bk.write_deps(instance.id), recv_id));
        bk.note_write(instance.id, recv_id);
        out.push(AssignedCommand {
            command: recv,
            worker,
        });
    }
    dm.record_refresh(lp, instance.id);
    Ok(instance)
}

/// The result of expanding one logical task.
pub struct ExpandedTask {
    /// Commands to dispatch, in program order (creates, copies, the task).
    pub commands: Vec<AssignedCommand>,
    /// The identifier of the task command itself.
    pub task_command: CommandId,
    /// The worker the task was placed on.
    pub worker: WorkerId,
}

/// Expands a logical task into concrete commands on its chosen worker.
///
/// Placement: the task's `preferred_worker` wins if it is part of the active
/// allocation; otherwise the home of its first written partition; otherwise
/// the home of its first read partition.
pub fn expand_task(
    spec: &TaskSpec,
    workers: &[WorkerId],
    dm: &mut DataManager,
    bk: &mut Bookkeeping,
    ids: &IdGens,
    lineage: &mut LineageLog,
) -> ControllerResult<ExpandedTask> {
    if workers.is_empty() {
        return Err(ControllerError::NoWorkers);
    }
    let worker = match spec.preferred_worker {
        Some(w) if workers.contains(&w) => w,
        _ => {
            let anchor = spec
                .writes
                .first()
                .or_else(|| spec.reads.first())
                .copied()
                .ok_or_else(|| {
                    ControllerError::Core(nimbus_core::CoreError::Invariant(format!(
                        "task {} has no data accesses",
                        spec.id
                    )))
                })?;
            dm.home_of(anchor, workers)?
        }
    };

    let mut commands = Vec::new();
    let mut read_phys = Vec::with_capacity(spec.reads.len());
    for lp in &spec.reads {
        let inst = refresh_instance(*lp, worker, dm, bk, ids, &mut commands)?;
        read_phys.push(inst.id);
    }
    let mut write_phys = Vec::with_capacity(spec.writes.len());
    for lp in &spec.writes {
        // Data objects are mutable and tasks update them in place
        // (Section 3.3), so a write target must hold the partition's current
        // value before the task runs — important when a partition has just
        // been re-homed and the new worker's instance was only created.
        let inst = refresh_instance(*lp, worker, dm, bk, ids, &mut commands)?;
        write_phys.push(inst.id);
    }

    let task_command = ids.command();
    let mut before = Vec::new();
    for obj in &read_phys {
        before.extend(bk.read_deps(*obj));
    }
    for obj in &write_phys {
        before.extend(bk.write_deps(*obj));
    }
    let command = Command::new(
        task_command,
        CommandKind::RunTask {
            function: spec.function,
            task: spec.id,
        },
    )
    .with_reads(read_phys.clone())
    .with_writes(write_phys.clone())
    .with_before(dedup_before(before, task_command))
    .with_params(spec.params.clone());
    commands.push(AssignedCommand { command, worker });

    for obj in &read_phys {
        bk.note_read(*obj, task_command);
    }
    for (lp, obj) in spec.writes.iter().zip(&write_phys) {
        let version = dm.record_write(*lp, *obj);
        bk.note_write(*obj, task_command);
        lineage.record(LineageRecord {
            partition: *lp,
            version,
            task: spec.id,
            stage: spec.stage,
        });
    }

    Ok(ExpandedTask {
        commands,
        task_command,
        worker,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::AssignmentPolicy;
    use nimbus_core::data::DatasetDef;
    use nimbus_core::ids::{FunctionId, LogicalObjectId, PartitionIndex, StageId, TaskId};

    fn lp(o: u64, p: u32) -> LogicalPartition {
        LogicalPartition::new(LogicalObjectId(o), PartitionIndex(p))
    }

    fn setup() -> (DataManager, Bookkeeping, IdGens, LineageLog) {
        let mut dm = DataManager::new(AssignmentPolicy::hash());
        dm.define_dataset(DatasetDef::new(LogicalObjectId(1), "tdata", 4));
        dm.define_dataset(DatasetDef::new(LogicalObjectId(2), "grad", 4));
        dm.define_dataset(DatasetDef::new(LogicalObjectId(3), "coeff", 1));
        (dm, Bookkeeping::new(), IdGens::new(), LineageLog::new())
    }

    fn task(id: u64, reads: Vec<LogicalPartition>, writes: Vec<LogicalPartition>) -> TaskSpec {
        TaskSpec::new(TaskId(id), StageId(1), FunctionId(1))
            .with_reads(reads)
            .with_writes(writes)
    }

    #[test]
    fn first_expansion_creates_instances_and_task() {
        let (mut dm, mut bk, ids, mut lineage) = setup();
        let workers = vec![WorkerId(0), WorkerId(1)];
        let spec = task(1, vec![lp(1, 0)], vec![lp(2, 0)]);
        let out = expand_task(&spec, &workers, &mut dm, &mut bk, &ids, &mut lineage).unwrap();
        // Two creates (read + write instances) plus the task.
        assert_eq!(out.commands.len(), 3);
        assert_eq!(out.worker, WorkerId(0));
        let kinds: Vec<_> = out.commands.iter().map(|c| c.command.kind.tag()).collect();
        assert_eq!(kinds, vec!["create", "create", "task"]);
        // The task depends on both creates.
        assert_eq!(out.commands[2].command.before.len(), 2);
        assert_eq!(lineage.len(), 1);
        assert_eq!(dm.versions.current(lp(2, 0)), nimbus_core::Version(1));
    }

    #[test]
    fn repeat_expansion_emits_only_the_task() {
        let (mut dm, mut bk, ids, mut lineage) = setup();
        let workers = vec![WorkerId(0), WorkerId(1)];
        let spec = task(1, vec![lp(1, 0)], vec![lp(2, 0)]);
        expand_task(&spec, &workers, &mut dm, &mut bk, &ids, &mut lineage).unwrap();
        let out = expand_task(
            &task(2, vec![lp(1, 0)], vec![lp(2, 0)]),
            &workers,
            &mut dm,
            &mut bk,
            &ids,
            &mut lineage,
        )
        .unwrap();
        assert_eq!(out.commands.len(), 1);
        assert!(out.commands[0].command.kind.is_task());
        // RAW on the create of tdata, WAW on the previous task's write.
        assert!(!out.commands[0].command.before.is_empty());
    }

    #[test]
    fn remote_read_inserts_send_receive_pair() {
        let (mut dm, mut bk, ids, mut lineage) = setup();
        let workers = vec![WorkerId(0), WorkerId(1)];
        // coeff partition 0 is written by a task on worker 0.
        expand_task(
            &task(1, vec![], vec![lp(3, 0)]).with_preferred_worker(WorkerId(0)),
            &workers,
            &mut dm,
            &mut bk,
            &ids,
            &mut lineage,
        )
        .unwrap();
        // A task on worker 1 reads coeff: the controller must move it.
        let out = expand_task(
            &task(2, vec![lp(3, 0)], vec![lp(2, 1)]).with_preferred_worker(WorkerId(1)),
            &workers,
            &mut dm,
            &mut bk,
            &ids,
            &mut lineage,
        )
        .unwrap();
        let kinds: Vec<_> = out.commands.iter().map(|c| c.command.kind.tag()).collect();
        assert_eq!(kinds, vec!["create", "send", "receive", "create", "task"]);
        let send = &out.commands[1];
        let recv = &out.commands[2];
        assert_eq!(send.worker, WorkerId(0));
        assert_eq!(recv.worker, WorkerId(1));
        // The task reads the worker-1 instance refreshed by the receive.
        let task_cmd = &out.commands[4].command;
        assert!(task_cmd.before.contains(&recv.command.id));
        // After the refresh, worker 1's copy is a latest holder too.
        assert_eq!(dm.instances.latest_holders(lp(3, 0), &dm.versions).len(), 2);
    }

    #[test]
    fn stale_local_copy_uses_local_copy_command() {
        let (mut dm, mut bk, ids, mut lineage) = setup();
        let workers = vec![WorkerId(0)];
        // Two instances of coeff on the same worker can arise after
        // migrations; emulate by registering a second instance directly.
        expand_task(
            &task(1, vec![], vec![lp(3, 0)]).with_preferred_worker(WorkerId(0)),
            &workers,
            &mut dm,
            &mut bk,
            &ids,
            &mut lineage,
        )
        .unwrap();
        let (stale, created) = dm.ensure_instance(lp(3, 0), WorkerId(0));
        assert!(!created, "same worker already has an instance");
        assert!(dm.is_up_to_date(stale.id));
    }

    #[test]
    fn preferred_worker_outside_allocation_falls_back() {
        let (mut dm, mut bk, ids, mut lineage) = setup();
        let workers = vec![WorkerId(0)];
        let out = expand_task(
            &task(1, vec![lp(1, 2)], vec![lp(2, 2)]).with_preferred_worker(WorkerId(7)),
            &workers,
            &mut dm,
            &mut bk,
            &ids,
            &mut lineage,
        )
        .unwrap();
        assert_eq!(out.worker, WorkerId(0));
    }

    #[test]
    fn task_without_accesses_is_rejected() {
        let (mut dm, mut bk, ids, mut lineage) = setup();
        let workers = vec![WorkerId(0)];
        assert!(expand_task(
            &task(1, vec![], vec![]),
            &workers,
            &mut dm,
            &mut bk,
            &ids,
            &mut lineage
        )
        .is_err());
    }
}
