//! The centralized Nimbus controller.
//!
//! The controller receives the driver's task stream, transforms it into an
//! execution plan (assigning partitions to workers and inserting copy
//! commands), and dispatches commands to workers. Execution templates sit on
//! top of this per-task path: basic blocks are recorded as they are scheduled
//! and replayed through one small instantiation message per worker on later
//! executions, with validation, patching, and edits handling dynamic control
//! flow and scheduling changes.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use nimbus_core::checkpoint::{CheckpointDescriptor, CheckpointEntry, CheckpointLog};
use nimbus_core::graph::AssignedCommand;
use nimbus_core::ids::{CheckpointId, LogicalPartition, TaskId, WorkerId};
use nimbus_core::lineage::LineageLog;
use nimbus_core::task::TaskSpec;
use nimbus_core::template::InstantiationParams;
use nimbus_core::{Command, CommandKind, ControlPlaneStats};
use nimbus_net::{
    ControllerToDriver, ControllerToWorker, DriverMessage, Endpoint, Envelope, Message, NetError,
    NodeId, PartitionVersion, TransportEndpoint, TransportEvent, WorkerToController,
};

use crate::assignment::AssignmentPolicy;

/// Upper bound on how many already-queued envelopes one loop turn handles
/// before flushing the cork (see [`Controller::run`]).
const CORK_BURST: usize = 128;

/// Byte budget of one worker's corked buffer. Kept far below the
/// transport's maximum frame so a flush always fits a single batch frame —
/// which on TCP is written all-or-nothing, making the failed-flush
/// uncounting in [`Controller::flush_outbox`] exact (a partial delivery
/// would otherwise double-count completions against `outstanding`).
const CORK_MAX_BYTES: usize = 8 << 20;
use crate::data_manager::DataManager;
use crate::error::{ControllerError, ControllerResult};
use crate::expansion::{expand_task, refresh_instance, Bookkeeping, IdGens};
use crate::template_manager::TemplateManager;

/// Static controller configuration.
pub struct ControllerConfig {
    /// The initial worker allocation.
    pub workers: Vec<WorkerId>,
    /// Partition assignment policy.
    pub policy: AssignmentPolicy,
    /// Whether execution templates are enabled (disabled = pure centralized
    /// per-task scheduling, the Spark-like baseline).
    pub enable_templates: bool,
    /// Automatically checkpoint after this many template instantiations.
    pub checkpoint_every: Option<u64>,
    /// How long a transport-detected worker failure waits for the worker to
    /// rejoin before recovery proceeds without it. Within the window a
    /// returning worker is readmitted in place: its templates are
    /// reinstalled (with every edit applied so far) and the checkpoint
    /// reload targets it directly, so the job resumes with zero template
    /// re-recordings. `None` (the default) recovers immediately onto the
    /// survivors, as before.
    pub rejoin_grace: Option<Duration>,
    /// Whether hot-path sends (command dispatch and template instantiation)
    /// are corked into one batched send per worker per flush (the default).
    /// Disabled, the controller issues one transport send per message — the
    /// pre-batching wire behavior the `fig8_real_throughput` bench measures
    /// against. Message contents and per-worker ordering are identical
    /// either way.
    pub batch_sends: bool,
}

impl ControllerConfig {
    /// Creates a configuration with templates enabled and no auto checkpoints.
    pub fn new(workers: Vec<WorkerId>) -> Self {
        Self {
            workers,
            policy: AssignmentPolicy::hash(),
            enable_templates: true,
            checkpoint_every: None,
            rejoin_grace: None,
            batch_sends: true,
        }
    }
}

#[allow(clippy::large_enum_variant)] // CheckpointSave is rare; boxing would obscure it
enum PendingSync {
    None,
    Barrier,
    FetchDrain(LogicalPartition),
    FetchValue(LogicalPartition),
    CheckpointDrain {
        marker: u64,
        notify: bool,
    },
    CheckpointSave {
        marker: u64,
        notify: bool,
        descriptor: CheckpointDescriptor,
    },
    Recovering {
        marker: u64,
        /// Workers whose `Halted` acknowledgement is still outstanding. A
        /// worker leaves this set when it halts — or when its connection
        /// drops, since a dead worker will never acknowledge.
        pending_halts: Vec<WorkerId>,
        /// Whether to send the driver a `RecoveryComplete` reply (true for
        /// driver-initiated `FailWorker`, false for transport-detected
        /// failures, where the driver is not waiting for one).
        notify: bool,
        /// The failed worker recovery is still willing to readmit: recovery
        /// completes only once this worker registers again or the rejoin
        /// grace deadline passes.
        awaiting_rejoin: Option<WorkerId>,
        /// Workers readmitted during this recovery. They came back as fresh
        /// processes with empty stores, so completion must recreate every
        /// physical instance the restored bookkeeping places on them.
        rejoined: Vec<WorkerId>,
    },
}

/// Messages corked for one worker between flushes, plus how many commands
/// of `outstanding` they account for (so a failed flush can uncount them,
/// matching the per-message path where a failed send was never counted).
struct WorkerOutbox {
    worker: WorkerId,
    messages: Vec<Message>,
    commands: u64,
    /// Estimated wire bytes corked, to keep a flush within one frame.
    bytes: usize,
}

/// The centralized controller node, generic over the transport connecting
/// it to the cluster (in-process [`Endpoint`] by default, or TCP).
pub struct Controller<E: TransportEndpoint = Endpoint> {
    endpoint: E,
    workers: Vec<WorkerId>,
    /// `workers`, kept sorted and deduplicated: the steady-state template
    /// lookup key, maintained on every allocation change so instantiation
    /// never materializes (or sorts) a worker list per block.
    workers_sorted: Vec<WorkerId>,
    all_workers: Vec<WorkerId>,
    dm: DataManager,
    bk: Bookkeeping,
    ids: IdGens,
    tm: TemplateManager,
    lineage: LineageLog,
    checkpoints: CheckpointLog,
    outstanding: u64,
    enable_templates: bool,
    checkpoint_every: Option<u64>,
    instantiations_since_checkpoint: u64,
    sync: PendingSync,
    /// The driver operation a transport-detected failure interrupted; it is
    /// re-armed once recovery completes so the driver's pending request is
    /// answered (with post-recovery state) instead of abandoned.
    resume_after_recovery: PendingSync,
    /// A driver synchronization that arrived while another one (typically an
    /// auto-checkpoint) was still in flight. The driver is synchronous, so
    /// one slot suffices; it is installed as soon as the current one
    /// resolves. Without this, a fetch racing an auto-checkpoint would
    /// overwrite the un-committed `CheckpointSave` and silently discard the
    /// checkpoint.
    queued_sync: Option<PendingSync>,
    deferred: VecDeque<Envelope>,
    /// Messages that arrived while a recovery was in flight (driver traffic
    /// and registrations from workers other than the awaited one). Dispatched
    /// against post-recovery state once the recovery completes; processing
    /// them mid-recovery would execute commands against half-restored data.
    held: VecDeque<Envelope>,
    /// How long transport-detected failures wait for the worker to rejoin.
    rejoin_grace: Option<Duration>,
    /// Deadline of the rejoin wait currently in progress, if any; bounds the
    /// blocking receive in the controller loop.
    rejoin_deadline: Option<Instant>,
    /// Template instantiations since the last *committed* checkpoint, in
    /// order. After a recovery restores that checkpoint, the controller
    /// replays them itself — no driver involvement — so the data state
    /// catches back up to the pre-failure point instead of silently losing
    /// the iterations in between.
    replay_log: Vec<(String, InstantiationParams)>,
    /// False once the log stopped being a faithful reconstruction (e.g. a
    /// failure interrupted an active recording); replay is skipped then.
    replay_valid: bool,
    /// True while the controller replays logged instantiations (suppresses
    /// re-logging and auto-checkpoint scheduling).
    replaying: bool,
    stats: ControlPlaneStats,
    running: bool,
    /// Whether hot-path sends are corked into per-worker batches.
    batch_sends: bool,
    /// The cork: per-worker message buffers filled by the dispatch helpers
    /// and flushed as one batched send per worker — at most one `write(2)`
    /// each on TCP — before the controller blocks for more traffic.
    outbox: Vec<WorkerOutbox>,
}

impl<E: TransportEndpoint> Controller<E> {
    /// Creates a controller bound to a transport endpoint.
    pub fn new(config: ControllerConfig, endpoint: E) -> Self {
        let mut workers_sorted = config.workers.clone();
        workers_sorted.sort_unstable();
        workers_sorted.dedup();
        Self {
            endpoint,
            all_workers: config.workers.clone(),
            workers_sorted,
            workers: config.workers,
            dm: DataManager::new(config.policy),
            bk: Bookkeeping::new(),
            ids: IdGens::new(),
            tm: TemplateManager::new(),
            lineage: LineageLog::new(),
            checkpoints: CheckpointLog::new(),
            outstanding: 0,
            enable_templates: config.enable_templates,
            checkpoint_every: config.checkpoint_every,
            instantiations_since_checkpoint: 0,
            sync: PendingSync::None,
            resume_after_recovery: PendingSync::None,
            queued_sync: None,
            deferred: VecDeque::new(),
            held: VecDeque::new(),
            rejoin_grace: config.rejoin_grace,
            rejoin_deadline: None,
            replay_log: Vec::new(),
            replay_valid: true,
            replaying: false,
            stats: ControlPlaneStats::new(),
            running: true,
            batch_sends: config.batch_sends,
            outbox: Vec::new(),
        }
    }

    /// Re-derives the sorted allocation after `workers` changed. Allocation
    /// changes are rare (eviction, rejoin, elastic join), so recomputing the
    /// cache there keeps the per-instantiation path allocation-free.
    fn note_workers_changed(&mut self) {
        self.workers_sorted.clear();
        self.workers_sorted.extend(self.workers.iter().copied());
        self.workers_sorted.sort_unstable();
        self.workers_sorted.dedup();
    }

    /// Read-only access to the accumulated control-plane statistics.
    pub fn stats(&self) -> &ControlPlaneStats {
        &self.stats
    }

    /// Runs the controller until the driver shuts the job down; returns the
    /// accumulated control-plane statistics.
    pub fn run(mut self) -> ControlPlaneStats {
        while self.running {
            let envelope = match self.next_envelope() {
                Some(e) => e,
                None => break,
            };
            self.handle(envelope);
            // Opportunistic burst drain: handle whatever is already queued
            // before flushing, so the sends of many pipelined driver
            // requests (the paper's steady-state instantiation stream)
            // coalesce into one batched send per worker. Bounded so a
            // flooding driver cannot starve the flush, and always followed
            // by a flush before the next blocking receive — corked messages
            // never outlive the burst that produced them.
            let mut burst = 1usize;
            while self.running && burst < CORK_BURST {
                let next = match self.deferred.pop_front() {
                    Some(e) => Some(e),
                    None => self.endpoint.try_recv().ok(),
                };
                let Some(envelope) = next else { break };
                self.handle(envelope);
                burst += 1;
            }
            self.flush_outbox();
        }
        self.flush_outbox();
        self.stats
    }

    fn next_envelope(&mut self) -> Option<Envelope> {
        if let Some(e) = self.deferred.pop_front() {
            return Some(e);
        }
        loop {
            let Some(deadline) = self.rejoin_deadline else {
                return self.endpoint.recv().ok();
            };
            let now = Instant::now();
            if now >= deadline {
                self.expire_rejoin_grace();
                continue;
            }
            match self.endpoint.recv_timeout(deadline - now) {
                Ok(e) => return Some(e),
                Err(NetError::Timeout) => self.expire_rejoin_grace(),
                Err(_) => return None,
            }
        }
    }

    /// True for messages that must not be processed against mid-recovery
    /// state: driver traffic, and registrations from workers other than the
    /// one recovery is willing to readmit. They are parked in `held` and
    /// dispatched once the recovery completes.
    fn should_hold(&self, envelope: &Envelope) -> bool {
        let PendingSync::Recovering {
            awaiting_rejoin, ..
        } = &self.sync
        else {
            return false;
        };
        match &envelope.message {
            Message::Driver(_) => true,
            Message::FromWorker(WorkerToController::Register { worker }) => {
                *awaiting_rejoin != Some(*worker)
            }
            _ => false,
        }
    }

    fn handle(&mut self, envelope: Envelope) {
        if self.should_hold(&envelope) {
            self.held.push_back(envelope);
            return;
        }
        match envelope.message {
            Message::Driver(msg) => {
                let start = Instant::now();
                self.handle_driver(msg);
                self.stats.control_plane_time += start.elapsed();
            }
            Message::FromWorker(msg) => self.handle_worker(msg),
            Message::Transport(TransportEvent::PeerDisconnected(peer)) => {
                self.handle_disconnect(peer);
            }
            // The rejoin handshake is driven by the worker's `Register`
            // message, which carries identity; the raw transport notice is
            // informational.
            Message::Transport(TransportEvent::PeerReconnected(_)) => {}
            _ => {}
        }
    }

    /// Reacts to a transport-reported peer loss (TCP transport only; the
    /// in-process fabric never severs connections).
    fn handle_disconnect(&mut self, peer: NodeId) {
        match peer {
            // A lost worker is an abrupt failure: run the same recovery path
            // the driver's explicit `FailWorker` exercises. Without a
            // checkpoint this surfaces a clean error to the driver instead
            // of hanging the job.
            NodeId::Worker(w) => {
                if !self.workers.contains(&w) {
                    return; // Already evicted.
                }
                if let PendingSync::Recovering {
                    awaiting_rejoin, ..
                } = &self.sync
                {
                    // A second failure while already recovering: the worker
                    // will never acknowledge its Halt, so count it out and
                    // keep the recovery moving instead of wedging.
                    let still_awaited = awaiting_rejoin.is_some();
                    self.workers.retain(|x| *x != w);
                    self.note_workers_changed();
                    if self.workers.is_empty() && !still_awaited {
                        self.sync = PendingSync::None;
                        self.resume_after_recovery = PendingSync::None;
                        self.reply(ControllerToDriver::Error {
                            message: "every worker disconnected during recovery".to_string(),
                        });
                        return;
                    }
                    self.note_halted(w);
                    return;
                }
                // Recovery replaces whatever the driver was synchronizing
                // on; stash it so the pending request is answered (against
                // recovered state) once recovery completes, instead of the
                // driver receiving a reply it never asked for. Stashed
                // *before* `begin_recovery`, which may complete the recovery
                // synchronously when no halt acknowledgement is expected.
                let interrupted = std::mem::replace(&mut self.sync, PendingSync::None);
                self.resume_after_recovery = Self::resumable(interrupted);
                if let Err(e) = self.begin_recovery(w, false, true) {
                    // Unrecoverable (no checkpoint / no workers): answer
                    // the driver's pending request — or its next one —
                    // with a clean error rather than hanging.
                    self.resume_after_recovery = PendingSync::None;
                    self.reply(ControllerToDriver::Error {
                        message: format!("worker {w} disconnected: {e}"),
                    });
                }
            }
            // A lost driver orphans the job: shut the workers down and exit
            // rather than running headless forever.
            NodeId::Driver => self.shutdown_workers(),
            NodeId::Controller => {}
        }
    }

    /// Broadcasts `Shutdown` to every worker ever allocated (failed ones
    /// included — their in-process thread may still be alive; a dead TCP
    /// peer just fails the send) and stops the controller loop.
    fn shutdown_workers(&mut self) {
        // Corked commands first: a Shutdown that overtook them would stop a
        // worker with work still in flight.
        self.flush_outbox();
        for w in &self.all_workers {
            let _ = self.endpoint.send(
                NodeId::Worker(*w),
                Message::ToWorker(ControllerToWorker::Shutdown),
            );
        }
        self.running = false;
    }

    // ------------------------------------------------------------------
    // Driver interface
    // ------------------------------------------------------------------

    fn handle_driver(&mut self, msg: DriverMessage) {
        match msg {
            DriverMessage::DefineDataset(def) => {
                self.dm.define_dataset(def);
                self.reply(ControllerToDriver::Ack);
            }
            DriverMessage::SubmitTask(spec) => {
                // Individually submitted tasks are not captured by the
                // instantiation replay log; a recovery spanning them cannot
                // faithfully reconstruct the stream.
                self.replay_valid = false;
                if let Err(e) = self.submit_task(spec) {
                    self.reply(ControllerToDriver::Error {
                        message: e.to_string(),
                    });
                }
            }
            DriverMessage::StartTemplate { name } => {
                self.replay_valid = false;
                let result = if self.enable_templates {
                    self.tm.start_recording(&name)
                } else {
                    Ok(())
                };
                match result {
                    Ok(()) => self.reply(ControllerToDriver::Ack),
                    Err(e) => self.reply(ControllerToDriver::Error {
                        message: e.to_string(),
                    }),
                }
            }
            DriverMessage::AbortTemplate { name } => {
                let result = if self.enable_templates {
                    self.tm.abort_recording(&name)
                } else {
                    Ok(())
                };
                match result {
                    Ok(()) => self.reply(ControllerToDriver::Ack),
                    Err(e) => self.reply(ControllerToDriver::Error {
                        message: e.to_string(),
                    }),
                }
            }
            DriverMessage::FinishTemplate { name } => {
                if !self.enable_templates {
                    self.reply(ControllerToDriver::TemplateInstalled { name });
                    return;
                }
                match self.finish_template(&name) {
                    Ok(()) => self.reply(ControllerToDriver::TemplateInstalled { name }),
                    Err(e) => self.reply(ControllerToDriver::Error {
                        message: e.to_string(),
                    }),
                }
            }
            DriverMessage::InstantiateTemplate { name, params } => {
                match self.instantiate_block(&name, &params) {
                    // Only successful instantiations enter the replay log: a
                    // failed one (which may have mutated state partially)
                    // makes the window unfaithful, and logging it would
                    // poison any later replay.
                    Ok(()) => self.replay_log.push((name, params)),
                    Err(e) => {
                        self.replay_valid = false;
                        self.reply(ControllerToDriver::Error {
                            message: e.to_string(),
                        });
                    }
                }
            }
            DriverMessage::FetchValue { partition } => {
                self.set_or_queue_sync(PendingSync::FetchDrain(partition));
            }
            DriverMessage::Barrier => {
                self.set_or_queue_sync(PendingSync::Barrier);
            }
            DriverMessage::EnableTemplates(enabled) => {
                self.enable_templates = enabled;
                self.replay_valid = false;
                self.reply(ControllerToDriver::Ack);
            }
            DriverMessage::Checkpoint { marker } => {
                self.set_or_queue_sync(PendingSync::CheckpointDrain {
                    marker,
                    notify: true,
                });
            }
            DriverMessage::MigrateTasks { name, count } => {
                self.replay_valid = false;
                match self
                    .tm
                    .plan_migrations(&name, count, &self.workers, &mut self.dm)
                {
                    Ok(planned) => {
                        self.stats.edits_applied += planned as u64;
                        self.reply(ControllerToDriver::Ack);
                    }
                    Err(e) => self.reply(ControllerToDriver::Error {
                        message: e.to_string(),
                    }),
                }
            }
            DriverMessage::SetWorkerAllocation { workers } => {
                self.replay_valid = false;
                match self.change_allocation(workers) {
                    Ok(()) => self.reply(ControllerToDriver::Ack),
                    Err(e) => self.reply(ControllerToDriver::Error {
                        message: e.to_string(),
                    }),
                }
            }
            DriverMessage::FailWorker { worker } => {
                // Driver-simulated failures are the paper's fault-recovery
                // experiments: they recover immediately, without waiting for
                // a rejoin that will never come.
                if let Err(e) = self.begin_recovery(worker, true, false) {
                    self.reply(ControllerToDriver::Error {
                        message: e.to_string(),
                    });
                }
            }
            DriverMessage::Shutdown => {
                self.shutdown_workers();
                self.reply(ControllerToDriver::JobTerminated);
            }
        }
    }

    fn submit_task(&mut self, spec: TaskSpec) -> ControllerResult<()> {
        let expanded = expand_task(
            &spec,
            &self.workers,
            &mut self.dm,
            &mut self.bk,
            &self.ids,
            &mut self.lineage,
        )?;
        self.tm.record_task(&spec, &expanded);
        self.stats.tasks_scheduled_directly += 1;
        self.stats.copies_inserted += expanded
            .commands
            .iter()
            .filter(|c| c.command.kind.is_network_copy())
            .count() as u64
            / 2;
        self.dispatch(expanded.commands)?;
        Ok(())
    }

    fn finish_template(&mut self, name: &str) -> ControllerResult<()> {
        let (_ct, _group, installs) = self.tm.finish_recording(name, &self.dm, &self.ids)?;
        self.stats.controller_templates_installed += 1;
        self.stats.worker_template_groups_generated += 1;
        self.stats.worker_templates_installed += installs.len() as u64;
        for (worker, template) in installs {
            self.send_worker(worker, ControllerToWorker::InstallTemplate { template })?;
        }
        Ok(())
    }

    fn instantiate_block(
        &mut self,
        name: &str,
        params: &InstantiationParams,
    ) -> ControllerResult<()> {
        let ct = self
            .tm
            .registry
            .controller_template_by_name(name)
            .ok_or_else(|| ControllerError::UnknownBlock(name.to_string()))?;
        let ct_id = ct.id;
        let task_count = ct.task_count();
        self.stats.controller_template_instantiations += 1;
        self.instantiations_since_checkpoint += 1;

        let group = self
            .tm
            .registry
            .find_group_for_sorted_workers(ct_id, &self.workers_sorted)
            .map(|g| g.id);

        match group {
            Some(group_id) if self.enable_templates => {
                let plan = self.tm.plan_instantiation(
                    group_id,
                    params,
                    &mut self.dm,
                    &mut self.bk,
                    &self.ids,
                )?;
                if plan.auto_validated {
                    self.stats.auto_validations += 1;
                } else {
                    self.stats.full_validations += 1;
                }
                if !plan.patch_commands.is_empty() {
                    self.stats.patches_applied += 1;
                    if plan.patch_cache_hit {
                        self.stats.patch_cache_hits += 1;
                    } else {
                        self.stats.patch_cache_misses += 1;
                    }
                    self.dispatch(plan.patch_commands)?;
                }
                let edit_count: usize = plan.per_worker.iter().map(|(_, i)| i.edits.len()).sum();
                self.stats.edits_applied += edit_count as u64;
                self.stats.worker_template_instantiations += plan.per_worker.len() as u64;
                self.stats.tasks_from_templates += plan.task_count;
                // Counted unconditionally (not per send): a send to a worker
                // that just died must not fail the instantiation — the
                // transport's disconnect notice follows and recovery resets
                // `outstanding` and the data state wholesale.
                self.outstanding += plan.expected_commands;
                for (worker, instantiation) in plan.per_worker {
                    // Queued behind any patch commands corked for the same
                    // worker, so the whole instantiation leaves as one
                    // batched send per worker.
                    self.queue_worker(
                        worker,
                        ControllerToWorker::InstantiateTemplate(instantiation),
                        0,
                    );
                }
            }
            _ => {
                // No worker templates match the current allocation (or
                // templates are disabled): schedule the block task by task,
                // recording a fresh group if templates are enabled.
                let task_base = self.ids.tasks.next_block(task_count as u64);
                let task_ids: Vec<TaskId> = (0..task_count as u64)
                    .map(|i| TaskId(task_base + i))
                    .collect();
                let ct = self
                    .tm
                    .registry
                    .controller_template_by_name(name)
                    .expect("checked above");
                let specs = ct.instantiate(&task_ids, params)?;
                let record = self.enable_templates && !self.tm.is_recording();
                if record {
                    self.tm.start_recording(name)?;
                }
                for spec in &specs {
                    // Placement hints from the old assignment may point at
                    // evicted workers; expansion falls back to the current
                    // allocation automatically.
                    let expanded = expand_task(
                        spec,
                        &self.workers,
                        &mut self.dm,
                        &mut self.bk,
                        &self.ids,
                        &mut self.lineage,
                    )?;
                    self.tm.record_task(spec, &expanded);
                    self.stats.tasks_scheduled_directly += 1;
                    self.dispatch(expanded.commands)?;
                }
                if record {
                    self.finish_template(name)?;
                }
            }
        }

        if let Some(every) = self.checkpoint_every {
            if !self.replaying
                && self.instantiations_since_checkpoint >= every
                && matches!(self.sync, PendingSync::None)
            {
                let marker = self.instantiations_since_checkpoint;
                self.instantiations_since_checkpoint = 0;
                // Drains the just-dispatched instantiation first, then saves.
                self.set_or_queue_sync(PendingSync::CheckpointDrain {
                    marker,
                    notify: false,
                });
            }
        }
        Ok(())
    }

    fn change_allocation(&mut self, new_workers: Vec<WorkerId>) -> ControllerResult<()> {
        if new_workers.is_empty() {
            return Err(ControllerError::NoWorkers);
        }
        let evicted: Vec<WorkerId> = self
            .workers
            .iter()
            .copied()
            .filter(|w| !new_workers.contains(w))
            .collect();
        for w in &new_workers {
            if !self.all_workers.contains(w) {
                self.all_workers.push(*w);
            }
        }
        // Drain evicted workers: move the latest copy of every partition they
        // exclusively hold onto a surviving worker, then forget their
        // instances.
        for w in &evicted {
            let partitions: Vec<LogicalPartition> = self
                .dm
                .instances
                .on_worker(*w)
                .iter()
                .map(|i| i.logical)
                .collect();
            let mut commands = Vec::new();
            for lp in partitions {
                let holders = self.dm.instances.latest_holders(lp, &self.dm.versions);
                let only_here = holders.iter().all(|h| h.worker == *w) && !holders.is_empty();
                if only_here {
                    self.dm.set_home(lp, {
                        // Re-home deterministically among the new allocation.
                        let idx = (lp.partition.raw() as usize) % new_workers.len();
                        new_workers[idx]
                    });
                    let target = self.dm.current_home(lp).expect("home just set");
                    refresh_instance(
                        lp,
                        target,
                        &mut self.dm,
                        &mut self.bk,
                        &self.ids,
                        &mut commands,
                    )?;
                }
            }
            self.dispatch(commands)?;
            self.dm.drop_worker(*w);
        }
        self.workers = new_workers;
        self.note_workers_changed();
        Ok(())
    }

    /// Maps an interrupted driver synchronization to the state that restarts
    /// it after recovery: in-flight fetches re-drain (their target worker may
    /// have changed), half-done checkpoints restart from the drain step.
    fn resumable(interrupted: PendingSync) -> PendingSync {
        match interrupted {
            PendingSync::FetchValue(p) | PendingSync::FetchDrain(p) => PendingSync::FetchDrain(p),
            PendingSync::CheckpointSave { marker, notify, .. } => {
                PendingSync::CheckpointDrain { marker, notify }
            }
            other => other,
        }
    }

    /// Records that `worker` will produce no (further) `Halted` reply —
    /// because it halted, or because it disconnected — and completes the
    /// recovery once every expected acknowledgement is accounted for.
    fn note_halted(&mut self, worker: WorkerId) {
        if let PendingSync::Recovering { pending_halts, .. } = &mut self.sync {
            pending_halts.retain(|w| *w != worker);
            self.maybe_finish_recovery();
        }
    }

    /// Completes the recovery once every halt is acknowledged *and* the
    /// rejoin wait (if any) has resolved — the awaited worker registered or
    /// the grace deadline passed.
    fn maybe_finish_recovery(&mut self) {
        if let PendingSync::Recovering {
            marker,
            pending_halts,
            notify,
            awaiting_rejoin,
            rejoined,
        } = &self.sync
        {
            if pending_halts.is_empty() && awaiting_rejoin.is_none() {
                let (marker, notify, rejoined) = (*marker, *notify, rejoined.clone());
                self.sync = PendingSync::None;
                self.complete_recovery(marker, notify, &rejoined);
            }
        }
    }

    /// Gives up on the awaited worker: recovery proceeds onto the survivors
    /// (the pre-rejoin behavior). Its groups are left installed but
    /// unfindable for the shrunken allocation, so the next instantiation
    /// regenerates templates — the checkpoint-restart baseline the rejoin
    /// path is measured against.
    fn expire_rejoin_grace(&mut self) {
        self.rejoin_deadline = None;
        if let PendingSync::Recovering {
            awaiting_rejoin, ..
        } = &mut self.sync
        {
            awaiting_rejoin.take();
            self.maybe_finish_recovery();
        }
    }

    fn begin_recovery(
        &mut self,
        failed: WorkerId,
        notify: bool,
        allow_rejoin_wait: bool,
    ) -> ControllerResult<()> {
        self.stats.failures_handled += 1;
        let marker = self
            .checkpoints
            .latest()
            .map(|c| c.progress_marker)
            .ok_or(ControllerError::NoCheckpoint)?;
        // A failure that lands while a basic block is being recorded leaves
        // the log without the surrounding recording traffic; replaying it
        // later would desynchronize the driver's view. Skip replay then.
        if self.tm.is_recording() {
            self.replay_valid = false;
        }
        // The failed worker leaves the allocation but stays in `all_workers`:
        // the in-process "failed" thread still needs a shutdown message at
        // job end (a real deployment would simply have lost the process).
        self.workers.retain(|w| *w != failed);
        self.note_workers_changed();
        let awaiting_rejoin = if allow_rejoin_wait {
            self.rejoin_grace.map(|grace| {
                self.rejoin_deadline = Some(Instant::now() + grace);
                failed
            })
        } else {
            None
        };
        // Without a rejoin wait the job cannot continue workerless; with one
        // it may ride out the window even if the failed worker was the last.
        if self.workers.is_empty() && awaiting_rejoin.is_none() {
            return Err(ControllerError::NoWorkers);
        }
        // Halt every surviving worker: they terminate ongoing commands and
        // flush their queues (Section 4.4). A survivor whose Halt cannot be
        // sent is dying too — its own disconnect notice will evict it; it
        // must not be waited on for an acknowledgement that cannot come.
        let mut pending_halts = Vec::new();
        for i in 0..self.workers.len() {
            let w = self.workers[i];
            if self.send_worker(w, ControllerToWorker::Halt).is_ok() {
                pending_halts.push(w);
            }
        }
        self.sync = PendingSync::Recovering {
            marker,
            pending_halts,
            notify,
            awaiting_rejoin,
            rejoined: Vec::new(),
        };
        // With no halts outstanding and no rejoin to wait for (every
        // survivor's Halt send failed), nothing else will drive completion.
        self.maybe_finish_recovery();
        Ok(())
    }

    fn complete_recovery(&mut self, marker: u64, notify: bool, rejoined: &[WorkerId]) {
        // A rejoin-grace recovery can ride out the window with zero workers
        // (the failed worker was the last one); if the grace expired without
        // a return there is nothing to recover onto — surface a clean error
        // instead of dividing the reload re-homing by zero.
        if self.workers.is_empty() {
            self.resume_after_recovery = PendingSync::None;
            self.replay_valid = false;
            self.reply(ControllerToDriver::Error {
                message: "every worker disconnected during recovery".to_string(),
            });
            // Held driver traffic is answered against the workerless state
            // (each request fails cleanly with NoWorkers).
            let held = std::mem::take(&mut self.held);
            self.deferred.extend(held);
            return;
        }
        let descriptor = self
            .checkpoints
            .latest()
            .cloned()
            .expect("recovery requires a checkpoint");
        // Reset execution state to the snapshot.
        self.outstanding = 0;
        self.bk.clear();
        self.dm.versions = descriptor.versions.clone();
        self.dm.instances = descriptor.instances.clone();
        // Forget instances that lived on workers no longer in the allocation.
        let snapshot_workers: Vec<WorkerId> = self
            .dm
            .instances
            .iter()
            .map(|i| i.worker)
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        for w in snapshot_workers {
            if !self.workers.contains(&w) {
                self.dm.drop_worker(w);
            }
        }
        // A rejoined worker is a fresh process with an empty store, while the
        // restored bookkeeping says its physical instances exist. Recreate
        // every instance resident on it (idempotent on workers that still
        // hold the object) so the reloads, copies, and template entries that
        // follow have real objects to land in. Contents start as factory
        // defaults; the manifest reload below restores checkpointed values,
        // and anything stale is refreshed by validation patches before use.
        let mut commands: Vec<AssignedCommand> = Vec::new();
        for rw in rejoined {
            let resident: Vec<nimbus_core::PhysicalInstance> = self
                .dm
                .instances
                .on_worker(*rw)
                .into_iter()
                .copied()
                .collect();
            for instance in resident {
                let id = self.ids.command();
                let create = Command::new(
                    id,
                    CommandKind::CreateData {
                        object: instance.id,
                        logical: instance.logical,
                    },
                );
                self.bk.note_write(instance.id, id);
                commands.push(AssignedCommand {
                    command: create,
                    worker: *rw,
                });
            }
        }
        // Reload every checkpointed partition into memory, re-homing the ones
        // whose instance disappeared with the failed worker.
        for entry in descriptor.manifest.clone() {
            let target = if self.workers.contains(&entry.worker) {
                entry.worker
            } else {
                let idx = (entry.partition.partition.raw() as usize) % self.workers.len();
                self.workers[idx]
            };
            let instance = crate::expansion::ensure_instance_commands(
                entry.partition,
                target,
                &mut self.dm,
                &mut self.bk,
                &self.ids,
                &mut commands,
            );
            let id = self.ids.command();
            let load = Command::new(
                id,
                CommandKind::LoadData {
                    object: instance.id,
                    key: entry.key.clone(),
                },
            )
            .with_before(self.bk.write_deps(instance.id));
            self.bk.note_write(instance.id, id);
            commands.push(AssignedCommand {
                command: load,
                worker: target,
            });
            self.dm.record_refresh(entry.partition, instance.id);
        }
        let _ = self.dispatch(commands);
        // Templates built for the old allocation will be regenerated lazily
        // (or reused as-is when the failed worker rejoined in place); cached
        // patches may reference lost objects.
        self.tm.last_executed = None;
        self.tm.patch_cache = nimbus_core::PatchCache::new();
        // For transport-detected failures (`notify == false`: the driver is
        // oblivious and keeps the values it already fetched), replay the
        // instantiations issued since the restored checkpoint so the data
        // state catches back up to the exact pre-failure point — losing them
        // would silently fork history. Replay is controller-local: no driver
        // involvement, and with a rejoined worker no template re-recording
        // either. Driver-initiated `FailWorker` recoveries skip this: the
        // paper's experiment pattern has the driver re-run the lost
        // iterations itself. The log is kept: a second failure before the
        // next checkpoint commit replays the same window.
        if !notify && self.replay_valid && !self.replay_log.is_empty() {
            let log = self.replay_log.clone();
            self.replaying = true;
            for (name, params) in &log {
                if self.instantiate_block(name, params).is_err() {
                    // The window can no longer be reconstructed faithfully;
                    // stop (the data state stays at a consistent prefix) and
                    // never trust this log again.
                    self.replay_valid = false;
                    break;
                }
                self.stats.instantiations_replayed += 1;
            }
            self.replaying = false;
        } else if notify {
            // Driver-initiated recovery: the driver re-runs the lost
            // iterations itself, so the faithful replay window restarts at
            // the restored checkpoint.
            self.replay_log.clear();
            self.replay_valid = true;
        }
        if notify {
            self.reply(ControllerToDriver::RecoveryComplete { marker });
        }
        // Re-arm the driver operation the failure interrupted: it proceeds
        // against the recovered state once the reload and replay commands
        // drain.
        match std::mem::replace(&mut self.resume_after_recovery, PendingSync::None) {
            PendingSync::None => {}
            resume => {
                self.sync = resume;
                if self.outstanding == 0 {
                    self.advance_sync();
                }
            }
        }
        // Release the messages recovery held back; they observe the fully
        // recovered (and replayed) state, in arrival order.
        let held = std::mem::take(&mut self.held);
        self.deferred.extend(held);
    }

    // ------------------------------------------------------------------
    // Worker interface
    // ------------------------------------------------------------------

    fn handle_worker(&mut self, msg: WorkerToController) {
        match msg {
            WorkerToController::CommandsCompleted {
                commands,
                compute_micros,
                ..
            } => {
                let n = commands.len() as u64;
                self.outstanding = self.outstanding.saturating_sub(n);
                self.stats.computation_time += std::time::Duration::from_micros(compute_micros);
                if self.outstanding == 0 {
                    self.advance_sync();
                }
            }
            WorkerToController::TemplateInstalled { .. } => {}
            WorkerToController::ValueFetched { value, .. } => {
                if let PendingSync::FetchValue(partition) = self.sync {
                    self.sync = PendingSync::None;
                    self.reply(ControllerToDriver::ValueFetched { partition, value });
                }
            }
            WorkerToController::Halted { worker } => self.note_halted(worker),
            WorkerToController::Heartbeat { .. } => {}
            WorkerToController::Register { worker } => self.handle_register(worker),
        }
    }

    // ------------------------------------------------------------------
    // Rejoin handshake
    // ------------------------------------------------------------------

    /// A worker announced itself. Three cases:
    ///
    /// 1. It is the worker an in-flight recovery is waiting for: readmit it
    ///    in place — reinstall its (patched) templates, answer with the
    ///    current version map, and let the recovery reload the checkpoint
    ///    directly onto it. Zero template re-recordings.
    /// 2. It is already allocated: the idempotent startup hello.
    /// 3. It is new to the running job (brand-new id, or returning after a
    ///    permanent eviction): admit it elastically — install an (empty)
    ///    member template per group and queue migration edits that move its
    ///    share of tasks over; data follows through the patch copy path.
    fn handle_register(&mut self, worker: WorkerId) {
        if let PendingSync::Recovering {
            awaiting_rejoin,
            rejoined,
            ..
        } = &mut self.sync
        {
            if *awaiting_rejoin == Some(worker) {
                *awaiting_rejoin = None;
                rejoined.push(worker);
                self.rejoin_deadline = None;
                self.workers.push(worker);
                self.note_workers_changed();
                self.stats.rejoins_handled += 1;
                self.reinstall_templates(worker);
                self.send_rejoin_ack(worker);
                self.maybe_finish_recovery();
            }
            // Registrations from other workers are parked by `should_hold`
            // and handled after the recovery completes.
            return;
        }
        if self.workers.contains(&worker) {
            // Startup hello from a worker of the initial allocation (or a
            // duplicate register): acknowledge and move on.
            self.send_rejoin_ack(worker);
            return;
        }
        // Elastic join of a running job.
        self.stats.rejoins_handled += 1;
        if !self.all_workers.contains(&worker) {
            self.all_workers.push(worker);
        }
        self.workers.push(worker);
        self.note_workers_changed();
        match self.tm.admit_worker(worker, &self.workers, &mut self.dm) {
            Ok((installs, planned)) => {
                self.stats.edits_applied += planned as u64;
                for template in installs {
                    self.stats.worker_templates_installed += 1;
                    let _ =
                        self.send_worker(worker, ControllerToWorker::InstallTemplate { template });
                }
                self.send_rejoin_ack(worker);
            }
            Err(_) => {
                // Admission failed: withdraw the worker rather than leave a
                // half-admitted member the planner will trip over. No reply
                // goes to the driver — it never asked for this join, and an
                // unsolicited Error would desynchronize its request/reply
                // protocol; the job simply continues on the old allocation
                // (the idle worker is shut down with everyone at job end).
                self.workers.retain(|w| *w != worker);
                self.note_workers_changed();
            }
        }
    }

    /// Reinstalls, on a worker returning within the rejoin grace window,
    /// every worker template the controller-side mirror holds for it —
    /// including all edits applied over the job's lifetime, which is what
    /// makes the reinstall a "patched template" rather than a re-recording.
    fn reinstall_templates(&mut self, worker: WorkerId) {
        for template in self.tm.templates_for_worker(worker) {
            self.stats.worker_templates_installed += 1;
            let _ = self.send_worker(worker, ControllerToWorker::InstallTemplate { template });
        }
    }

    /// Completes the handshake: the worker receives the controller's current
    /// version map (sorted for determinism).
    fn send_rejoin_ack(&mut self, worker: WorkerId) {
        let mut versions: Vec<PartitionVersion> = self
            .dm
            .versions
            .iter()
            .map(|(partition, version)| PartitionVersion {
                partition,
                version: version.raw(),
            })
            .collect();
        versions.sort_unstable_by_key(|pv| pv.partition);
        let _ = self.send_worker(worker, ControllerToWorker::RejoinAccepted { versions });
    }

    /// Installs a driver synchronization, running it immediately when the
    /// cluster is idle, or queueing it behind whatever synchronization is
    /// already in flight (at most one can be: the driver is synchronous, and
    /// the only controller-originated one is the auto-checkpoint).
    fn set_or_queue_sync(&mut self, new_sync: PendingSync) {
        if matches!(self.sync, PendingSync::None) {
            self.sync = new_sync;
            if self.outstanding == 0 {
                self.advance_sync();
            }
        } else {
            self.queued_sync = Some(new_sync);
        }
    }

    fn advance_sync(&mut self) {
        match std::mem::replace(&mut self.sync, PendingSync::None) {
            PendingSync::None => {}
            PendingSync::Barrier => self.reply(ControllerToDriver::BarrierReached),
            PendingSync::FetchDrain(partition) => self.start_fetch(partition),
            PendingSync::FetchValue(partition) => {
                // Still waiting for the worker's reply.
                self.sync = PendingSync::FetchValue(partition);
            }
            PendingSync::CheckpointDrain { marker, notify } => {
                self.start_checkpoint(marker, notify);
            }
            PendingSync::CheckpointSave {
                marker,
                notify,
                descriptor,
            } => {
                self.checkpoints.commit(descriptor);
                self.stats.checkpoints_committed += 1;
                // The committed checkpoint is the new replay baseline:
                // instantiations before it are durable, and the log starts a
                // fresh, faithful window.
                self.replay_log.clear();
                self.replay_valid = true;
                if notify {
                    self.reply(ControllerToDriver::CheckpointCommitted { marker });
                }
            }
            PendingSync::Recovering {
                marker,
                pending_halts,
                notify,
                awaiting_rejoin,
                rejoined,
            } => {
                // Still waiting for halt acknowledgements or a rejoin.
                self.sync = PendingSync::Recovering {
                    marker,
                    pending_halts,
                    notify,
                    awaiting_rejoin,
                    rejoined,
                };
            }
        }
        // The current synchronization resolved: start the queued one, if any
        // (e.g. the fetch that arrived while an auto-checkpoint was saving).
        if matches!(self.sync, PendingSync::None) {
            if let Some(queued) = self.queued_sync.take() {
                self.sync = queued;
                if self.outstanding == 0 {
                    self.advance_sync();
                }
            }
        }
    }

    fn start_fetch(&mut self, partition: LogicalPartition) {
        match self.dm.latest_holder(partition, None) {
            Some(instance) => {
                if self
                    .send_worker(
                        instance.worker,
                        ControllerToWorker::FetchValue {
                            object: instance.id,
                        },
                    )
                    .is_ok()
                {
                    self.sync = PendingSync::FetchValue(partition);
                } else {
                    self.reply(ControllerToDriver::Error {
                        message: format!("worker {} unreachable", instance.worker),
                    });
                }
            }
            None => self.reply(ControllerToDriver::Error {
                message: format!("no instance of {partition} exists"),
            }),
        }
    }

    fn start_checkpoint(&mut self, marker: u64, notify: bool) {
        let ckpt_id = CheckpointId(self.ids.checkpoints.next_raw());
        let mut manifest = Vec::new();
        let mut commands: Vec<AssignedCommand> = Vec::new();
        for lp in self.dm.known_partitions() {
            let Some(holder) = self.dm.latest_holder(lp, None) else {
                continue;
            };
            let key = format!("ckpt/{}/{}/{}", ckpt_id, lp.object, lp.partition);
            let id = self.ids.command();
            let save = Command::new(
                id,
                CommandKind::SaveData {
                    object: holder.id,
                    key: key.clone(),
                },
            )
            .with_before(self.bk.read_deps(holder.id));
            self.bk.note_read(holder.id, id);
            commands.push(AssignedCommand {
                command: save,
                worker: holder.worker,
            });
            manifest.push(CheckpointEntry {
                partition: lp,
                version: self.dm.versions.current(lp),
                worker: holder.worker,
                key,
            });
        }
        let descriptor = CheckpointDescriptor {
            id: ckpt_id,
            versions: self.dm.versions.clone(),
            instances: self.dm.instances.clone(),
            manifest,
            progress_marker: marker,
        };
        let has_commands = !commands.is_empty();
        let _ = self.dispatch(commands);
        self.sync = PendingSync::CheckpointSave {
            marker,
            notify,
            descriptor,
        };
        if !has_commands {
            self.advance_sync();
        }
    }

    // ------------------------------------------------------------------
    // Dispatch helpers
    // ------------------------------------------------------------------

    fn dispatch(&mut self, commands: Vec<AssignedCommand>) -> ControllerResult<()> {
        if commands.is_empty() {
            return Ok(());
        }
        // Group into one message per worker while preserving program order.
        let mut order: Vec<WorkerId> = Vec::new();
        let mut per_worker: std::collections::HashMap<WorkerId, Vec<Command>> =
            std::collections::HashMap::new();
        for ac in commands {
            if !per_worker.contains_key(&ac.worker) {
                order.push(ac.worker);
            }
            per_worker.entry(ac.worker).or_default().push(ac.command);
        }
        for worker in order {
            let batch = per_worker.remove(&worker).unwrap_or_default();
            let count = batch.len() as u64;
            self.queue_worker(
                worker,
                ControllerToWorker::ExecuteCommands { commands: batch },
                count,
            );
        }
        Ok(())
    }

    /// Queues a hot-path message for `worker` on the cork, optimistically
    /// accounting its `commands` into `outstanding` (a failed flush uncounts
    /// them). With batching disabled this degenerates to the per-message
    /// path: one transport send, counted only on success — a failed send
    /// means the worker just died, its transport disconnect notice is (or
    /// shortly will be) in the inbox, and recovery rebuilds this state
    /// wholesale; erroring the driver here would race that notice, and not
    /// counting the commands keeps drains from wedging if recovery is
    /// impossible.
    fn queue_worker(&mut self, worker: WorkerId, msg: ControllerToWorker, commands: u64) {
        if !self.batch_sends {
            if self.send_worker(worker, msg).is_ok() {
                self.outstanding += commands;
                self.stats.commands_dispatched += commands;
            }
            return;
        }
        let message = Message::ToWorker(msg);
        let size = message.wire_size();
        self.stats.record_message(message.tag(), size);
        self.outstanding += commands;
        self.stats.commands_dispatched += commands;
        // An entry about to outgrow one wire frame is flushed first: the
        // batch stays all-or-nothing on the wire, so failure accounting
        // never has to guess how much of a batch was delivered.
        if let Some(entry) = self.outbox.iter().find(|o| o.worker == worker) {
            if entry.bytes + size > CORK_MAX_BYTES {
                self.flush_worker_outbox(worker);
            }
        }
        match self.outbox.iter_mut().find(|o| o.worker == worker) {
            Some(entry) => {
                entry.messages.push(message);
                entry.commands += commands;
                entry.bytes += size;
            }
            None => self.outbox.push(WorkerOutbox {
                worker,
                messages: vec![message],
                commands,
                bytes: size,
            }),
        }
    }

    /// Flushes every corked per-worker buffer: one batched send — at most
    /// one `write(2)` on TCP — per worker. A failed flush means the worker
    /// died mid-batch; its optimistically counted commands are uncounted,
    /// restoring the per-message invariant that undeliverable commands never
    /// inflate `outstanding`, and the transport's disconnect notice drives
    /// recovery as usual.
    fn flush_outbox(&mut self) {
        if self.outbox.is_empty() {
            return;
        }
        let outbox = std::mem::take(&mut self.outbox);
        for entry in outbox {
            if self
                .endpoint
                .send_many(NodeId::Worker(entry.worker), entry.messages)
                .is_err()
            {
                self.outstanding = self.outstanding.saturating_sub(entry.commands);
                self.stats.commands_dispatched = self
                    .stats
                    .commands_dispatched
                    .saturating_sub(entry.commands);
            }
        }
    }

    /// Flushes the corked buffer of one worker (if any). Every direct send
    /// goes through this first, so a directly sent message can never
    /// overtake commands corked for the same worker.
    fn flush_worker_outbox(&mut self, worker: WorkerId) {
        let Some(index) = self.outbox.iter().position(|o| o.worker == worker) else {
            return;
        };
        let entry = self.outbox.remove(index);
        if self
            .endpoint
            .send_many(NodeId::Worker(entry.worker), entry.messages)
            .is_err()
        {
            self.outstanding = self.outstanding.saturating_sub(entry.commands);
            self.stats.commands_dispatched = self
                .stats
                .commands_dispatched
                .saturating_sub(entry.commands);
        }
    }

    fn send_worker(&mut self, worker: WorkerId, msg: ControllerToWorker) -> ControllerResult<()> {
        self.flush_worker_outbox(worker);
        let message = Message::ToWorker(msg);
        self.stats
            .record_message(message.tag(), message.wire_size());
        self.endpoint
            .send(NodeId::Worker(worker), message)
            .map_err(|e| ControllerError::Net(e.to_string()))
    }

    fn reply(&mut self, msg: ControllerToDriver) {
        let message = Message::ToDriver(msg);
        self.stats
            .record_message(message.tag(), message.wire_size());
        let _ = self.endpoint.send(NodeId::Driver, message);
    }
}
