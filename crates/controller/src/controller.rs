//! The centralized Nimbus controller: a multi-tenant control plane.
//!
//! The controller receives the task streams of **many concurrent driver
//! sessions**, transforms each into an execution plan (assigning partitions
//! to workers and inserting copy commands), and dispatches commands to a
//! shared worker pool. Every piece of job state — datasets, versions,
//! templates, replay log, checkpoints, outstanding-sync tracking — lives in
//! a per-job namespace behind the [`JobTable`]: jobs cannot observe each
//! other's data, identifiers, or recoveries. Execution templates sit on top
//! of the per-task path exactly as in the single-job design: basic blocks
//! are recorded as they are scheduled and replayed through one small
//! instantiation message per worker on later executions.
//!
//! Fairness: queued driver messages are serviced **round-robin across
//! jobs**, one message per turn, so one chatty driver flooding pipelined
//! instantiations cannot starve another session's requests.
//!
//! Recovery is per job: a worker death triggers recovery for every job with
//! state on that worker, independently — each such job halts, restores its
//! own checkpoint, and replays its own post-checkpoint window, while jobs
//! without state on the dead worker keep running undisturbed.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use nimbus_core::checkpoint::{CheckpointDescriptor, CheckpointEntry, CheckpointLog};
use nimbus_core::graph::AssignedCommand;
use nimbus_core::ids::{CheckpointId, JobId, LogicalPartition, TaskId, WorkerId};
use nimbus_core::lineage::LineageLog;
use nimbus_core::task::TaskSpec;
use nimbus_core::template::InstantiationParams;
use nimbus_core::{Clock, Command, CommandKind, ControlPlaneStats};
use nimbus_net::{
    ControllerToDriver, ControllerToWorker, DriverMessage, Endpoint, Envelope, JobVersions,
    Message, NetError, NodeId, PartitionVersion, TransportEndpoint, TransportEvent,
    WorkerToController,
};

use crate::assignment::AssignmentPolicy;

/// Upper bound on how many already-queued envelopes (or queued driver
/// messages) one loop turn handles before flushing the cork (see
/// [`Controller::run`]).
const CORK_BURST: usize = 128;

/// Byte budget of one worker's corked buffer. Kept far below the
/// transport's maximum frame so a flush always fits a single batch frame —
/// which on TCP is written all-or-nothing, making the failed-flush
/// uncounting in [`Controller::flush_outbox`] exact (a partial delivery
/// would otherwise double-count completions against `outstanding`).
const CORK_MAX_BYTES: usize = 8 << 20;

/// Upper bound on a job's replay log. A job that never checkpoints (the
/// un-templated Spark-like baseline) would otherwise accumulate one entry
/// per raw task forever; past the cap the window is marked unfaithful and
/// the log is dropped — exactly the lossy-recovery behavior such a job had
/// before the log covered raw submits. A committed checkpoint clears the
/// log and starts a fresh, faithful window.
const MAX_REPLAY_LOG: usize = 65_536;
use crate::data_manager::DataManager;
use crate::error::{ControllerError, ControllerResult};
use crate::expansion::{expand_task, refresh_instance, Bookkeeping, IdGens};
use crate::template_manager::TemplateManager;

/// Static controller configuration.
pub struct ControllerConfig {
    /// The initial worker allocation (shared by every job).
    pub workers: Vec<WorkerId>,
    /// Partition assignment policy (each job gets its own instance).
    pub policy: AssignmentPolicy,
    /// Whether execution templates are enabled for new jobs (disabled = pure
    /// centralized per-task scheduling, the Spark-like baseline).
    pub enable_templates: bool,
    /// Automatically checkpoint a job after this many of its template
    /// instantiations.
    pub checkpoint_every: Option<u64>,
    /// How long a transport-detected worker failure waits for the worker to
    /// rejoin before recovery proceeds without it. Within the window a
    /// returning worker is readmitted in place: its templates are
    /// reinstalled per job (with every edit applied so far) and each job's
    /// checkpoint reload targets it directly, so jobs resume with zero
    /// template re-recordings. `None` (the default) recovers immediately
    /// onto the survivors.
    pub rejoin_grace: Option<Duration>,
    /// Whether hot-path sends (command dispatch and template instantiation)
    /// are corked into one batched send per worker per flush (the default).
    /// Disabled, the controller issues one transport send per message — the
    /// pre-batching wire behavior the `fig8_real_throughput` bench measures
    /// against. Message contents and per-worker ordering are identical
    /// either way.
    pub batch_sends: bool,
    /// Where the controller reads "now" for its timeout logic (rejoin-grace
    /// deadlines). [`Clock::Real`] in production; the deterministic
    /// simulation harness substitutes a scheduler-driven virtual clock so
    /// grace expiry races are explored at decision points, not wall time.
    pub clock: Clock,
}

impl ControllerConfig {
    /// Creates a configuration with templates enabled and no auto checkpoints.
    pub fn new(workers: Vec<WorkerId>) -> Self {
        Self {
            workers,
            policy: AssignmentPolicy::hash(),
            enable_templates: true,
            checkpoint_every: None,
            rejoin_grace: None,
            batch_sends: true,
            clock: Clock::Real,
        }
    }
}

#[allow(clippy::large_enum_variant)] // CheckpointSave is rare; boxing would obscure it
enum PendingSync {
    None,
    Barrier,
    FetchDrain(LogicalPartition),
    FetchValue(LogicalPartition),
    CheckpointDrain {
        marker: u64,
        notify: bool,
    },
    CheckpointSave {
        marker: u64,
        notify: bool,
        descriptor: CheckpointDescriptor,
    },
    /// The job is draining its outstanding commands before its session ends.
    Closing,
    Recovering {
        marker: u64,
        /// Workers whose `Halted` acknowledgement is still outstanding. A
        /// worker leaves this set when it halts — or when its connection
        /// drops, since a dead worker will never acknowledge.
        pending_halts: Vec<WorkerId>,
        /// Whether to send the driver a `RecoveryComplete` reply (true for
        /// driver-initiated `FailWorker`, false for transport-detected
        /// failures, where the driver is not waiting for one).
        notify: bool,
        /// The failed workers this recovery is still willing to readmit:
        /// recovery completes only once every one of them registers again or
        /// has its rejoin grace deadline pass. A second worker dying inside
        /// the grace window joins this set, so simultaneous losses can both
        /// be readmitted in place.
        awaiting_rejoin: Vec<WorkerId>,
        /// Workers readmitted during this recovery. They came back as fresh
        /// processes with empty stores, so completion must recreate every
        /// physical instance the restored bookkeeping places on them.
        rejoined: Vec<WorkerId>,
    },
}

/// One entry of a job's replay log: the driver traffic since the last
/// committed checkpoint, replayed controller-side after a transport-detected
/// recovery so the data state catches back up to the pre-failure point.
/// Covers both templated (`Instantiate`) and raw (`Submit`) streams, so
/// recoveries spanning un-templated phases stay byte-exact too.
enum ReplayEntry {
    /// A successful `InstantiateTemplate`.
    Instantiate {
        name: String,
        params: InstantiationParams,
    },
    /// A successful raw `SubmitTask` (outside any recording).
    Submit(TaskSpec),
    /// An `EnableTemplates` toggle, replayed in order so surrounding entries
    /// execute under the scheduling mode they originally ran under.
    SetTemplates(bool),
}

/// Everything the controller tracks for one job: the per-job namespace that
/// makes the control plane multi-tenant. Identifier generators, data
/// placement, templates, checkpoints, and synchronization state are all
/// private to the job; only the worker allocation is shared.
struct JobState {
    id: JobId,
    /// Where this job's replies go (the session's driver node).
    driver: NodeId,
    dm: DataManager,
    bk: Bookkeeping,
    ids: IdGens,
    tm: TemplateManager,
    lineage: LineageLog,
    checkpoints: CheckpointLog,
    outstanding: u64,
    enable_templates: bool,
    checkpoint_every: Option<u64>,
    instantiations_since_checkpoint: u64,
    sync: PendingSync,
    /// The driver operation a transport-detected failure interrupted; it is
    /// re-armed once recovery completes so the driver's pending request is
    /// answered (with post-recovery state) instead of abandoned.
    resume_after_recovery: PendingSync,
    /// A driver synchronization that arrived while another one (typically an
    /// auto-checkpoint) was still in flight. The driver is synchronous, so
    /// one slot suffices.
    queued_sync: Option<PendingSync>,
    /// Driver traffic since the last committed checkpoint, in order.
    replay_log: Vec<ReplayEntry>,
    /// False once the log stopped being a faithful reconstruction (e.g. a
    /// failure interrupted an active recording); replay is skipped then.
    replay_valid: bool,
    /// True while the controller replays logged entries (suppresses
    /// re-logging and auto-checkpoint scheduling).
    replaying: bool,
    /// Queued driver messages awaiting their round-robin service turn.
    inbox: VecDeque<DriverMessage>,
    /// True once the job ended (closed or its driver vanished). The entry
    /// is inert — skipped by every lookup and service path — until the main
    /// loop's sweep removes it; deferring the removal keeps job indices
    /// stable for callers iterating the table when a close completes inside
    /// a nested call (e.g. a recovery resuming an interrupted CloseJob).
    done: bool,
}

impl JobState {
    fn new(
        id: JobId,
        driver: NodeId,
        policy: AssignmentPolicy,
        enable_templates: bool,
        checkpoint_every: Option<u64>,
    ) -> Self {
        Self {
            id,
            driver,
            dm: DataManager::new(policy),
            bk: Bookkeeping::new(),
            ids: IdGens::new(),
            tm: TemplateManager::new(),
            lineage: LineageLog::new(),
            checkpoints: CheckpointLog::new(),
            outstanding: 0,
            enable_templates,
            checkpoint_every,
            instantiations_since_checkpoint: 0,
            sync: PendingSync::None,
            resume_after_recovery: PendingSync::None,
            queued_sync: None,
            replay_log: Vec::new(),
            replay_valid: true,
            replaying: false,
            inbox: VecDeque::new(),
            done: false,
        }
    }

    fn recovering(&self) -> bool {
        matches!(self.sync, PendingSync::Recovering { .. })
    }

    /// Appends to the replay log, honoring validity, the replay guard, and
    /// the size cap (past which the window turns lossy, see
    /// [`MAX_REPLAY_LOG`]).
    fn log_replay(&mut self, entry: ReplayEntry) {
        if self.replaying || !self.replay_valid {
            return;
        }
        if self.replay_log.len() >= MAX_REPLAY_LOG {
            self.replay_valid = false;
            self.replay_log.clear();
            return;
        }
        self.replay_log.push(entry);
    }
}

/// Messages corked for one worker between flushes, plus how many commands
/// of each job's `outstanding` they account for (so a failed flush can
/// uncount them per job, matching the per-message path where a failed send
/// was never counted).
struct WorkerOutbox {
    worker: WorkerId,
    messages: Vec<Message>,
    commands: Vec<(JobId, u64)>,
    /// Estimated wire bytes corked, to keep a flush within one frame.
    bytes: usize,
}

/// The centralized controller node, generic over the transport connecting
/// it to the cluster (in-process [`Endpoint`] by default, or TCP).
pub struct Controller<E: TransportEndpoint = Endpoint> {
    endpoint: E,
    workers: Vec<WorkerId>,
    /// `workers`, kept sorted and deduplicated: the steady-state template
    /// lookup key, maintained on every allocation change so instantiation
    /// never materializes (or sorts) a worker list per block.
    workers_sorted: Vec<WorkerId>,
    all_workers: Vec<WorkerId>,
    /// The job table: one [`JobState`] per open session, in open order.
    /// Sessions are few, so a linear scan beats a hash map on the hot path.
    jobs: Vec<JobState>,
    job_ids: nimbus_core::ids::IdGenerator,
    /// Defaults inherited by every new job.
    policy: AssignmentPolicy,
    default_enable_templates: bool,
    default_checkpoint_every: Option<u64>,
    /// Round-robin cursor over `jobs` for fair servicing of queued driver
    /// messages.
    rr: usize,
    deferred: VecDeque<Envelope>,
    /// Worker registrations that arrived while a recovery was in flight and
    /// no job was awaiting that worker. Dispatched after the recovery
    /// completes; admitting a worker elastically mid-recovery would race
    /// half-restored state.
    held: VecDeque<Envelope>,
    /// How long transport-detected failures wait for a worker to rejoin.
    rejoin_grace: Option<Duration>,
    /// Source of "now" for rejoin deadlines (virtual under simulation).
    clock: Clock,
    /// One rejoin deadline per worker currently inside its grace window;
    /// the earliest bounds the blocking receive in the controller loop.
    rejoin_deadlines: Vec<(WorkerId, Instant)>,
    /// True once any session ever opened: a driver disconnect that empties
    /// the job table then shuts the cluster down (the orphaned-cluster
    /// policy inherited from the single-job design).
    had_session: bool,
    stats: ControlPlaneStats,
    running: bool,
    /// Whether hot-path sends are corked into per-worker batches.
    batch_sends: bool,
    /// The cork: per-worker message buffers filled by the dispatch helpers
    /// and flushed as one batched send per worker — at most one `write(2)`
    /// each on TCP — before the controller blocks for more traffic.
    outbox: Vec<WorkerOutbox>,
}

impl<E: TransportEndpoint> Controller<E> {
    /// Creates a controller bound to a transport endpoint.
    pub fn new(config: ControllerConfig, endpoint: E) -> Self {
        let mut workers_sorted = config.workers.clone();
        workers_sorted.sort_unstable();
        workers_sorted.dedup();
        Self {
            endpoint,
            all_workers: config.workers.clone(),
            workers_sorted,
            workers: config.workers,
            jobs: Vec::new(),
            job_ids: nimbus_core::ids::IdGenerator::new(),
            policy: config.policy,
            default_enable_templates: config.enable_templates,
            default_checkpoint_every: config.checkpoint_every,
            rr: 0,
            deferred: VecDeque::new(),
            held: VecDeque::new(),
            rejoin_grace: config.rejoin_grace,
            clock: config.clock,
            rejoin_deadlines: Vec::new(),
            had_session: false,
            stats: ControlPlaneStats::new(),
            running: true,
            batch_sends: config.batch_sends,
            outbox: Vec::new(),
        }
    }

    /// Re-derives the sorted allocation after `workers` changed. Allocation
    /// changes are rare (eviction, rejoin, elastic join), so recomputing the
    /// cache there keeps the per-instantiation path allocation-free.
    fn note_workers_changed(&mut self) {
        self.workers_sorted.clear();
        self.workers_sorted.extend(self.workers.iter().copied());
        self.workers_sorted.sort_unstable();
        self.workers_sorted.dedup();
    }

    /// Read-only access to the accumulated control-plane statistics.
    pub fn stats(&self) -> &ControlPlaneStats {
        &self.stats
    }

    fn job_index_by_id(&self, id: JobId) -> Option<usize> {
        self.jobs.iter().position(|j| j.id == id && !j.done)
    }

    fn job_index_by_driver(&self, node: NodeId) -> Option<usize> {
        self.jobs.iter().position(|j| j.driver == node && !j.done)
    }

    /// Removes job entries marked done. Called only from the top of the
    /// main loop, where no job index is live across the call.
    fn sweep_done_jobs(&mut self) {
        if self.jobs.iter().any(|j| j.done) {
            self.jobs.retain(|j| !j.done);
            self.rr = 0;
        }
    }

    /// Runs the controller until the cluster shuts down; returns the
    /// accumulated control-plane statistics.
    pub fn run(mut self) -> ControlPlaneStats {
        while self.running {
            // Block only when there is neither transport traffic nor a
            // serviceable queued driver message.
            if !self.has_serviceable() {
                let envelope = match self.next_envelope() {
                    Some(e) => e,
                    None => break,
                };
                self.handle(envelope);
            }
            // Opportunistic burst drain: handle whatever is already queued
            // before flushing, so the sends of many pipelined driver
            // requests (the paper's steady-state instantiation stream)
            // coalesce into one batched send per worker. Transport traffic
            // drains first (it carries completions and failure notices);
            // queued driver messages are then serviced one per job per
            // turn, round-robin, so no session can starve another. Bounded
            // so a flooding driver cannot starve the flush, and always
            // followed by a flush before the next blocking receive —
            // corked messages never outlive the burst that produced them.
            let mut burst = 1usize;
            while self.running && burst < CORK_BURST {
                let next = match self.deferred.pop_front() {
                    Some(e) => Some(e),
                    None => self.endpoint.try_recv().ok(),
                };
                if let Some(envelope) = next {
                    self.handle(envelope);
                    burst += 1;
                    continue;
                }
                if self.service_one() {
                    burst += 1;
                    continue;
                }
                break;
            }
            self.flush_outbox();
            self.sweep_done_jobs();
        }
        self.flush_outbox();
        self.stats
    }

    /// True when some job has a queued driver message that may be serviced
    /// now (its recovery, if any, has completed).
    fn has_serviceable(&self) -> bool {
        self.jobs
            .iter()
            .any(|j| !j.done && !j.inbox.is_empty() && !j.recovering())
    }

    /// Services one queued driver message, rotating round-robin across jobs
    /// so every session makes progress. Returns false when nothing was
    /// serviceable.
    fn service_one(&mut self) -> bool {
        let n = self.jobs.len();
        for k in 0..n {
            let i = (self.rr + k) % n;
            if self.jobs[i].done || self.jobs[i].inbox.is_empty() || self.jobs[i].recovering() {
                continue;
            }
            let Some(msg) = self.jobs[i].inbox.pop_front() else {
                continue;
            };
            self.rr = (i + 1) % n;
            let start = self.clock.now();
            self.handle_driver(i, msg);
            self.stats.control_plane_time += self.clock.now().saturating_duration_since(start);
            return true;
        }
        false
    }

    fn next_envelope(&mut self) -> Option<Envelope> {
        if let Some(e) = self.deferred.pop_front() {
            return Some(e);
        }
        loop {
            let deadline = self.rejoin_deadlines.iter().map(|(_, d)| *d).min();
            let Some(deadline) = deadline else {
                return self.endpoint.recv().ok();
            };
            let now = self.clock.now();
            if now >= deadline {
                self.expire_due_deadlines(now);
                continue;
            }
            match self.endpoint.recv_timeout(deadline - now) {
                Ok(e) => return Some(e),
                Err(NetError::Timeout) => {
                    let now = self.clock.now();
                    self.expire_due_deadlines(now);
                }
                Err(_) => return None,
            }
        }
    }

    /// Gives up on every worker whose rejoin grace deadline has passed: each
    /// recovering job stops awaiting it and proceeds once its remaining
    /// conditions resolve (the checkpoint-restart baseline the rejoin path
    /// is measured against).
    fn expire_due_deadlines(&mut self, now: Instant) {
        let due: Vec<WorkerId> = self
            .rejoin_deadlines
            .iter()
            .filter(|(_, d)| *d <= now)
            .map(|(w, _)| *w)
            .collect();
        if due.is_empty() {
            return;
        }
        self.rejoin_deadlines.retain(|(_, d)| *d > now);
        for j in 0..self.jobs.len() {
            if let PendingSync::Recovering {
                awaiting_rejoin, ..
            } = &mut self.jobs[j].sync
            {
                awaiting_rejoin.retain(|w| !due.contains(w));
            }
            self.maybe_finish_recovery(j);
        }
    }

    /// True for worker registrations that must not be processed against
    /// mid-recovery state: elastic admission while any job is recovering
    /// would race half-restored data. Registrations a recovering job is
    /// awaiting are processed immediately (they complete that recovery).
    fn should_hold(&self, envelope: &Envelope) -> bool {
        let Message::FromWorker(WorkerToController::Register { worker }) = &envelope.message else {
            return false;
        };
        if !self.jobs.iter().any(JobState::recovering) {
            return false;
        }
        !self.jobs.iter().any(|j| {
            matches!(&j.sync, PendingSync::Recovering { awaiting_rejoin, .. }
                if awaiting_rejoin.contains(worker))
        })
    }

    fn handle(&mut self, envelope: Envelope) {
        if self.should_hold(&envelope) {
            self.held.push_back(envelope);
            return;
        }
        match envelope.message {
            Message::Driver { job, msg } => {
                self.accept_driver_message(envelope.from, job, msg);
            }
            Message::FromWorker(msg) => self.handle_worker(msg),
            Message::Transport(TransportEvent::PeerDisconnected(peer)) => {
                self.handle_disconnect(peer);
            }
            // The rejoin handshake is driven by the worker's `Register`
            // message, which carries identity; the raw transport notice is
            // informational.
            Message::Transport(TransportEvent::PeerReconnected(p))
                if nimbus_core::debug_recovery() =>
            {
                eprintln!("[reconnected] {p}");
            }
            Message::Transport(TransportEvent::PeerReconnected(_)) => {}
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Session table
    // ------------------------------------------------------------------

    /// Resolves the sending node to its session (opening one on first
    /// contact), validates the message's job id against it, and either
    /// answers the handshake or queues the request for round-robin service.
    fn accept_driver_message(&mut self, from: NodeId, job: JobId, msg: DriverMessage) {
        if !from.is_driver() {
            return; // Workers cannot forge driver traffic.
        }
        let j = match self.job_index_by_driver(from) {
            Some(j) => j,
            None => {
                // First contact from this driver node: open its session.
                // An explicit `OpenJob` is the handshake; any other first
                // message is the legacy implicit open (the `DriverContext`
                // shim path), which works because `JobId(0)` resolves
                // through this table.
                let id = JobId(self.job_ids.next_raw());
                self.jobs.push(JobState::new(
                    id,
                    from,
                    self.policy.clone(),
                    self.default_enable_templates,
                    self.default_checkpoint_every,
                ));
                self.had_session = true;
                self.jobs.len() - 1
            }
        };
        let expected = self.jobs[j].id;
        if job != JobId(0) && job != expected {
            self.reply(
                j,
                ControllerToDriver::Error {
                    message: format!(
                        "job {job} does not belong to this session (expected {expected})"
                    ),
                },
            );
            return;
        }
        if matches!(msg, DriverMessage::OpenJob) {
            // Handshake: answered inline (it is always the session's first
            // message, so ordering with queued traffic is trivial).
            self.reply(j, ControllerToDriver::JobAccepted { job: expected });
            return;
        }
        self.jobs[j].inbox.push_back(msg);
    }

    // ------------------------------------------------------------------
    // Failure handling
    // ------------------------------------------------------------------

    /// True when the job has physical state on the worker (the expansion
    /// path registers every instance in the job's data manager before any
    /// command is dispatched, so this covers in-flight creates too).
    fn job_uses_worker(&self, j: usize, worker: WorkerId) -> bool {
        !self.jobs[j].dm.instances.on_worker(worker).is_empty()
    }

    /// Reacts to a transport-reported peer loss.
    fn handle_disconnect(&mut self, peer: NodeId) {
        match peer {
            // A lost worker is an abrupt failure. Recovery is per job:
            // every job with state on the worker recovers independently;
            // jobs without any keep running untouched.
            NodeId::Worker(w) => {
                if nimbus_core::debug_recovery() {
                    eprintln!(
                        "[disconnect] worker={w} allocated={}",
                        self.workers.contains(&w)
                    );
                }
                if !self.workers.contains(&w) {
                    return; // Already evicted.
                }
                self.workers.retain(|x| *x != w);
                self.note_workers_changed();
                let grace = self.rejoin_grace;
                if let Some(g) = grace {
                    self.rejoin_deadlines.push((w, self.clock.now() + g));
                }
                for j in 0..self.jobs.len() {
                    if self.jobs[j].done {
                        continue;
                    }
                    self.worker_lost_for_job(j, w, grace.is_some());
                }
            }
            // A lost driver orphans its job: release the job's state. Once
            // the last LIVE job is gone the cluster shuts down rather than
            // running headless forever. Deliberate asymmetry: a driver that
            // already closed its job cleanly has detached — its later
            // disconnect is the normal end of a session, not a crash, and
            // must not take a multi-tenant cluster (which other drivers may
            // still connect to) down with it; such a cluster lives until an
            // explicit `Shutdown` (see the ROADMAP's lifetime-policy knob).
            node if node.is_driver() => {
                if let Some(j) = self.job_index_by_driver(node) {
                    self.release_job(j);
                    if self.jobs.iter().all(|j| j.done) && self.had_session {
                        self.shutdown_workers();
                    }
                }
            }
            _ => {}
        }
    }

    /// One job's reaction to losing worker `w` (already evicted from the
    /// shared allocation by the caller).
    fn worker_lost_for_job(&mut self, j: usize, w: WorkerId, may_rejoin: bool) {
        if self.jobs[j].recovering() {
            // A second failure while already recovering: the worker will
            // never acknowledge its Halt, so count it out — and, if a grace
            // window is configured AND this job actually has state on it,
            // await its return too, so two workers dying in one window can
            // both be readmitted in place. A worker the job never touched
            // is not awaited: stalling this recovery a full grace window
            // for a return that gives the job nothing would leak another
            // job's failure across the isolation boundary.
            let workers_empty = self.workers.is_empty();
            let uses = self.job_uses_worker(j, w);
            let mut dead_end = false;
            if let PendingSync::Recovering {
                pending_halts,
                awaiting_rejoin,
                ..
            } = &mut self.jobs[j].sync
            {
                pending_halts.retain(|x| *x != w);
                if may_rejoin && uses && !awaiting_rejoin.contains(&w) {
                    awaiting_rejoin.push(w);
                }
                dead_end = workers_empty && awaiting_rejoin.is_empty();
            }
            if dead_end {
                self.jobs[j].sync = PendingSync::None;
                self.jobs[j].resume_after_recovery = PendingSync::None;
                self.reply(
                    j,
                    ControllerToDriver::Error {
                        message: "every worker disconnected during recovery".to_string(),
                    },
                );
                self.drain_held();
                return;
            }
            self.maybe_finish_recovery(j);
            return;
        }
        if !self.job_uses_worker(j, w) {
            return; // This job never touched the dead worker: isolation.
        }
        // Recovery replaces whatever the driver was synchronizing on; stash
        // it so the pending request is answered (against recovered state)
        // once recovery completes. Stashed *before* `begin_recovery`, which
        // may complete the recovery synchronously when no halt
        // acknowledgement is expected.
        let interrupted = std::mem::replace(&mut self.jobs[j].sync, PendingSync::None);
        self.jobs[j].resume_after_recovery = Self::resumable(interrupted);
        let awaiting = if may_rejoin { vec![w] } else { Vec::new() };
        if let Err(e) = self.begin_recovery(j, false, awaiting) {
            // Unrecoverable (no checkpoint / no workers): answer the
            // driver's pending request — or its next one — with a clean
            // error rather than hanging.
            self.jobs[j].resume_after_recovery = PendingSync::None;
            self.reply(
                j,
                ControllerToDriver::Error {
                    message: format!("worker {w} disconnected: {e}"),
                },
            );
        }
    }

    /// Releases one job's state everywhere: the workers drop its runtimes
    /// (stores, queues, templates) and the controller forgets it. The table
    /// entry is only marked done here — every lookup skips it from now on —
    /// and physically removed by the main loop's sweep, so job indices held
    /// by in-flight iterations stay valid.
    fn release_job(&mut self, j: usize) {
        let job_id = self.jobs[j].id;
        for i in 0..self.workers.len() {
            let w = self.workers[i];
            self.queue_worker(j, w, ControllerToWorker::DropJob { job: job_id }, 0);
        }
        let job = &mut self.jobs[j];
        let was_recovering = job.recovering();
        job.done = true;
        job.inbox.clear();
        job.sync = PendingSync::None;
        job.queued_sync = None;
        job.resume_after_recovery = PendingSync::None;
        if was_recovering {
            // This job's recovery will never complete; registrations it was
            // holding back must not be stranded with it.
            self.drain_held();
        }
    }

    /// Re-queues the worker registrations parked while a recovery was in
    /// flight. Called at every point a recovery ends — completion, dead
    /// end, or its job being released — so a parked `Register` can never be
    /// stranded; if another job is still recovering, `should_hold` simply
    /// parks it again.
    fn drain_held(&mut self) {
        let held = std::mem::take(&mut self.held);
        self.deferred.extend(held);
    }

    /// Broadcasts `Shutdown` to every worker ever allocated (failed ones
    /// included — their in-process thread may still be alive; a dead TCP
    /// peer just fails the send) and stops the controller loop.
    fn shutdown_workers(&mut self) {
        // Corked commands first: a Shutdown that overtook them would stop a
        // worker with work still in flight.
        self.flush_outbox();
        for w in &self.all_workers {
            let _ = self.endpoint.send(
                NodeId::Worker(*w),
                Message::ToWorker(ControllerToWorker::Shutdown),
            );
        }
        self.running = false;
    }

    // ------------------------------------------------------------------
    // Driver interface (per job)
    // ------------------------------------------------------------------

    fn handle_driver(&mut self, j: usize, msg: DriverMessage) {
        match msg {
            DriverMessage::OpenJob => {
                // Normally answered inline by `accept_driver_message`; kept
                // total for robustness.
                let job = self.jobs[j].id;
                self.reply(j, ControllerToDriver::JobAccepted { job });
            }
            DriverMessage::CloseJob => {
                // Drain the job's outstanding work, then release it and
                // confirm. Queued behind any in-flight synchronization.
                self.set_or_queue_sync(j, PendingSync::Closing);
            }
            DriverMessage::DefineDataset(def) => {
                self.jobs[j].dm.define_dataset(def);
                self.reply(j, ControllerToDriver::Ack);
            }
            DriverMessage::SubmitTask(spec) => {
                // Raw tasks are replayable as long as they are not part of
                // an active recording (recording traffic cannot be
                // faithfully reconstructed controller-side). The spec is
                // only cloned when it will actually be logged — the
                // recording path and the already-lossy window stay
                // clone-free, keeping the per-task hot path unchanged.
                let in_recording = self.jobs[j].tm.is_recording();
                let will_log = {
                    let job = &self.jobs[j];
                    job.replay_valid && !job.replaying && !in_recording
                };
                let logged = will_log.then(|| spec.clone());
                match self.submit_task(j, spec) {
                    Ok(()) => {
                        let job = &mut self.jobs[j];
                        if in_recording && !job.replaying {
                            job.replay_valid = false;
                        } else if let Some(spec) = logged {
                            job.log_replay(ReplayEntry::Submit(spec));
                        }
                    }
                    Err(e) => {
                        self.jobs[j].replay_valid = false;
                        self.reply(
                            j,
                            ControllerToDriver::Error {
                                message: e.to_string(),
                            },
                        );
                    }
                }
            }
            DriverMessage::StartTemplate { name } => {
                let job = &mut self.jobs[j];
                job.replay_valid = false;
                let result = if job.enable_templates {
                    job.tm.start_recording(&name)
                } else {
                    Ok(())
                };
                match result {
                    Ok(()) => self.reply(j, ControllerToDriver::Ack),
                    Err(e) => self.reply(
                        j,
                        ControllerToDriver::Error {
                            message: e.to_string(),
                        },
                    ),
                }
            }
            DriverMessage::AbortTemplate { name } => {
                let job = &mut self.jobs[j];
                let result = if job.enable_templates {
                    job.tm.abort_recording(&name)
                } else {
                    Ok(())
                };
                match result {
                    Ok(()) => self.reply(j, ControllerToDriver::Ack),
                    Err(e) => self.reply(
                        j,
                        ControllerToDriver::Error {
                            message: e.to_string(),
                        },
                    ),
                }
            }
            DriverMessage::FinishTemplate { name } => {
                if !self.jobs[j].enable_templates {
                    self.reply(j, ControllerToDriver::TemplateInstalled { name });
                    return;
                }
                match self.finish_template(j, &name) {
                    Ok(()) => self.reply(j, ControllerToDriver::TemplateInstalled { name }),
                    Err(e) => self.reply(
                        j,
                        ControllerToDriver::Error {
                            message: e.to_string(),
                        },
                    ),
                }
            }
            DriverMessage::InstantiateTemplate { name, params } => {
                match self.instantiate_block(j, &name, &params) {
                    // Only successful instantiations enter the replay log: a
                    // failed one (which may have mutated state partially)
                    // makes the window unfaithful, and logging it would
                    // poison any later replay.
                    Ok(()) => {
                        self.jobs[j].log_replay(ReplayEntry::Instantiate { name, params });
                    }
                    Err(e) => {
                        self.jobs[j].replay_valid = false;
                        self.reply(
                            j,
                            ControllerToDriver::Error {
                                message: e.to_string(),
                            },
                        );
                    }
                }
            }
            DriverMessage::FetchValue { partition } => {
                self.set_or_queue_sync(j, PendingSync::FetchDrain(partition));
            }
            DriverMessage::Barrier => {
                self.set_or_queue_sync(j, PendingSync::Barrier);
            }
            DriverMessage::EnableTemplates(enabled) => {
                self.jobs[j].enable_templates = enabled;
                // Logged (not invalidating): the toggle replays in order so
                // surrounding raw/templated entries re-execute under their
                // original scheduling mode.
                self.jobs[j].log_replay(ReplayEntry::SetTemplates(enabled));
                self.reply(j, ControllerToDriver::Ack);
            }
            DriverMessage::Checkpoint { marker } => {
                self.set_or_queue_sync(
                    j,
                    PendingSync::CheckpointDrain {
                        marker,
                        notify: true,
                    },
                );
            }
            DriverMessage::MigrateTasks { name, count } => {
                let job = &mut self.jobs[j];
                job.replay_valid = false;
                match job
                    .tm
                    .plan_migrations(&name, count, &self.workers, &mut job.dm)
                {
                    Ok(planned) => {
                        self.stats.edits_applied += planned as u64;
                        self.reply(j, ControllerToDriver::Ack);
                    }
                    Err(e) => self.reply(
                        j,
                        ControllerToDriver::Error {
                            message: e.to_string(),
                        },
                    ),
                }
            }
            DriverMessage::SetWorkerAllocation { workers } => {
                // The allocation is shared: every job observes the change
                // (and drains its data off evicted workers); every job's
                // replay window becomes unfaithful.
                for job in &mut self.jobs {
                    job.replay_valid = false;
                }
                match self.change_allocation(workers) {
                    Ok(()) => self.reply(j, ControllerToDriver::Ack),
                    Err(e) => self.reply(
                        j,
                        ControllerToDriver::Error {
                            message: e.to_string(),
                        },
                    ),
                }
            }
            DriverMessage::FailWorker { worker } => {
                // Driver-simulated failures are the paper's fault-recovery
                // experiments: they recover immediately, without waiting for
                // a rejoin that will never come — every job with state on
                // the worker, independently.
                self.fail_worker(j, worker);
            }
            DriverMessage::Shutdown => {
                // The whole cluster goes down: every session is terminated.
                for i in 0..self.jobs.len() {
                    if !self.jobs[i].done {
                        self.reply(i, ControllerToDriver::JobTerminated);
                    }
                }
                self.shutdown_workers();
            }
        }
    }

    /// Evicts `worker` and recovers every affected job. The requesting job
    /// always recovers (with a driver notification); other jobs recover
    /// transport-style — silently, with a controller-side replay.
    fn fail_worker(&mut self, requesting: usize, worker: WorkerId) {
        self.workers.retain(|w| *w != worker);
        self.note_workers_changed();
        for j in 0..self.jobs.len() {
            let is_requesting = j == requesting;
            if self.jobs[j].done || self.jobs[j].recovering() {
                continue;
            }
            if !is_requesting && !self.job_uses_worker(j, worker) {
                continue;
            }
            if !is_requesting {
                let interrupted = std::mem::replace(&mut self.jobs[j].sync, PendingSync::None);
                self.jobs[j].resume_after_recovery = Self::resumable(interrupted);
            }
            if let Err(e) = self.begin_recovery(j, is_requesting, Vec::new()) {
                self.jobs[j].resume_after_recovery = PendingSync::None;
                self.reply(
                    j,
                    ControllerToDriver::Error {
                        message: e.to_string(),
                    },
                );
            }
        }
    }

    fn submit_task(&mut self, j: usize, spec: TaskSpec) -> ControllerResult<()> {
        let job = &mut self.jobs[j];
        let expanded = expand_task(
            &spec,
            &self.workers,
            &mut job.dm,
            &mut job.bk,
            &job.ids,
            &mut job.lineage,
        )?;
        job.tm.record_task(&spec, &expanded);
        self.stats.tasks_scheduled_directly += 1;
        self.stats.copies_inserted += expanded
            .commands
            .iter()
            .filter(|c| c.command.kind.is_network_copy())
            .count() as u64
            / 2;
        self.dispatch(j, expanded.commands)
    }

    fn finish_template(&mut self, j: usize, name: &str) -> ControllerResult<()> {
        let job = &mut self.jobs[j];
        let job_id = job.id;
        let (_ct, _group, installs) = job.tm.finish_recording(name, &job.dm, &job.ids)?;
        self.stats.controller_templates_installed += 1;
        self.stats.worker_template_groups_generated += 1;
        self.stats.worker_templates_installed += installs.len() as u64;
        for (worker, template) in installs {
            self.send_worker(
                worker,
                ControllerToWorker::InstallTemplate {
                    job: job_id,
                    template,
                },
            )?;
        }
        Ok(())
    }

    fn instantiate_block(
        &mut self,
        j: usize,
        name: &str,
        params: &InstantiationParams,
    ) -> ControllerResult<()> {
        let job = &mut self.jobs[j];
        let job_id = job.id;
        let ct = job
            .tm
            .registry
            .controller_template_by_name(name)
            .ok_or_else(|| ControllerError::UnknownBlock(name.to_string()))?;
        let ct_id = ct.id;
        let task_count = ct.task_count();
        self.stats.controller_template_instantiations += 1;
        job.instantiations_since_checkpoint += 1;

        let group = job
            .tm
            .registry
            .find_group_for_sorted_workers(ct_id, &self.workers_sorted)
            .map(|g| g.id);

        match group {
            Some(group_id) if job.enable_templates => {
                let plan = job.tm.plan_instantiation(
                    group_id,
                    params,
                    &mut job.dm,
                    &mut job.bk,
                    &job.ids,
                )?;
                if plan.auto_validated {
                    self.stats.auto_validations += 1;
                } else {
                    self.stats.full_validations += 1;
                }
                let had_patches = !plan.patch_commands.is_empty();
                if had_patches {
                    self.stats.patches_applied += 1;
                    if plan.patch_cache_hit {
                        self.stats.patch_cache_hits += 1;
                    } else {
                        self.stats.patch_cache_misses += 1;
                    }
                }
                let edit_count: usize = plan.per_worker.iter().map(|(_, i)| i.edits.len()).sum();
                self.stats.edits_applied += edit_count as u64;
                self.stats.worker_template_instantiations += plan.per_worker.len() as u64;
                self.stats.tasks_from_templates += plan.task_count;
                let expected = plan.expected_commands;
                let patches = plan.patch_commands;
                let per_worker = plan.per_worker;
                if had_patches {
                    self.dispatch(j, patches)?;
                }
                // Counted unconditionally (not per send): a send to a worker
                // that just died must not fail the instantiation — the
                // transport's disconnect notice follows and recovery resets
                // `outstanding` and the data state wholesale.
                self.jobs[j].outstanding += expected;
                for (worker, instantiation) in per_worker {
                    // Queued behind any patch commands corked for the same
                    // worker, so the whole instantiation leaves as one
                    // batched send per worker.
                    self.queue_worker(
                        j,
                        worker,
                        ControllerToWorker::InstantiateTemplate {
                            job: job_id,
                            inst: instantiation,
                        },
                        0,
                    );
                }
            }
            _ => {
                // No worker templates match the current allocation (or
                // templates are disabled): schedule the block task by task,
                // recording a fresh group if templates are enabled.
                let task_base = job.ids.tasks.next_block(task_count as u64);
                let task_ids: Vec<TaskId> = (0..task_count as u64)
                    .map(|i| TaskId(task_base + i))
                    .collect();
                let ct = job
                    .tm
                    .registry
                    .controller_template_by_name(name)
                    .ok_or_else(|| ControllerError::UnknownBlock(name.to_string()))?;
                let specs = ct.instantiate(&task_ids, params)?;
                let record = job.enable_templates && !job.tm.is_recording();
                if record {
                    job.tm.start_recording(name)?;
                }
                for spec in &specs {
                    // Placement hints from the old assignment may point at
                    // evicted workers; expansion falls back to the current
                    // allocation automatically.
                    let job = &mut self.jobs[j];
                    let expanded = expand_task(
                        spec,
                        &self.workers,
                        &mut job.dm,
                        &mut job.bk,
                        &job.ids,
                        &mut job.lineage,
                    )?;
                    job.tm.record_task(spec, &expanded);
                    self.stats.tasks_scheduled_directly += 1;
                    self.dispatch(j, expanded.commands)?;
                }
                if record {
                    self.finish_template(j, name)?;
                }
            }
        }

        let job = &mut self.jobs[j];
        if let Some(every) = job.checkpoint_every {
            if !job.replaying
                && job.instantiations_since_checkpoint >= every
                && matches!(job.sync, PendingSync::None)
            {
                let marker = job.instantiations_since_checkpoint;
                job.instantiations_since_checkpoint = 0;
                // Drains the just-dispatched instantiation first, then saves.
                self.set_or_queue_sync(
                    j,
                    PendingSync::CheckpointDrain {
                        marker,
                        notify: false,
                    },
                );
            }
        }
        Ok(())
    }

    fn change_allocation(&mut self, new_workers: Vec<WorkerId>) -> ControllerResult<()> {
        if new_workers.is_empty() {
            return Err(ControllerError::NoWorkers);
        }
        let evicted: Vec<WorkerId> = self
            .workers
            .iter()
            .copied()
            .filter(|w| !new_workers.contains(w))
            .collect();
        for w in &new_workers {
            if !self.all_workers.contains(w) {
                self.all_workers.push(*w);
            }
        }
        // Drain evicted workers, per job: move the latest copy of every
        // partition a job exclusively holds there onto a surviving worker,
        // then forget the job's instances on it. A job that is mid-recovery
        // is left alone: its data manager and outstanding count are about
        // to be wholesale-restored by `complete_recovery`, which itself
        // drops instances on workers no longer in the allocation and
        // re-homes their checkpointed partitions — draining it here would
        // corrupt exactly the state the restore is built on.
        for w in &evicted {
            for j in 0..self.jobs.len() {
                if self.jobs[j].done || self.jobs[j].recovering() {
                    continue;
                }
                let job = &mut self.jobs[j];
                let partitions: Vec<LogicalPartition> = job
                    .dm
                    .instances
                    .on_worker(*w)
                    .iter()
                    .map(|i| i.logical)
                    .collect();
                let mut commands = Vec::new();
                for lp in partitions {
                    let holders = job.dm.instances.latest_holders(lp, &job.dm.versions);
                    let only_here = holders.iter().all(|h| h.worker == *w) && !holders.is_empty();
                    if only_here {
                        // Re-home deterministically among the new allocation.
                        let idx = (lp.partition.raw() as usize) % new_workers.len();
                        let target = new_workers[idx];
                        job.dm.set_home(lp, target);
                        refresh_instance(
                            lp,
                            target,
                            &mut job.dm,
                            &mut job.bk,
                            &job.ids,
                            &mut commands,
                        )?;
                    }
                }
                self.dispatch(j, commands)?;
                self.jobs[j].dm.drop_worker(*w);
            }
        }
        self.workers = new_workers;
        self.note_workers_changed();
        Ok(())
    }

    /// Maps an interrupted driver synchronization to the state that restarts
    /// it after recovery: in-flight fetches re-drain (their target worker may
    /// have changed), half-done checkpoints restart from the drain step.
    fn resumable(interrupted: PendingSync) -> PendingSync {
        match interrupted {
            PendingSync::FetchValue(p) | PendingSync::FetchDrain(p) => PendingSync::FetchDrain(p),
            PendingSync::CheckpointSave { marker, notify, .. } => {
                PendingSync::CheckpointDrain { marker, notify }
            }
            other => other,
        }
    }

    /// Records that `worker` will produce no (further) `Halted` reply for
    /// job `j` — because it halted, or because it disconnected — and
    /// completes the recovery once every expected acknowledgement is
    /// accounted for.
    fn note_halted(&mut self, j: usize, worker: WorkerId) {
        if let PendingSync::Recovering { pending_halts, .. } = &mut self.jobs[j].sync {
            pending_halts.retain(|w| *w != worker);
            self.maybe_finish_recovery(j);
        }
    }

    /// Completes job `j`'s recovery once every halt is acknowledged *and*
    /// every awaited worker has resolved — registered again or had its
    /// grace deadline pass.
    fn maybe_finish_recovery(&mut self, j: usize) {
        if nimbus_core::debug_recovery() {
            if let PendingSync::Recovering {
                pending_halts,
                awaiting_rejoin,
                ..
            } = &self.jobs[j].sync
            {
                eprintln!(
                    "[maybe_finish] job={} halts={:?} awaiting={:?}",
                    self.jobs[j].id, pending_halts, awaiting_rejoin
                );
            }
        }
        if let PendingSync::Recovering {
            marker,
            pending_halts,
            notify,
            awaiting_rejoin,
            rejoined,
        } = &self.jobs[j].sync
        {
            if pending_halts.is_empty() && awaiting_rejoin.is_empty() {
                let (marker, notify, rejoined) = (*marker, *notify, rejoined.clone());
                self.jobs[j].sync = PendingSync::None;
                self.complete_recovery(j, marker, notify, &rejoined);
            }
        }
    }

    /// Starts recovery for job `j`. The failed worker(s) have already been
    /// evicted from the shared allocation by the caller; `awaiting_rejoin`
    /// lists those this recovery should hold open for.
    fn begin_recovery(
        &mut self,
        j: usize,
        notify: bool,
        awaiting_rejoin: Vec<WorkerId>,
    ) -> ControllerResult<()> {
        self.stats.failures_handled += 1;
        let job = &mut self.jobs[j];
        let marker = job
            .checkpoints
            .latest()
            .map(|c| c.progress_marker)
            .ok_or(ControllerError::NoCheckpoint)?;
        // A failure that lands while a basic block is being recorded leaves
        // the log without the surrounding recording traffic; replaying it
        // later would desynchronize the driver's view. Skip replay then.
        if job.tm.is_recording() {
            job.replay_valid = false;
        }
        let job_id = job.id;
        // Without a rejoin wait the job cannot continue workerless; with one
        // it may ride out the window even if the failed worker was the last.
        if self.workers.is_empty() && awaiting_rejoin.is_empty() {
            return Err(ControllerError::NoWorkers);
        }
        // Halt every surviving worker — for this job only: they terminate
        // its ongoing commands and flush its queue (Section 4.4) while other
        // jobs' runtimes keep executing. A survivor whose Halt cannot be
        // sent is dying too — its own disconnect notice will evict it; it
        // must not be waited on for an acknowledgement that cannot come.
        let mut pending_halts = Vec::new();
        for i in 0..self.workers.len() {
            let w = self.workers[i];
            if self
                .send_worker(w, ControllerToWorker::Halt { job: job_id })
                .is_ok()
            {
                pending_halts.push(w);
            }
        }
        if nimbus_core::debug_recovery() {
            eprintln!(
                "[begin] job={} marker={} halts={:?} awaiting={:?}",
                job_id, marker, pending_halts, awaiting_rejoin
            );
        }
        self.jobs[j].sync = PendingSync::Recovering {
            marker,
            pending_halts,
            notify,
            awaiting_rejoin,
            rejoined: Vec::new(),
        };
        // With no halts outstanding and no rejoin to wait for (every
        // survivor's Halt send failed), nothing else will drive completion.
        self.maybe_finish_recovery(j);
        Ok(())
    }

    fn complete_recovery(&mut self, j: usize, marker: u64, notify: bool, rejoined: &[WorkerId]) {
        // A rejoin-grace recovery can ride out the window with zero workers
        // (the failed worker was the last one); if the grace expired without
        // a return there is nothing to recover onto — surface a clean error
        // instead of dividing the reload re-homing by zero.
        if self.workers.is_empty() {
            self.jobs[j].resume_after_recovery = PendingSync::None;
            self.jobs[j].replay_valid = false;
            self.reply(
                j,
                ControllerToDriver::Error {
                    message: "every worker disconnected during recovery".to_string(),
                },
            );
            // Held registrations are answered against the workerless state.
            self.drain_held();
            return;
        }
        // Recovery is only begun with a checkpoint on file, but the state
        // machine can't prove that here — propagate instead of panicking so
        // a bookkeeping bug degrades to one failed job, not a dead cluster.
        let Some(descriptor) = self.jobs[j].checkpoints.latest().cloned() else {
            self.jobs[j].resume_after_recovery = PendingSync::None;
            self.jobs[j].replay_valid = false;
            self.reply(
                j,
                ControllerToDriver::Error {
                    message: ControllerError::NoCheckpoint.to_string(),
                },
            );
            self.drain_held();
            return;
        };
        let job = &mut self.jobs[j];
        // Reset execution state to the snapshot.
        job.outstanding = 0;
        job.bk.clear();
        job.dm.versions = descriptor.versions.clone();
        job.dm.instances = descriptor.instances.clone();
        // Forget instances that lived on workers no longer in the allocation.
        let snapshot_workers: Vec<WorkerId> = job
            .dm
            .instances
            .iter()
            .map(|i| i.worker)
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        for w in snapshot_workers {
            if !self.workers.contains(&w) {
                job.dm.drop_worker(w);
            }
        }
        // A rejoined worker is a fresh process with an empty store, while the
        // restored bookkeeping says its physical instances exist. Recreate
        // every instance resident on it (idempotent on workers that still
        // hold the object) so the reloads, copies, and template entries that
        // follow have real objects to land in. Contents start as factory
        // defaults — whatever version the checkpoint recorded for the old
        // incarnation — so each instance is also marked stale (version 0,
        // the factory state): the manifest reload below refreshes the ones
        // it reloads, and validation patches the rest before any template
        // reads them or updates them in place. Trusting the checkpointed
        // versions here would make validation skip exactly those patches
        // and replay on factory zeros.
        let mut commands: Vec<AssignedCommand> = Vec::new();
        for rw in rejoined {
            let resident: Vec<nimbus_core::PhysicalInstance> = job
                .dm
                .instances
                .on_worker(*rw)
                .into_iter()
                .copied()
                .collect();
            for instance in resident {
                let _ = job
                    .dm
                    .instances
                    .set_version(instance.id, nimbus_core::Version(0));
                let id = job.ids.command();
                let create = Command::new(
                    id,
                    CommandKind::CreateData {
                        object: instance.id,
                        logical: instance.logical,
                    },
                );
                job.bk.note_write(instance.id, id);
                commands.push(AssignedCommand {
                    command: create,
                    worker: *rw,
                });
            }
        }
        // Reload every checkpointed partition into memory, re-homing the ones
        // whose instance disappeared with the failed worker.
        for entry in descriptor.manifest.clone() {
            let target = if self.workers.contains(&entry.worker) {
                entry.worker
            } else {
                let idx = (entry.partition.partition.raw() as usize) % self.workers.len();
                self.workers[idx]
            };
            let instance = crate::expansion::ensure_instance_commands(
                entry.partition,
                target,
                &mut job.dm,
                &mut job.bk,
                &job.ids,
                &mut commands,
            );
            let id = job.ids.command();
            let load = Command::new(
                id,
                CommandKind::LoadData {
                    object: instance.id,
                    key: entry.key.clone(),
                },
            )
            .with_before(job.bk.write_deps(instance.id));
            job.bk.note_write(instance.id, id);
            commands.push(AssignedCommand {
                command: load,
                worker: target,
            });
            job.dm.record_refresh(entry.partition, instance.id);
        }
        // Templates built for the old allocation will be regenerated lazily
        // (or reused as-is when the failed worker rejoined in place); cached
        // patches may reference lost objects.
        job.tm.last_executed = None;
        job.tm.patch_cache = nimbus_core::PatchCache::new();
        let _ = self.dispatch(j, commands);
        // For transport-detected failures (`notify == false`: the driver is
        // oblivious and keeps the values it already fetched), replay the
        // entries logged since the restored checkpoint so the data state
        // catches back up to the exact pre-failure point — losing them would
        // silently fork history. Replay is controller-local: no driver
        // involvement, and with a rejoined worker no template re-recording
        // either. Driver-initiated `FailWorker` recoveries skip this: the
        // paper's experiment pattern has the driver re-run the lost
        // iterations itself. The log is kept: a second failure before the
        // next checkpoint commit replays the same window.
        if !notify && self.jobs[j].replay_valid && !self.jobs[j].replay_log.is_empty() {
            let log = std::mem::take(&mut self.jobs[j].replay_log);
            self.jobs[j].replaying = true;
            for entry in &log {
                let ok = match entry {
                    ReplayEntry::Instantiate { name, params } => {
                        self.instantiate_block(j, name, params).is_ok()
                    }
                    ReplayEntry::Submit(spec) => self.submit_task(j, spec.clone()).is_ok(),
                    ReplayEntry::SetTemplates(enabled) => {
                        self.jobs[j].enable_templates = *enabled;
                        true
                    }
                };
                if !ok {
                    // The window can no longer be reconstructed faithfully;
                    // stop (the data state stays at a consistent prefix) and
                    // never trust this log again.
                    self.jobs[j].replay_valid = false;
                    break;
                }
                self.stats.instantiations_replayed += 1;
            }
            self.jobs[j].replaying = false;
            self.jobs[j].replay_log = log;
        } else if notify {
            // Driver-initiated recovery: the driver re-runs the lost
            // iterations itself, so the faithful replay window restarts at
            // the restored checkpoint.
            self.jobs[j].replay_log.clear();
            self.jobs[j].replay_valid = true;
        }
        if notify {
            self.reply(j, ControllerToDriver::RecoveryComplete { marker });
        }
        // Re-arm the driver operation the failure interrupted: it proceeds
        // against the recovered state once the reload and replay commands
        // drain.
        match std::mem::replace(&mut self.jobs[j].resume_after_recovery, PendingSync::None) {
            PendingSync::None => {}
            resume => {
                self.jobs[j].sync = resume;
                if self.jobs[j].outstanding == 0 {
                    self.advance_sync(j);
                }
            }
        }
        if nimbus_core::debug_recovery() {
            eprintln!(
                "[recovered] job={} outstanding={}",
                self.jobs[j].id, self.jobs[j].outstanding
            );
        }
        // Release the registrations recovery held back; they observe the
        // fully recovered (and replayed) state, in arrival order. (Held
        // driver traffic needs no release: it sits in the job's own inbox,
        // which becomes serviceable again the moment recovery ends.)
        self.drain_held();
    }

    // ------------------------------------------------------------------
    // Worker interface
    // ------------------------------------------------------------------

    fn handle_worker(&mut self, msg: WorkerToController) {
        match msg {
            WorkerToController::CommandsCompleted {
                job,
                commands,
                compute_micros,
                ..
            } => {
                // The job may have closed while completions were in flight.
                let Some(j) = self.job_index_by_id(job) else {
                    return;
                };
                let n = commands.len() as u64;
                self.jobs[j].outstanding = self.jobs[j].outstanding.saturating_sub(n);
                self.stats.computation_time += std::time::Duration::from_micros(compute_micros);
                if self.jobs[j].outstanding == 0 {
                    self.advance_sync(j);
                }
            }
            WorkerToController::TemplateInstalled { .. } => {}
            WorkerToController::ValueFetched { job, value, .. } => {
                let Some(j) = self.job_index_by_id(job) else {
                    return;
                };
                if let PendingSync::FetchValue(partition) = self.jobs[j].sync {
                    self.jobs[j].sync = PendingSync::None;
                    self.reply(j, ControllerToDriver::ValueFetched { partition, value });
                }
            }
            WorkerToController::Halted { job, worker } => {
                if nimbus_core::debug_recovery() {
                    eprintln!("[halted] job={job} worker={worker}");
                }
                if let Some(j) = self.job_index_by_id(job) {
                    self.note_halted(j, worker);
                }
            }
            WorkerToController::Heartbeat { .. } => {}
            WorkerToController::Register { worker } => self.handle_register(worker),
        }
    }

    // ------------------------------------------------------------------
    // Rejoin handshake (cluster-level; template work fans out per job)
    // ------------------------------------------------------------------

    /// A worker announced itself. Three cases:
    ///
    /// 1. One or more recovering jobs are awaiting it: readmit it in place —
    ///    reinstall each such job's (patched) templates, answer with the
    ///    per-job version maps, and let each recovery reload its checkpoint
    ///    directly onto it. Zero template re-recordings.
    /// 2. It is already allocated: the idempotent startup hello.
    /// 3. It is new to the running cluster (brand-new id, or returning after
    ///    a permanent eviction): admit it elastically — per job, install an
    ///    (empty) member template per group and queue migration edits that
    ///    move its share of tasks over; data follows through the patch copy
    ///    path.
    fn handle_register(&mut self, worker: WorkerId) {
        if nimbus_core::debug_recovery() {
            eprintln!("[register] worker={worker}");
        }
        let awaiting_jobs: Vec<usize> = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, job)| {
                !job.done
                    && matches!(&job.sync, PendingSync::Recovering { awaiting_rejoin, .. }
                        if awaiting_rejoin.contains(&worker))
            })
            .map(|(i, _)| i)
            .collect();
        if !awaiting_jobs.is_empty() {
            self.rejoin_deadlines.retain(|(w, _)| *w != worker);
            if !self.workers.contains(&worker) {
                self.workers.push(worker);
                self.note_workers_changed();
            }
            if !self.all_workers.contains(&worker) {
                self.all_workers.push(worker);
            }
            self.stats.rejoins_handled += 1;
            for &j in &awaiting_jobs {
                if let PendingSync::Recovering {
                    awaiting_rejoin,
                    rejoined,
                    ..
                } = &mut self.jobs[j].sync
                {
                    awaiting_rejoin.retain(|w| *w != worker);
                    rejoined.push(worker);
                }
                self.reinstall_templates(j, worker);
            }
            self.send_rejoin_ack(worker);
            for &j in &awaiting_jobs {
                self.maybe_finish_recovery(j);
            }
            return;
        }
        if self.workers.contains(&worker) {
            // Startup hello from a worker of the initial allocation (or a
            // duplicate register): acknowledge and move on.
            self.send_rejoin_ack(worker);
            return;
        }
        // Elastic join of a running cluster.
        self.rejoin_deadlines.retain(|(w, _)| *w != worker);
        self.stats.rejoins_handled += 1;
        if !self.all_workers.contains(&worker) {
            self.all_workers.push(worker);
        }
        self.workers.push(worker);
        self.note_workers_changed();
        for j in 0..self.jobs.len() {
            if self.jobs[j].done {
                continue;
            }
            let job_id = self.jobs[j].id;
            let result = {
                let job = &mut self.jobs[j];
                job.tm.admit_worker(worker, &self.workers, &mut job.dm)
            };
            match result {
                Ok((installs, planned)) => {
                    self.stats.edits_applied += planned as u64;
                    for template in installs {
                        self.stats.worker_templates_installed += 1;
                        let _ = self.send_worker(
                            worker,
                            ControllerToWorker::InstallTemplate {
                                job: job_id,
                                template,
                            },
                        );
                    }
                }
                Err(_) => {
                    // Admission failed mid-way: `admit_worker` may already
                    // have grown some groups with an (uninstalled) member
                    // and queued migration edits toward it. Retire every
                    // group containing the half-admitted member so nothing
                    // can instantiate against it — this job re-records for
                    // the grown allocation on its next instantiation
                    // instead. No reply goes to its driver — it never asked
                    // for this join, and an unsolicited Error would
                    // desynchronize its request/reply protocol.
                    self.jobs[j].tm.registry.remove_groups_with_worker(worker);
                }
            }
        }
        self.send_rejoin_ack(worker);
    }

    /// Reinstalls, on a worker returning within the rejoin grace window,
    /// every worker template job `j`'s controller-side mirror holds for it —
    /// including all edits applied over the job's lifetime, which is what
    /// makes the reinstall a "patched template" rather than a re-recording.
    fn reinstall_templates(&mut self, j: usize, worker: WorkerId) {
        let job_id = self.jobs[j].id;
        let templates = self.jobs[j].tm.templates_for_worker(worker);
        if nimbus_core::debug_recovery() {
            eprintln!(
                "[reinstall] job={} worker={} templates={:?}",
                job_id,
                worker,
                templates.iter().map(|t| t.id).collect::<Vec<_>>()
            );
        }
        for template in templates {
            self.stats.worker_templates_installed += 1;
            let tid = template.id;
            let sent = self.send_worker(
                worker,
                ControllerToWorker::InstallTemplate {
                    job: job_id,
                    template,
                },
            );
            if nimbus_core::debug_recovery() {
                eprintln!("[reinstall] job={job_id} template={tid} sent={sent:?}");
            }
        }
    }

    /// Completes the handshake: the worker receives every job's current
    /// version map (sorted by job then partition for determinism).
    fn send_rejoin_ack(&mut self, worker: WorkerId) {
        let mut jobs: Vec<JobVersions> = self
            .jobs
            .iter()
            .filter(|job| !job.done)
            .map(|job| {
                let mut versions: Vec<PartitionVersion> = job
                    .dm
                    .versions
                    .iter()
                    .map(|(partition, version)| PartitionVersion {
                        partition,
                        version: version.raw(),
                    })
                    .collect();
                versions.sort_unstable_by_key(|pv| pv.partition);
                JobVersions {
                    job: job.id,
                    versions,
                }
            })
            .collect();
        jobs.sort_unstable_by_key(|jv| jv.job);
        let _ = self.send_worker(worker, ControllerToWorker::RejoinAccepted { jobs });
    }

    // ------------------------------------------------------------------
    // Per-job synchronization
    // ------------------------------------------------------------------

    /// Installs a driver synchronization for job `j`, running it immediately
    /// when the job is idle, or queueing it behind whatever synchronization
    /// is already in flight (at most one can be: the driver is synchronous,
    /// and the only controller-originated one is the auto-checkpoint).
    fn set_or_queue_sync(&mut self, j: usize, new_sync: PendingSync) {
        if matches!(self.jobs[j].sync, PendingSync::None) {
            self.jobs[j].sync = new_sync;
            if self.jobs[j].outstanding == 0 {
                self.advance_sync(j);
            }
        } else {
            self.jobs[j].queued_sync = Some(new_sync);
        }
    }

    /// Advances job `j`'s pending synchronization after its outstanding
    /// commands drained. Returns false when the job was removed (a close
    /// completed); the caller must not touch index `j` afterwards.
    fn advance_sync(&mut self, j: usize) -> bool {
        match std::mem::replace(&mut self.jobs[j].sync, PendingSync::None) {
            PendingSync::None => {}
            PendingSync::Barrier => self.reply(j, ControllerToDriver::BarrierReached),
            PendingSync::FetchDrain(partition) => self.start_fetch(j, partition),
            PendingSync::FetchValue(partition) => {
                // Still waiting for the worker's reply.
                self.jobs[j].sync = PendingSync::FetchValue(partition);
            }
            PendingSync::CheckpointDrain { marker, notify } => {
                self.start_checkpoint(j, marker, notify);
            }
            PendingSync::CheckpointSave {
                marker,
                notify,
                descriptor,
            } => {
                let job = &mut self.jobs[j];
                job.checkpoints.commit(descriptor);
                self.stats.checkpoints_committed += 1;
                // The committed checkpoint is the new replay baseline:
                // entries before it are durable, and the log starts a
                // fresh, faithful window.
                job.replay_log.clear();
                job.replay_valid = true;
                if notify {
                    self.reply(j, ControllerToDriver::CheckpointCommitted { marker });
                }
            }
            PendingSync::Closing => {
                // The job's work has drained: confirm and release it.
                self.reply(j, ControllerToDriver::JobTerminated);
                self.release_job(j);
                return false;
            }
            recovering @ PendingSync::Recovering { .. } => {
                // Still waiting for halt acknowledgements or a rejoin.
                self.jobs[j].sync = recovering;
            }
        }
        // The current synchronization resolved: start the queued one, if any
        // (e.g. the fetch that arrived while an auto-checkpoint was saving).
        if matches!(self.jobs[j].sync, PendingSync::None) {
            if let Some(queued) = self.jobs[j].queued_sync.take() {
                self.jobs[j].sync = queued;
                if self.jobs[j].outstanding == 0 {
                    return self.advance_sync(j);
                }
            }
        }
        true
    }

    fn start_fetch(&mut self, j: usize, partition: LogicalPartition) {
        let job_id = self.jobs[j].id;
        let holder = self.jobs[j].dm.latest_holder(partition, None);
        match holder {
            Some(instance) => {
                if self
                    .send_worker(
                        instance.worker,
                        ControllerToWorker::FetchValue {
                            job: job_id,
                            object: instance.id,
                        },
                    )
                    .is_ok()
                {
                    self.jobs[j].sync = PendingSync::FetchValue(partition);
                } else {
                    self.reply(
                        j,
                        ControllerToDriver::Error {
                            message: format!("worker {} unreachable", instance.worker),
                        },
                    );
                }
            }
            None => self.reply(
                j,
                ControllerToDriver::Error {
                    message: format!("no instance of {partition} exists"),
                },
            ),
        }
    }

    fn start_checkpoint(&mut self, j: usize, marker: u64, notify: bool) {
        let job = &mut self.jobs[j];
        let job_id = job.id;
        let ckpt_id = CheckpointId(job.ids.checkpoints.next_raw());
        let mut manifest = Vec::new();
        let mut commands: Vec<AssignedCommand> = Vec::new();
        for lp in job.dm.known_partitions() {
            let Some(holder) = job.dm.latest_holder(lp, None) else {
                continue;
            };
            let (holder_id, holder_worker) = (holder.id, holder.worker);
            // Vault keys are namespaced by job: two jobs' checkpoints can
            // never collide in the shared vault even though their
            // checkpoint ids and partition names do.
            let key = format!(
                "job{}/ckpt/{}/{}/{}",
                job_id, ckpt_id, lp.object, lp.partition
            );
            let id = job.ids.command();
            let save = Command::new(
                id,
                CommandKind::SaveData {
                    object: holder_id,
                    key: key.clone(),
                },
            )
            .with_before(job.bk.read_deps(holder_id));
            job.bk.note_read(holder_id, id);
            commands.push(AssignedCommand {
                command: save,
                worker: holder_worker,
            });
            manifest.push(CheckpointEntry {
                partition: lp,
                version: job.dm.versions.current(lp),
                worker: holder_worker,
                key,
            });
        }
        let descriptor = CheckpointDescriptor {
            id: ckpt_id,
            versions: job.dm.versions.clone(),
            instances: job.dm.instances.clone(),
            manifest,
            progress_marker: marker,
        };
        let has_commands = !commands.is_empty();
        // Armed BEFORE the dispatch: a save whose send fails outright (its
        // worker just died) must find the pending `CheckpointSave` in place
        // so it can poison it back to the drain step — otherwise the drain
        // would complete without those saves and commit a manifest whose
        // keys were never written.
        self.jobs[j].sync = PendingSync::CheckpointSave {
            marker,
            notify,
            descriptor,
        };
        let _ = self.dispatch(j, commands);
        if !has_commands {
            self.advance_sync(j);
        }
    }

    // ------------------------------------------------------------------
    // Dispatch helpers
    // ------------------------------------------------------------------

    fn dispatch(&mut self, j: usize, commands: Vec<AssignedCommand>) -> ControllerResult<()> {
        if commands.is_empty() {
            return Ok(());
        }
        let job_id = self.jobs[j].id;
        // Group into one message per worker while preserving program order.
        let mut order: Vec<WorkerId> = Vec::new();
        let mut per_worker: std::collections::HashMap<WorkerId, Vec<Command>> =
            std::collections::HashMap::new();
        for ac in commands {
            if !per_worker.contains_key(&ac.worker) {
                order.push(ac.worker);
            }
            per_worker.entry(ac.worker).or_default().push(ac.command);
        }
        for worker in order {
            let batch = per_worker.remove(&worker).unwrap_or_default();
            let count = batch.len() as u64;
            self.queue_worker(
                j,
                worker,
                ControllerToWorker::ExecuteCommands {
                    job: job_id,
                    commands: batch,
                },
                count,
            );
        }
        Ok(())
    }

    /// Queues a hot-path message for `worker` on the cork, optimistically
    /// accounting its `commands` into the owning job's `outstanding` (a
    /// failed flush uncounts them). With batching disabled this degenerates
    /// to the per-message path: one transport send, counted only on success
    /// — a failed send means the worker just died, its transport disconnect
    /// notice is (or shortly will be) in the inbox, and recovery rebuilds
    /// this state wholesale; erroring the driver here would race that
    /// notice, and not counting the commands keeps drains from wedging if
    /// recovery is impossible.
    fn queue_worker(&mut self, j: usize, worker: WorkerId, msg: ControllerToWorker, commands: u64) {
        let job = self.jobs[j].id;
        if !self.batch_sends {
            match self.send_worker(worker, msg) {
                Ok(()) if commands > 0 => {
                    self.jobs[j].outstanding += commands;
                    self.stats.commands_dispatched += commands;
                }
                Ok(()) => {}
                Err(_) => {
                    if commands > 0 {
                        self.poison_pending_checkpoint(j);
                    }
                }
            }
            return;
        }
        let message = Message::ToWorker(msg);
        let size = message.wire_size();
        self.stats.record_message(message.tag(), size);
        if commands > 0 {
            self.jobs[j].outstanding += commands;
            self.stats.commands_dispatched += commands;
        }
        // An entry about to outgrow one wire frame is flushed first: the
        // batch stays all-or-nothing on the wire, so failure accounting
        // never has to guess how much of a batch was delivered.
        if let Some(entry) = self.outbox.iter().find(|o| o.worker == worker) {
            if entry.bytes + size > CORK_MAX_BYTES {
                self.flush_worker_outbox(worker);
            }
        }
        match self.outbox.iter_mut().find(|o| o.worker == worker) {
            Some(entry) => {
                entry.messages.push(message);
                if commands > 0 {
                    match entry.commands.iter_mut().find(|(id, _)| *id == job) {
                        Some(slot) => slot.1 += commands,
                        None => entry.commands.push((job, commands)),
                    }
                }
                entry.bytes += size;
            }
            None => self.outbox.push(WorkerOutbox {
                worker,
                messages: vec![message],
                commands: if commands > 0 {
                    vec![(job, commands)]
                } else {
                    Vec::new()
                },
                bytes: size,
            }),
        }
    }

    /// Uncounts the per-job commands of a failed flush, restoring the
    /// per-message invariant that undeliverable commands never inflate
    /// `outstanding` — and poisons any checkpoint those commands may have
    /// been saving.
    fn uncount(&mut self, commands: &[(JobId, u64)]) {
        for (job, n) in commands {
            if let Some(j) = self.jobs.iter().position(|x| x.id == *job) {
                self.jobs[j].outstanding = self.jobs[j].outstanding.saturating_sub(*n);
                self.poison_pending_checkpoint(j);
            }
            self.stats.commands_dispatched = self.stats.commands_dispatched.saturating_sub(*n);
        }
    }

    /// Demotes a pending `CheckpointSave` back to its drain step. Called
    /// whenever some of the job's dispatched commands are known to be
    /// undeliverable (a send or flush to a dying worker failed): those
    /// commands may have been this checkpoint's `SaveData`s, and committing
    /// would record manifest keys that were never written — a recovery
    /// restoring that checkpoint would then load half a snapshot and fork
    /// the data state. The re-drain runs once the cluster settles; if the
    /// failed sends were to a dead worker, its disconnect notice interrupts
    /// the drain and recovery restarts it against the recovered allocation
    /// (`resumable` maps the drain through unchanged).
    fn poison_pending_checkpoint(&mut self, j: usize) {
        if let PendingSync::CheckpointSave { marker, notify, .. } = &self.jobs[j].sync {
            let (marker, notify) = (*marker, *notify);
            self.jobs[j].sync = PendingSync::CheckpointDrain { marker, notify };
        }
    }

    /// Flushes every corked per-worker buffer: one batched send — at most
    /// one `write(2)` on TCP — per worker. A failed flush means the worker
    /// died mid-batch; its optimistically counted commands are uncounted
    /// per job, and the transport's disconnect notice drives recovery as
    /// usual.
    fn flush_outbox(&mut self) {
        if self.outbox.is_empty() {
            return;
        }
        let outbox = std::mem::take(&mut self.outbox);
        for entry in outbox {
            if self
                .endpoint
                .send_many(NodeId::Worker(entry.worker), entry.messages)
                .is_err()
            {
                self.uncount(&entry.commands);
            }
        }
    }

    /// Flushes the corked buffer of one worker (if any). Every direct send
    /// goes through this first, so a directly sent message can never
    /// overtake commands corked for the same worker.
    fn flush_worker_outbox(&mut self, worker: WorkerId) {
        let Some(index) = self.outbox.iter().position(|o| o.worker == worker) else {
            return;
        };
        let entry = self.outbox.remove(index);
        if self
            .endpoint
            .send_many(NodeId::Worker(entry.worker), entry.messages)
            .is_err()
        {
            self.uncount(&entry.commands);
        }
    }

    fn send_worker(&mut self, worker: WorkerId, msg: ControllerToWorker) -> ControllerResult<()> {
        self.flush_worker_outbox(worker);
        let message = Message::ToWorker(msg);
        self.stats
            .record_message(message.tag(), message.wire_size());
        self.endpoint
            .send(NodeId::Worker(worker), message)
            .map_err(|e| ControllerError::Net(e.to_string()))
    }

    fn reply(&mut self, j: usize, msg: ControllerToDriver) {
        let driver = self.jobs[j].driver;
        let message = Message::ToDriver(msg);
        self.stats
            .record_message(message.tag(), message.wire_size());
        let _ = self.endpoint.send(driver, message);
    }
}
