//! The centralized Nimbus controller.
//!
//! The controller receives the driver's task stream, transforms it into an
//! execution plan (assigning partitions to workers and inserting copy
//! commands), and dispatches commands to workers. Execution templates sit on
//! top of this per-task path: basic blocks are recorded as they are scheduled
//! and replayed through one small instantiation message per worker on later
//! executions, with validation, patching, and edits handling dynamic control
//! flow and scheduling changes.

use std::collections::VecDeque;
use std::time::Instant;

use nimbus_core::checkpoint::{CheckpointDescriptor, CheckpointEntry, CheckpointLog};
use nimbus_core::graph::AssignedCommand;
use nimbus_core::ids::{CheckpointId, LogicalPartition, TaskId, WorkerId};
use nimbus_core::lineage::LineageLog;
use nimbus_core::task::TaskSpec;
use nimbus_core::template::InstantiationParams;
use nimbus_core::{Command, CommandKind, ControlPlaneStats};
use nimbus_net::{
    ControllerToDriver, ControllerToWorker, DriverMessage, Endpoint, Envelope, Message, NodeId,
    TransportEndpoint, TransportEvent, WorkerToController,
};

use crate::assignment::AssignmentPolicy;
use crate::data_manager::DataManager;
use crate::error::{ControllerError, ControllerResult};
use crate::expansion::{expand_task, refresh_instance, Bookkeeping, IdGens};
use crate::template_manager::TemplateManager;

/// Static controller configuration.
pub struct ControllerConfig {
    /// The initial worker allocation.
    pub workers: Vec<WorkerId>,
    /// Partition assignment policy.
    pub policy: AssignmentPolicy,
    /// Whether execution templates are enabled (disabled = pure centralized
    /// per-task scheduling, the Spark-like baseline).
    pub enable_templates: bool,
    /// Automatically checkpoint after this many template instantiations.
    pub checkpoint_every: Option<u64>,
}

impl ControllerConfig {
    /// Creates a configuration with templates enabled and no auto checkpoints.
    pub fn new(workers: Vec<WorkerId>) -> Self {
        Self {
            workers,
            policy: AssignmentPolicy::hash(),
            enable_templates: true,
            checkpoint_every: None,
        }
    }
}

#[allow(clippy::large_enum_variant)] // CheckpointSave is rare; boxing would obscure it
enum PendingSync {
    None,
    Barrier,
    FetchDrain(LogicalPartition),
    FetchValue(LogicalPartition),
    CheckpointDrain {
        marker: u64,
        notify: bool,
    },
    CheckpointSave {
        marker: u64,
        notify: bool,
        descriptor: CheckpointDescriptor,
    },
    Recovering {
        marker: u64,
        /// Workers whose `Halted` acknowledgement is still outstanding. A
        /// worker leaves this set when it halts — or when its connection
        /// drops, since a dead worker will never acknowledge.
        pending_halts: Vec<WorkerId>,
        /// Whether to send the driver a `RecoveryComplete` reply (true for
        /// driver-initiated `FailWorker`, false for transport-detected
        /// failures, where the driver is not waiting for one).
        notify: bool,
    },
}

/// The centralized controller node, generic over the transport connecting
/// it to the cluster (in-process [`Endpoint`] by default, or TCP).
pub struct Controller<E: TransportEndpoint = Endpoint> {
    endpoint: E,
    workers: Vec<WorkerId>,
    all_workers: Vec<WorkerId>,
    dm: DataManager,
    bk: Bookkeeping,
    ids: IdGens,
    tm: TemplateManager,
    lineage: LineageLog,
    checkpoints: CheckpointLog,
    outstanding: u64,
    enable_templates: bool,
    checkpoint_every: Option<u64>,
    instantiations_since_checkpoint: u64,
    sync: PendingSync,
    /// The driver operation a transport-detected failure interrupted; it is
    /// re-armed once recovery completes so the driver's pending request is
    /// answered (with post-recovery state) instead of abandoned.
    resume_after_recovery: PendingSync,
    /// A driver synchronization that arrived while another one (typically an
    /// auto-checkpoint) was still in flight. The driver is synchronous, so
    /// one slot suffices; it is installed as soon as the current one
    /// resolves. Without this, a fetch racing an auto-checkpoint would
    /// overwrite the un-committed `CheckpointSave` and silently discard the
    /// checkpoint.
    queued_sync: Option<PendingSync>,
    deferred: VecDeque<Envelope>,
    stats: ControlPlaneStats,
    running: bool,
}

impl<E: TransportEndpoint> Controller<E> {
    /// Creates a controller bound to a transport endpoint.
    pub fn new(config: ControllerConfig, endpoint: E) -> Self {
        Self {
            endpoint,
            all_workers: config.workers.clone(),
            workers: config.workers,
            dm: DataManager::new(config.policy),
            bk: Bookkeeping::new(),
            ids: IdGens::new(),
            tm: TemplateManager::new(),
            lineage: LineageLog::new(),
            checkpoints: CheckpointLog::new(),
            outstanding: 0,
            enable_templates: config.enable_templates,
            checkpoint_every: config.checkpoint_every,
            instantiations_since_checkpoint: 0,
            sync: PendingSync::None,
            resume_after_recovery: PendingSync::None,
            queued_sync: None,
            deferred: VecDeque::new(),
            stats: ControlPlaneStats::new(),
            running: true,
        }
    }

    /// Read-only access to the accumulated control-plane statistics.
    pub fn stats(&self) -> &ControlPlaneStats {
        &self.stats
    }

    /// Runs the controller until the driver shuts the job down; returns the
    /// accumulated control-plane statistics.
    pub fn run(mut self) -> ControlPlaneStats {
        while self.running {
            let envelope = match self.next_envelope() {
                Some(e) => e,
                None => break,
            };
            self.handle(envelope);
        }
        self.stats
    }

    fn next_envelope(&mut self) -> Option<Envelope> {
        if let Some(e) = self.deferred.pop_front() {
            return Some(e);
        }
        self.endpoint.recv().ok()
    }

    fn handle(&mut self, envelope: Envelope) {
        match envelope.message {
            Message::Driver(msg) => {
                let start = Instant::now();
                self.handle_driver(msg);
                self.stats.control_plane_time += start.elapsed();
            }
            Message::FromWorker(msg) => self.handle_worker(msg),
            Message::Transport(TransportEvent::PeerDisconnected(peer)) => {
                self.handle_disconnect(peer);
            }
            _ => {}
        }
    }

    /// Reacts to a transport-reported peer loss (TCP transport only; the
    /// in-process fabric never severs connections).
    fn handle_disconnect(&mut self, peer: NodeId) {
        match peer {
            // A lost worker is an abrupt failure: run the same recovery path
            // the driver's explicit `FailWorker` exercises. Without a
            // checkpoint this surfaces a clean error to the driver instead
            // of hanging the job.
            NodeId::Worker(w) => {
                if !self.workers.contains(&w) {
                    return; // Already evicted.
                }
                if matches!(self.sync, PendingSync::Recovering { .. }) {
                    // A second failure while already recovering: the worker
                    // will never acknowledge its Halt, so count it out and
                    // keep the recovery moving instead of wedging.
                    self.workers.retain(|x| *x != w);
                    if self.workers.is_empty() {
                        self.sync = PendingSync::None;
                        self.resume_after_recovery = PendingSync::None;
                        self.reply(ControllerToDriver::Error {
                            message: "every worker disconnected during recovery".to_string(),
                        });
                        return;
                    }
                    self.note_halted(w);
                    return;
                }
                // Recovery replaces whatever the driver was synchronizing
                // on; stash it so the pending request is answered (against
                // recovered state) once recovery completes, instead of the
                // driver receiving a reply it never asked for.
                let interrupted = std::mem::replace(&mut self.sync, PendingSync::None);
                match self.begin_recovery(w, false) {
                    Ok(()) => self.resume_after_recovery = Self::resumable(interrupted),
                    Err(e) => {
                        // Unrecoverable (no checkpoint / no workers): answer
                        // the driver's pending request — or its next one —
                        // with a clean error rather than hanging.
                        self.reply(ControllerToDriver::Error {
                            message: format!("worker {w} disconnected: {e}"),
                        });
                    }
                }
            }
            // A lost driver orphans the job: shut the workers down and exit
            // rather than running headless forever.
            NodeId::Driver => self.shutdown_workers(),
            NodeId::Controller => {}
        }
    }

    /// Broadcasts `Shutdown` to every worker ever allocated (failed ones
    /// included — their in-process thread may still be alive; a dead TCP
    /// peer just fails the send) and stops the controller loop.
    fn shutdown_workers(&mut self) {
        for w in &self.all_workers {
            let _ = self.endpoint.send(
                NodeId::Worker(*w),
                Message::ToWorker(ControllerToWorker::Shutdown),
            );
        }
        self.running = false;
    }

    // ------------------------------------------------------------------
    // Driver interface
    // ------------------------------------------------------------------

    fn handle_driver(&mut self, msg: DriverMessage) {
        match msg {
            DriverMessage::DefineDataset(def) => {
                self.dm.define_dataset(def);
                self.reply(ControllerToDriver::Ack);
            }
            DriverMessage::SubmitTask(spec) => {
                if let Err(e) = self.submit_task(spec) {
                    self.reply(ControllerToDriver::Error {
                        message: e.to_string(),
                    });
                }
            }
            DriverMessage::StartTemplate { name } => {
                let result = if self.enable_templates {
                    self.tm.start_recording(&name)
                } else {
                    Ok(())
                };
                match result {
                    Ok(()) => self.reply(ControllerToDriver::Ack),
                    Err(e) => self.reply(ControllerToDriver::Error {
                        message: e.to_string(),
                    }),
                }
            }
            DriverMessage::AbortTemplate { name } => {
                let result = if self.enable_templates {
                    self.tm.abort_recording(&name)
                } else {
                    Ok(())
                };
                match result {
                    Ok(()) => self.reply(ControllerToDriver::Ack),
                    Err(e) => self.reply(ControllerToDriver::Error {
                        message: e.to_string(),
                    }),
                }
            }
            DriverMessage::FinishTemplate { name } => {
                if !self.enable_templates {
                    self.reply(ControllerToDriver::TemplateInstalled { name });
                    return;
                }
                match self.finish_template(&name) {
                    Ok(()) => self.reply(ControllerToDriver::TemplateInstalled { name }),
                    Err(e) => self.reply(ControllerToDriver::Error {
                        message: e.to_string(),
                    }),
                }
            }
            DriverMessage::InstantiateTemplate { name, params } => {
                if let Err(e) = self.instantiate_block(&name, &params) {
                    self.reply(ControllerToDriver::Error {
                        message: e.to_string(),
                    });
                }
            }
            DriverMessage::FetchValue { partition } => {
                self.set_or_queue_sync(PendingSync::FetchDrain(partition));
            }
            DriverMessage::Barrier => {
                self.set_or_queue_sync(PendingSync::Barrier);
            }
            DriverMessage::EnableTemplates(enabled) => {
                self.enable_templates = enabled;
                self.reply(ControllerToDriver::Ack);
            }
            DriverMessage::Checkpoint { marker } => {
                self.set_or_queue_sync(PendingSync::CheckpointDrain {
                    marker,
                    notify: true,
                });
            }
            DriverMessage::MigrateTasks { name, count } => {
                let workers = self.workers.clone();
                match self
                    .tm
                    .plan_migrations(&name, count, &workers, &mut self.dm)
                {
                    Ok(planned) => {
                        self.stats.edits_applied += planned as u64;
                        self.reply(ControllerToDriver::Ack);
                    }
                    Err(e) => self.reply(ControllerToDriver::Error {
                        message: e.to_string(),
                    }),
                }
            }
            DriverMessage::SetWorkerAllocation { workers } => {
                match self.change_allocation(workers) {
                    Ok(()) => self.reply(ControllerToDriver::Ack),
                    Err(e) => self.reply(ControllerToDriver::Error {
                        message: e.to_string(),
                    }),
                }
            }
            DriverMessage::FailWorker { worker } => {
                if let Err(e) = self.begin_recovery(worker, true) {
                    self.reply(ControllerToDriver::Error {
                        message: e.to_string(),
                    });
                }
            }
            DriverMessage::Shutdown => {
                self.shutdown_workers();
                self.reply(ControllerToDriver::JobTerminated);
            }
        }
    }

    fn submit_task(&mut self, spec: TaskSpec) -> ControllerResult<()> {
        let expanded = expand_task(
            &spec,
            &self.workers,
            &mut self.dm,
            &mut self.bk,
            &self.ids,
            &mut self.lineage,
        )?;
        self.tm.record_task(&spec, &expanded);
        self.stats.tasks_scheduled_directly += 1;
        self.stats.copies_inserted += expanded
            .commands
            .iter()
            .filter(|c| c.command.kind.is_network_copy())
            .count() as u64
            / 2;
        self.dispatch(expanded.commands)?;
        Ok(())
    }

    fn finish_template(&mut self, name: &str) -> ControllerResult<()> {
        let (_ct, _group, installs) = self.tm.finish_recording(name, &self.dm, &self.ids)?;
        self.stats.controller_templates_installed += 1;
        self.stats.worker_template_groups_generated += 1;
        self.stats.worker_templates_installed += installs.len() as u64;
        for (worker, template) in installs {
            self.send_worker(worker, ControllerToWorker::InstallTemplate { template })?;
        }
        Ok(())
    }

    fn instantiate_block(
        &mut self,
        name: &str,
        params: &InstantiationParams,
    ) -> ControllerResult<()> {
        let ct = self
            .tm
            .registry
            .controller_template_by_name(name)
            .ok_or_else(|| ControllerError::UnknownBlock(name.to_string()))?;
        let ct_id = ct.id;
        let task_count = ct.task_count();
        self.stats.controller_template_instantiations += 1;
        self.instantiations_since_checkpoint += 1;

        let group = self
            .tm
            .registry
            .find_group_for_workers(ct_id, &self.workers)
            .map(|g| g.id);

        match group {
            Some(group_id) if self.enable_templates => {
                let plan = self.tm.plan_instantiation(
                    group_id,
                    params,
                    &mut self.dm,
                    &mut self.bk,
                    &self.ids,
                )?;
                if plan.auto_validated {
                    self.stats.auto_validations += 1;
                } else {
                    self.stats.full_validations += 1;
                }
                if !plan.patch_commands.is_empty() {
                    self.stats.patches_applied += 1;
                    if plan.patch_cache_hit {
                        self.stats.patch_cache_hits += 1;
                    } else {
                        self.stats.patch_cache_misses += 1;
                    }
                    self.dispatch(plan.patch_commands)?;
                }
                let edit_count: usize = plan.per_worker.iter().map(|(_, i)| i.edits.len()).sum();
                self.stats.edits_applied += edit_count as u64;
                self.stats.worker_template_instantiations += plan.per_worker.len() as u64;
                self.stats.tasks_from_templates += plan.task_count;
                self.outstanding += plan.expected_commands;
                for (worker, instantiation) in plan.per_worker {
                    self.send_worker(
                        worker,
                        ControllerToWorker::InstantiateTemplate(instantiation),
                    )?;
                }
            }
            _ => {
                // No worker templates match the current allocation (or
                // templates are disabled): schedule the block task by task,
                // recording a fresh group if templates are enabled.
                let task_base = self.ids.tasks.next_block(task_count as u64);
                let task_ids: Vec<TaskId> = (0..task_count as u64)
                    .map(|i| TaskId(task_base + i))
                    .collect();
                let ct = self
                    .tm
                    .registry
                    .controller_template_by_name(name)
                    .expect("checked above");
                let specs = ct.instantiate(&task_ids, params)?;
                let record = self.enable_templates && !self.tm.is_recording();
                if record {
                    self.tm.start_recording(name)?;
                }
                for spec in &specs {
                    // Placement hints from the old assignment may point at
                    // evicted workers; expansion falls back to the current
                    // allocation automatically.
                    let expanded = expand_task(
                        spec,
                        &self.workers,
                        &mut self.dm,
                        &mut self.bk,
                        &self.ids,
                        &mut self.lineage,
                    )?;
                    self.tm.record_task(spec, &expanded);
                    self.stats.tasks_scheduled_directly += 1;
                    self.dispatch(expanded.commands)?;
                }
                if record {
                    self.finish_template(name)?;
                }
            }
        }

        if let Some(every) = self.checkpoint_every {
            if self.instantiations_since_checkpoint >= every
                && matches!(self.sync, PendingSync::None)
            {
                let marker = self.instantiations_since_checkpoint;
                self.instantiations_since_checkpoint = 0;
                // Drains the just-dispatched instantiation first, then saves.
                self.set_or_queue_sync(PendingSync::CheckpointDrain {
                    marker,
                    notify: false,
                });
            }
        }
        Ok(())
    }

    fn change_allocation(&mut self, new_workers: Vec<WorkerId>) -> ControllerResult<()> {
        if new_workers.is_empty() {
            return Err(ControllerError::NoWorkers);
        }
        let evicted: Vec<WorkerId> = self
            .workers
            .iter()
            .copied()
            .filter(|w| !new_workers.contains(w))
            .collect();
        for w in &new_workers {
            if !self.all_workers.contains(w) {
                self.all_workers.push(*w);
            }
        }
        // Drain evicted workers: move the latest copy of every partition they
        // exclusively hold onto a surviving worker, then forget their
        // instances.
        for w in &evicted {
            let partitions: Vec<LogicalPartition> = self
                .dm
                .instances
                .on_worker(*w)
                .iter()
                .map(|i| i.logical)
                .collect();
            let mut commands = Vec::new();
            for lp in partitions {
                let holders = self.dm.instances.latest_holders(lp, &self.dm.versions);
                let only_here = holders.iter().all(|h| h.worker == *w) && !holders.is_empty();
                if only_here {
                    self.dm.set_home(lp, {
                        // Re-home deterministically among the new allocation.
                        let idx = (lp.partition.raw() as usize) % new_workers.len();
                        new_workers[idx]
                    });
                    let target = self.dm.current_home(lp).expect("home just set");
                    refresh_instance(
                        lp,
                        target,
                        &mut self.dm,
                        &mut self.bk,
                        &self.ids,
                        &mut commands,
                    )?;
                }
            }
            self.dispatch(commands)?;
            self.dm.drop_worker(*w);
        }
        self.workers = new_workers;
        Ok(())
    }

    /// Maps an interrupted driver synchronization to the state that restarts
    /// it after recovery: in-flight fetches re-drain (their target worker may
    /// have changed), half-done checkpoints restart from the drain step.
    fn resumable(interrupted: PendingSync) -> PendingSync {
        match interrupted {
            PendingSync::FetchValue(p) | PendingSync::FetchDrain(p) => PendingSync::FetchDrain(p),
            PendingSync::CheckpointSave { marker, notify, .. } => {
                PendingSync::CheckpointDrain { marker, notify }
            }
            other => other,
        }
    }

    /// Records that `worker` will produce no (further) `Halted` reply —
    /// because it halted, or because it disconnected — and completes the
    /// recovery once every expected acknowledgement is accounted for.
    fn note_halted(&mut self, worker: WorkerId) {
        if let PendingSync::Recovering {
            marker,
            pending_halts,
            notify,
        } = &mut self.sync
        {
            pending_halts.retain(|w| *w != worker);
            if pending_halts.is_empty() {
                let (marker, notify) = (*marker, *notify);
                self.sync = PendingSync::None;
                self.complete_recovery(marker, notify);
            }
        }
    }

    fn begin_recovery(&mut self, failed: WorkerId, notify: bool) -> ControllerResult<()> {
        self.stats.failures_handled += 1;
        let marker = self
            .checkpoints
            .latest()
            .map(|c| c.progress_marker)
            .ok_or(ControllerError::NoCheckpoint)?;
        // The failed worker leaves the allocation but stays in `all_workers`:
        // the in-process "failed" thread still needs a shutdown message at
        // job end (a real deployment would simply have lost the process).
        self.workers.retain(|w| *w != failed);
        if self.workers.is_empty() {
            return Err(ControllerError::NoWorkers);
        }
        // Halt every surviving worker: they terminate ongoing commands and
        // flush their queues (Section 4.4).
        let survivors = self.workers.clone();
        for w in &survivors {
            self.send_worker(*w, ControllerToWorker::Halt)?;
        }
        self.sync = PendingSync::Recovering {
            marker,
            pending_halts: survivors,
            notify,
        };
        Ok(())
    }

    fn complete_recovery(&mut self, marker: u64, notify: bool) {
        let descriptor = self
            .checkpoints
            .latest()
            .cloned()
            .expect("recovery requires a checkpoint");
        // Reset execution state to the snapshot.
        self.outstanding = 0;
        self.bk.clear();
        self.dm.versions = descriptor.versions.clone();
        self.dm.instances = descriptor.instances.clone();
        // Forget instances that lived on workers no longer in the allocation.
        let snapshot_workers: Vec<WorkerId> = self
            .dm
            .instances
            .iter()
            .map(|i| i.worker)
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        for w in snapshot_workers {
            if !self.workers.contains(&w) {
                self.dm.drop_worker(w);
            }
        }
        // Reload every checkpointed partition into memory, re-homing the ones
        // whose instance disappeared with the failed worker.
        let mut commands: Vec<AssignedCommand> = Vec::new();
        for entry in descriptor.manifest.clone() {
            let target = if self.workers.contains(&entry.worker) {
                entry.worker
            } else {
                let idx = (entry.partition.partition.raw() as usize) % self.workers.len();
                self.workers[idx]
            };
            let instance = crate::expansion::ensure_instance_commands(
                entry.partition,
                target,
                &mut self.dm,
                &mut self.bk,
                &self.ids,
                &mut commands,
            );
            let id = self.ids.command();
            let load = Command::new(
                id,
                CommandKind::LoadData {
                    object: instance.id,
                    key: entry.key.clone(),
                },
            )
            .with_before(self.bk.write_deps(instance.id));
            self.bk.note_write(instance.id, id);
            commands.push(AssignedCommand {
                command: load,
                worker: target,
            });
            self.dm.record_refresh(entry.partition, instance.id);
        }
        let _ = self.dispatch(commands);
        // Templates built for the old allocation will be regenerated lazily;
        // cached patches may reference lost objects.
        self.tm.last_executed = None;
        self.tm.patch_cache = nimbus_core::PatchCache::new();
        if notify {
            self.reply(ControllerToDriver::RecoveryComplete { marker });
        }
        // Re-arm the driver operation the failure interrupted: it proceeds
        // against the recovered state once the reload commands drain.
        match std::mem::replace(&mut self.resume_after_recovery, PendingSync::None) {
            PendingSync::None => {}
            resume => {
                self.sync = resume;
                if self.outstanding == 0 {
                    self.advance_sync();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Worker interface
    // ------------------------------------------------------------------

    fn handle_worker(&mut self, msg: WorkerToController) {
        match msg {
            WorkerToController::CommandsCompleted {
                commands,
                compute_micros,
                ..
            } => {
                let n = commands.len() as u64;
                self.outstanding = self.outstanding.saturating_sub(n);
                self.stats.computation_time += std::time::Duration::from_micros(compute_micros);
                if self.outstanding == 0 {
                    self.advance_sync();
                }
            }
            WorkerToController::TemplateInstalled { .. } => {}
            WorkerToController::ValueFetched { value, .. } => {
                if let PendingSync::FetchValue(partition) = self.sync {
                    self.sync = PendingSync::None;
                    self.reply(ControllerToDriver::ValueFetched { partition, value });
                }
            }
            WorkerToController::Halted { worker } => self.note_halted(worker),
            WorkerToController::Heartbeat { .. } => {}
        }
    }

    /// Installs a driver synchronization, running it immediately when the
    /// cluster is idle, or queueing it behind whatever synchronization is
    /// already in flight (at most one can be: the driver is synchronous, and
    /// the only controller-originated one is the auto-checkpoint).
    fn set_or_queue_sync(&mut self, new_sync: PendingSync) {
        if matches!(self.sync, PendingSync::None) {
            self.sync = new_sync;
            if self.outstanding == 0 {
                self.advance_sync();
            }
        } else {
            self.queued_sync = Some(new_sync);
        }
    }

    fn advance_sync(&mut self) {
        match std::mem::replace(&mut self.sync, PendingSync::None) {
            PendingSync::None => {}
            PendingSync::Barrier => self.reply(ControllerToDriver::BarrierReached),
            PendingSync::FetchDrain(partition) => self.start_fetch(partition),
            PendingSync::FetchValue(partition) => {
                // Still waiting for the worker's reply.
                self.sync = PendingSync::FetchValue(partition);
            }
            PendingSync::CheckpointDrain { marker, notify } => {
                self.start_checkpoint(marker, notify);
            }
            PendingSync::CheckpointSave {
                marker,
                notify,
                descriptor,
            } => {
                self.checkpoints.commit(descriptor);
                self.stats.checkpoints_committed += 1;
                if notify {
                    self.reply(ControllerToDriver::CheckpointCommitted { marker });
                }
            }
            PendingSync::Recovering {
                marker,
                pending_halts,
                notify,
            } => {
                // Still waiting for halt acknowledgements.
                self.sync = PendingSync::Recovering {
                    marker,
                    pending_halts,
                    notify,
                };
            }
        }
        // The current synchronization resolved: start the queued one, if any
        // (e.g. the fetch that arrived while an auto-checkpoint was saving).
        if matches!(self.sync, PendingSync::None) {
            if let Some(queued) = self.queued_sync.take() {
                self.sync = queued;
                if self.outstanding == 0 {
                    self.advance_sync();
                }
            }
        }
    }

    fn start_fetch(&mut self, partition: LogicalPartition) {
        match self.dm.latest_holder(partition, None) {
            Some(instance) => {
                if self
                    .send_worker(
                        instance.worker,
                        ControllerToWorker::FetchValue {
                            object: instance.id,
                        },
                    )
                    .is_ok()
                {
                    self.sync = PendingSync::FetchValue(partition);
                } else {
                    self.reply(ControllerToDriver::Error {
                        message: format!("worker {} unreachable", instance.worker),
                    });
                }
            }
            None => self.reply(ControllerToDriver::Error {
                message: format!("no instance of {partition} exists"),
            }),
        }
    }

    fn start_checkpoint(&mut self, marker: u64, notify: bool) {
        let ckpt_id = CheckpointId(self.ids.checkpoints.next_raw());
        let mut manifest = Vec::new();
        let mut commands: Vec<AssignedCommand> = Vec::new();
        for lp in self.dm.known_partitions() {
            let Some(holder) = self.dm.latest_holder(lp, None) else {
                continue;
            };
            let key = format!("ckpt/{}/{}/{}", ckpt_id, lp.object, lp.partition);
            let id = self.ids.command();
            let save = Command::new(
                id,
                CommandKind::SaveData {
                    object: holder.id,
                    key: key.clone(),
                },
            )
            .with_before(self.bk.read_deps(holder.id));
            self.bk.note_read(holder.id, id);
            commands.push(AssignedCommand {
                command: save,
                worker: holder.worker,
            });
            manifest.push(CheckpointEntry {
                partition: lp,
                version: self.dm.versions.current(lp),
                worker: holder.worker,
                key,
            });
        }
        let descriptor = CheckpointDescriptor {
            id: ckpt_id,
            versions: self.dm.versions.clone(),
            instances: self.dm.instances.clone(),
            manifest,
            progress_marker: marker,
        };
        let has_commands = !commands.is_empty();
        let _ = self.dispatch(commands);
        self.sync = PendingSync::CheckpointSave {
            marker,
            notify,
            descriptor,
        };
        if !has_commands {
            self.advance_sync();
        }
    }

    // ------------------------------------------------------------------
    // Dispatch helpers
    // ------------------------------------------------------------------

    fn dispatch(&mut self, commands: Vec<AssignedCommand>) -> ControllerResult<()> {
        if commands.is_empty() {
            return Ok(());
        }
        // Group into one message per worker while preserving program order.
        let mut order: Vec<WorkerId> = Vec::new();
        let mut per_worker: std::collections::HashMap<WorkerId, Vec<Command>> =
            std::collections::HashMap::new();
        for ac in commands {
            if !per_worker.contains_key(&ac.worker) {
                order.push(ac.worker);
            }
            per_worker.entry(ac.worker).or_default().push(ac.command);
        }
        for worker in order {
            let batch = per_worker.remove(&worker).unwrap_or_default();
            self.outstanding += batch.len() as u64;
            self.stats.commands_dispatched += batch.len() as u64;
            self.send_worker(
                worker,
                ControllerToWorker::ExecuteCommands { commands: batch },
            )?;
        }
        Ok(())
    }

    fn send_worker(&mut self, worker: WorkerId, msg: ControllerToWorker) -> ControllerResult<()> {
        let message = Message::ToWorker(msg);
        self.stats
            .record_message(message.tag(), message.wire_size());
        self.endpoint
            .send(NodeId::Worker(worker), message)
            .map_err(|e| ControllerError::Net(e.to_string()))
    }

    fn reply(&mut self, msg: ControllerToDriver) {
        let message = Message::ToDriver(msg);
        self.stats
            .record_message(message.tag(), message.wire_size());
        let _ = self.endpoint.send(NodeId::Driver, message);
    }
}
