//! Controller-side error types.

use std::fmt;

use nimbus_core::ids::{LogicalPartition, WorkerId};
use nimbus_core::CoreError;

/// Errors produced by the controller.
#[derive(Debug)]
pub enum ControllerError {
    /// A request referenced a basic block that was never recorded.
    UnknownBlock(String),
    /// A request referenced a dataset that was never defined.
    UnknownDataset(String),
    /// A partition referenced by a task has no defined dataset.
    UnknownPartition(LogicalPartition),
    /// There are no workers in the current allocation.
    NoWorkers,
    /// A worker referenced by a request is not part of the allocation.
    UnknownWorker(WorkerId),
    /// The driver asked to finish a block while none was being recorded, or
    /// to start one while another was still open.
    RecordingStateMismatch(String),
    /// Recovery was requested but no checkpoint has been committed.
    NoCheckpoint,
    /// An error bubbled up from the core data structures.
    Core(CoreError),
    /// The transport failed.
    Net(String),
}

impl fmt::Display for ControllerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControllerError::UnknownBlock(name) => write!(f, "unknown basic block '{name}'"),
            ControllerError::UnknownDataset(name) => write!(f, "unknown dataset '{name}'"),
            ControllerError::UnknownPartition(lp) => write!(f, "unknown partition {lp}"),
            ControllerError::NoWorkers => write!(f, "no workers in the current allocation"),
            ControllerError::UnknownWorker(w) => write!(f, "worker {w} is not allocated"),
            ControllerError::RecordingStateMismatch(msg) => {
                write!(f, "template recording state mismatch: {msg}")
            }
            ControllerError::NoCheckpoint => write!(f, "no checkpoint available for recovery"),
            ControllerError::Core(e) => write!(f, "core error: {e}"),
            ControllerError::Net(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for ControllerError {}

impl From<CoreError> for ControllerError {
    fn from(e: CoreError) -> Self {
        ControllerError::Core(e)
    }
}

/// Result alias for controller operations.
pub type ControllerResult<T> = Result<T, ControllerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: ControllerError = CoreError::EmptyTemplate.into();
        assert!(e.to_string().contains("core error"));
        assert!(ControllerError::UnknownBlock("inner".into())
            .to_string()
            .contains("inner"));
    }
}
