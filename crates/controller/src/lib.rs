//! # nimbus-controller
//!
//! The centralized Nimbus controller: partition assignment, data versioning,
//! task-graph construction with automatic copy insertion, per-task dispatch,
//! and — on top of that — execution-template recording, generation,
//! validation, patching, edits, checkpointing, and failure recovery.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod assignment;
pub mod controller;
pub mod data_manager;
pub mod error;
pub mod expansion;
pub mod template_manager;

pub use assignment::AssignmentPolicy;
pub use controller::{Controller, ControllerConfig};
pub use data_manager::DataManager;
pub use error::{ControllerError, ControllerResult};
pub use expansion::{expand_task, refresh_instance, Bookkeeping, ExpandedTask, IdGens};
pub use template_manager::{build_group, InstantiationPlan, RecordingState, TemplateManager};
