//! The controller's view of cluster data: datasets, physical instances,
//! versions, and partition homes.
//!
//! The data manager answers the control plane's recurring questions — where
//! does a partition live, which instance holds its latest version, does a
//! worker already have a (possibly stale) copy — and allocates physical
//! object identifiers when new instances are needed.

use std::collections::HashMap;

use nimbus_core::data::{DatasetDef, DatasetRegistry, PhysicalInstance};
use nimbus_core::ids::{
    IdGenerator, LogicalObjectId, LogicalPartition, PhysicalObjectId, Version, WorkerId,
};
use nimbus_core::versioning::{InstanceMap, VersionMap};

use crate::assignment::AssignmentPolicy;
use crate::error::{ControllerError, ControllerResult};

/// The controller's data-state bookkeeping.
pub struct DataManager {
    /// Registered datasets.
    pub datasets: DatasetRegistry,
    /// Every physical instance in the cluster.
    pub instances: InstanceMap,
    /// Latest version of every partition in program order.
    pub versions: VersionMap,
    physical_ids: IdGenerator,
    partition_home: HashMap<LogicalPartition, WorkerId>,
    policy: AssignmentPolicy,
}

impl DataManager {
    /// Creates an empty data manager with the given assignment policy.
    pub fn new(policy: AssignmentPolicy) -> Self {
        Self {
            datasets: DatasetRegistry::new(),
            instances: InstanceMap::new(),
            versions: VersionMap::new(),
            physical_ids: IdGenerator::new(),
            partition_home: HashMap::new(),
            policy,
        }
    }

    /// Registers a dataset definition.
    pub fn define_dataset(&mut self, def: DatasetDef) {
        self.datasets.register(def);
    }

    /// Looks up a dataset by name.
    pub fn dataset_by_name(&self, name: &str) -> ControllerResult<&DatasetDef> {
        self.datasets
            .get_by_name(name)
            .ok_or_else(|| ControllerError::UnknownDataset(name.to_string()))
    }

    /// Looks up a dataset by id.
    pub fn dataset(&self, id: LogicalObjectId) -> Option<&DatasetDef> {
        self.datasets.get(id)
    }

    /// Returns (assigning on first touch) the home worker of a partition.
    pub fn home_of(
        &mut self,
        lp: LogicalPartition,
        workers: &[WorkerId],
    ) -> ControllerResult<WorkerId> {
        if workers.is_empty() {
            return Err(ControllerError::NoWorkers);
        }
        if let Some(w) = self.partition_home.get(&lp) {
            if workers.contains(w) {
                return Ok(*w);
            }
        }
        let w = self.policy.assign(lp, workers);
        self.partition_home.insert(lp, w);
        Ok(w)
    }

    /// Overrides the home worker of a partition (used by migrations and by
    /// allocation changes).
    pub fn set_home(&mut self, lp: LogicalPartition, worker: WorkerId) {
        self.partition_home.insert(lp, worker);
    }

    /// Current home of a partition if assigned.
    pub fn current_home(&self, lp: LogicalPartition) -> Option<WorkerId> {
        self.partition_home.get(&lp).copied()
    }

    /// Returns the instance of `lp` on `worker`, if one exists.
    pub fn instance_on(&self, lp: LogicalPartition, worker: WorkerId) -> Option<PhysicalInstance> {
        self.instances.instance_on_worker(lp, worker).copied()
    }

    /// Returns an existing instance of `lp` on `worker` or registers a new
    /// one (at version zero). The boolean is true if the instance was newly
    /// created and therefore needs a `CreateData` command.
    pub fn ensure_instance(
        &mut self,
        lp: LogicalPartition,
        worker: WorkerId,
    ) -> (PhysicalInstance, bool) {
        if let Some(existing) = self.instances.instance_on_worker(lp, worker) {
            return (*existing, false);
        }
        let id = PhysicalObjectId(self.physical_ids.next_raw());
        let instance = PhysicalInstance::new(id, lp, worker);
        self.instances.insert(instance);
        (instance, true)
    }

    /// Registers a brand-new instance of `lp` on `worker` even if one already
    /// exists there. Used by migration edits, which give a migrated task its
    /// own input/output objects so they can be refreshed independently of the
    /// instances the resident template entries use.
    pub fn create_dedicated_instance(
        &mut self,
        lp: LogicalPartition,
        worker: WorkerId,
    ) -> PhysicalInstance {
        let id = PhysicalObjectId(self.physical_ids.next_raw());
        let instance = PhysicalInstance::new(id, lp, worker);
        self.instances.insert(instance);
        instance
    }

    /// Returns an instance holding the latest version of `lp`, preferring one
    /// on `prefer` if given.
    pub fn latest_holder(
        &self,
        lp: LogicalPartition,
        prefer: Option<WorkerId>,
    ) -> Option<PhysicalInstance> {
        let holders = self.instances.latest_holders(lp, &self.versions);
        if let Some(w) = prefer {
            if let Some(h) = holders.iter().find(|h| h.worker == w) {
                return Some(**h);
            }
        }
        holders.first().map(|h| **h)
    }

    /// Returns true if the instance holds the latest version of its partition.
    pub fn is_up_to_date(&self, id: PhysicalObjectId) -> bool {
        self.instances.is_up_to_date(id, &self.versions)
    }

    /// Records that a task wrote `lp` through instance `id`: advances the
    /// partition version and marks the instance as holding it.
    pub fn record_write(&mut self, lp: LogicalPartition, id: PhysicalObjectId) -> Version {
        let v = self.versions.bump(lp);
        // The instance is registered by ensure_instance before any write.
        let _ = self.instances.set_version(id, v);
        v
    }

    /// Records that instance `id` was refreshed to the latest version of `lp`
    /// by a copy.
    pub fn record_refresh(&mut self, lp: LogicalPartition, id: PhysicalObjectId) {
        let latest = self.versions.current(lp);
        let _ = self.instances.set_version(id, latest);
    }

    /// Removes every instance hosted by `worker` (eviction or failure) and
    /// returns the partitions that lost their only up-to-date copy.
    pub fn drop_worker(&mut self, worker: WorkerId) -> Vec<LogicalPartition> {
        let removed = self.instances.remove_worker(worker);
        let mut lost = Vec::new();
        for inst in removed {
            let still_have_latest = !self
                .instances
                .latest_holders(inst.logical, &self.versions)
                .is_empty();
            if !still_have_latest && !lost.contains(&inst.logical) {
                lost.push(inst.logical);
            }
        }
        // Re-home partitions that pointed at the dropped worker; they will be
        // reassigned on next touch.
        self.partition_home.retain(|_, w| *w != worker);
        lost
    }

    /// Partitions whose home is currently `worker`.
    pub fn partitions_homed_on(&self, worker: WorkerId) -> Vec<LogicalPartition> {
        self.partition_home
            .iter()
            .filter(|(_, w)| **w == worker)
            .map(|(lp, _)| *lp)
            .collect()
    }

    /// Every partition that has been assigned a home so far.
    pub fn known_partitions(&self) -> Vec<LogicalPartition> {
        self.partition_home.keys().copied().collect()
    }

    /// Number of physical instances tracked.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::ids::PartitionIndex;

    fn lp(o: u64, p: u32) -> LogicalPartition {
        LogicalPartition::new(LogicalObjectId(o), PartitionIndex(p))
    }

    fn dm() -> DataManager {
        let mut dm = DataManager::new(AssignmentPolicy::hash());
        dm.define_dataset(DatasetDef::new(LogicalObjectId(1), "tdata", 4));
        dm.define_dataset(DatasetDef::new(LogicalObjectId(2), "coeff", 1));
        dm
    }

    #[test]
    fn dataset_lookup() {
        let dm = dm();
        assert_eq!(dm.dataset_by_name("tdata").unwrap().partitions, 4);
        assert!(dm.dataset_by_name("nope").is_err());
        assert!(dm.dataset(LogicalObjectId(2)).is_some());
    }

    #[test]
    fn home_is_sticky_until_worker_leaves() {
        let mut dm = dm();
        let ws = vec![WorkerId(0), WorkerId(1)];
        let h = dm.home_of(lp(1, 1), &ws).unwrap();
        assert_eq!(h, WorkerId(1));
        assert_eq!(dm.home_of(lp(1, 1), &ws).unwrap(), h);
        // Worker 1 leaves: reassigned among remaining.
        let h2 = dm.home_of(lp(1, 1), &[WorkerId(0)]).unwrap();
        assert_eq!(h2, WorkerId(0));
        assert!(dm.home_of(lp(1, 1), &[]).is_err());
    }

    #[test]
    fn ensure_instance_creates_once() {
        let mut dm = dm();
        let (a, created_a) = dm.ensure_instance(lp(1, 0), WorkerId(0));
        assert!(created_a);
        let (b, created_b) = dm.ensure_instance(lp(1, 0), WorkerId(0));
        assert!(!created_b);
        assert_eq!(a.id, b.id);
        let (c, created_c) = dm.ensure_instance(lp(1, 0), WorkerId(1));
        assert!(created_c);
        assert_ne!(a.id, c.id);
        assert_eq!(dm.instance_count(), 2);
    }

    #[test]
    fn writes_and_refreshes_track_latest_holder() {
        let mut dm = dm();
        let (a, _) = dm.ensure_instance(lp(2, 0), WorkerId(0));
        let (b, _) = dm.ensure_instance(lp(2, 0), WorkerId(1));
        let v = dm.record_write(lp(2, 0), a.id);
        assert_eq!(v, Version(1));
        assert!(dm.is_up_to_date(a.id));
        assert!(!dm.is_up_to_date(b.id));
        assert_eq!(dm.latest_holder(lp(2, 0), None).unwrap().id, a.id);
        assert_eq!(
            dm.latest_holder(lp(2, 0), Some(WorkerId(1))).unwrap().id,
            a.id,
            "preference only applies among latest holders"
        );
        dm.record_refresh(lp(2, 0), b.id);
        assert!(dm.is_up_to_date(b.id));
        assert_eq!(
            dm.latest_holder(lp(2, 0), Some(WorkerId(1))).unwrap().id,
            b.id
        );
    }

    #[test]
    fn drop_worker_reports_lost_partitions() {
        let mut dm = dm();
        let ws = vec![WorkerId(0), WorkerId(1)];
        let (a, _) = dm.ensure_instance(lp(1, 0), WorkerId(0));
        dm.home_of(lp(1, 0), &ws).unwrap();
        dm.record_write(lp(1, 0), a.id);
        // Partition 1 has a second, up-to-date copy elsewhere.
        let (b, _) = dm.ensure_instance(lp(1, 1), WorkerId(0));
        dm.record_write(lp(1, 1), b.id);
        let (c, _) = dm.ensure_instance(lp(1, 1), WorkerId(1));
        dm.record_refresh(lp(1, 1), c.id);

        let lost = dm.drop_worker(WorkerId(0));
        assert_eq!(lost, vec![lp(1, 0)]);
        assert!(dm.current_home(lp(1, 0)).is_none());
        assert_eq!(dm.instance_count(), 1);
    }

    #[test]
    fn partitions_homed_on_lists_assignments() {
        let mut dm = dm();
        let ws = vec![WorkerId(0), WorkerId(1)];
        for p in 0..4 {
            dm.home_of(lp(1, p), &ws).unwrap();
        }
        assert_eq!(dm.partitions_homed_on(WorkerId(0)).len(), 2);
        assert_eq!(dm.partitions_homed_on(WorkerId(1)).len(), 2);
        assert_eq!(dm.known_partitions().len(), 4);
    }
}
