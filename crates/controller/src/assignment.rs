//! Partition-to-worker assignment policies.
//!
//! The paper deliberately does not study scheduling *policy* (Section 6);
//! these are simple, pluggable policies that decide where a partition lives
//! when it is first touched or when the worker allocation changes.

use nimbus_core::ids::{LogicalPartition, WorkerId};

/// How the controller assigns partitions to workers.
#[derive(Debug, Clone, Default)]
pub enum AssignmentPolicy {
    /// Partition index modulo the number of workers: deterministic and
    /// balanced when datasets have the same partition count (the common case
    /// for the paper's workloads).
    #[default]
    Hash,
    /// Strict round-robin over the worker list in first-touch order.
    RoundRobin {
        /// Next index into the worker list.
        next: usize,
    },
}

impl AssignmentPolicy {
    /// Creates the default (hash) policy.
    pub fn hash() -> Self {
        AssignmentPolicy::Hash
    }

    /// Creates a round-robin policy.
    pub fn round_robin() -> Self {
        AssignmentPolicy::RoundRobin { next: 0 }
    }

    /// Picks a worker for a partition from the active worker list.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is empty; callers check allocation first.
    pub fn assign(&mut self, lp: LogicalPartition, workers: &[WorkerId]) -> WorkerId {
        assert!(
            !workers.is_empty(),
            "assignment requires at least one worker"
        );
        match self {
            AssignmentPolicy::Hash => {
                let idx = (lp.partition.raw() as usize) % workers.len();
                workers[idx]
            }
            AssignmentPolicy::RoundRobin { next } => {
                let idx = *next % workers.len();
                *next = next.wrapping_add(1);
                workers[idx]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::ids::{LogicalObjectId, PartitionIndex};

    fn lp(p: u32) -> LogicalPartition {
        LogicalPartition::new(LogicalObjectId(1), PartitionIndex(p))
    }

    fn workers(n: u32) -> Vec<WorkerId> {
        (0..n).map(WorkerId).collect()
    }

    #[test]
    fn hash_policy_is_deterministic_and_balanced() {
        let mut p = AssignmentPolicy::hash();
        let ws = workers(4);
        assert_eq!(p.assign(lp(0), &ws), WorkerId(0));
        assert_eq!(p.assign(lp(5), &ws), WorkerId(1));
        assert_eq!(p.assign(lp(5), &ws), WorkerId(1));
        let mut counts = [0usize; 4];
        for i in 0..100 {
            counts[p.assign(lp(i), &ws).raw() as usize] += 1;
        }
        assert!(counts.iter().all(|c| *c == 25));
    }

    #[test]
    fn round_robin_cycles() {
        let mut p = AssignmentPolicy::round_robin();
        let ws = workers(3);
        let picks: Vec<_> = (0..6).map(|i| p.assign(lp(i), &ws).raw()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_worker_list_panics() {
        AssignmentPolicy::hash().assign(lp(0), &[]);
    }
}
