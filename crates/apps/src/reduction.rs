//! Application-level two-level reduction trees.
//!
//! Like the paper's Nimbus and Naiad implementations of logistic regression
//! and k-means, the built-in workloads reduce per-partition partial results
//! through a two-level tree: partitions are grouped, each group reduces into
//! an intermediate partition, and a final task reduces the intermediates into
//! the global value. Reductions run as ordinary tasks on workers, so they
//! never bottleneck on the controller.

use nimbus_core::ids::FunctionId;
use nimbus_core::TaskParams;
use nimbus_driver::{AsDataset, DriverContext, DriverResult, StageSpec};

/// Returns the group size used for `partitions` inputs (√P rounded up).
pub fn group_size(partitions: u32) -> u32 {
    (partitions as f64).sqrt().ceil() as u32
}

/// Number of intermediate partitions needed for `partitions` inputs.
pub fn intermediate_partitions(partitions: u32) -> u32 {
    let g = group_size(partitions);
    partitions.div_ceil(g)
}

/// Submits a two-level reduction of `partials` into partition 0 of `output`,
/// using `intermediate` for the first level. `reduce_fn` must read any number
/// of inputs of the partial type and write their combination to its single
/// write object.
pub fn submit_two_level_reduce(
    ctx: &mut DriverContext,
    name: &str,
    reduce_fn: FunctionId,
    partials: &impl AsDataset,
    intermediate: &impl AsDataset,
    output: &impl AsDataset,
    params: TaskParams,
) -> DriverResult<()> {
    let p = partials.dataset_handle().partitions;
    let g = group_size(p);
    let groups = intermediate_partitions(p);
    assert!(
        intermediate.dataset_handle().partitions >= groups,
        "intermediate dataset '{}' needs at least {groups} partitions",
        intermediate.dataset_handle().name
    );
    // Level 1: one task per group.
    for group in 0..groups {
        let mut stage = StageSpec::new(format!("{name}_l1_{group}"), reduce_fn)
            .partitions(1)
            .params(params.clone());
        for member in (group * g)..((group + 1) * g).min(p) {
            stage = stage.read_partition(partials, member);
        }
        stage = stage.write_partition(intermediate, group);
        ctx.submit_stage(stage)?;
    }
    // Level 2: one task reducing the intermediates into the output.
    let mut stage = StageSpec::new(format!("{name}_l2"), reduce_fn)
        .partitions(1)
        .params(params);
    for group in 0..groups {
        stage = stage.read_partition(intermediate, group);
    }
    stage = stage.write_partition(output, 0);
    ctx.submit_stage(stage)
}

/// Number of tasks a two-level reduction of `partitions` inputs submits.
pub fn reduction_task_count(partitions: u32) -> u32 {
    intermediate_partitions(partitions) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_sizing() {
        assert_eq!(group_size(1), 1);
        assert_eq!(group_size(16), 4);
        assert_eq!(group_size(100), 10);
        assert_eq!(group_size(101), 11);
        assert_eq!(intermediate_partitions(16), 4);
        assert_eq!(intermediate_partitions(100), 10);
        assert_eq!(intermediate_partitions(10), 3);
        assert_eq!(reduction_task_count(16), 5);
    }
}
