//! Logistic regression: the paper's primary benchmark workload.
//!
//! The driver program follows Figure 3 of the paper: an outer loop estimates
//! the model's loss and decides whether to keep optimizing, while an inner
//! loop runs gradient steps until the gradient norm falls below a threshold.
//! Each inner iteration is one basic block ("lr_inner") containing a parallel
//! gradient stage, a two-level reduction tree, and a model update; each outer
//! iteration runs a second basic block ("lr_outer") that evaluates the loss.

use nimbus_core::appdata::{Scalar, VecF64};
use nimbus_core::ids::FunctionId;
use nimbus_core::TaskParams;
use nimbus_driver::{Dataset, DriverContext, DriverResult, StageSpec};
use nimbus_runtime::AppSetup;

use crate::data::{generate_classification_partition, PointsPartition};
use crate::reduction::{intermediate_partitions, submit_two_level_reduce};

/// Computes the per-point gradient contribution of a partition.
pub const LR_GRADIENT: FunctionId = FunctionId(10);
/// Element-wise sum of `f64` vectors (used by both reduction levels).
pub const LR_REDUCE_VECS: FunctionId = FunctionId(11);
/// Applies the reduced gradient to the weights and records its norm.
pub const LR_UPDATE: FunctionId = FunctionId(12);
/// Computes the partial logistic loss of a partition.
pub const LR_LOSS: FunctionId = FunctionId(13);

/// Configuration of a logistic-regression job.
#[derive(Clone, Debug)]
pub struct LogisticRegressionConfig {
    /// Number of data partitions (one gradient task per partition).
    pub partitions: u32,
    /// Points per partition.
    pub points_per_partition: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Inner loop: stop when the gradient norm falls below this threshold.
    pub gradient_threshold: f64,
    /// Inner loop: hard iteration cap.
    pub max_inner_iterations: usize,
    /// Outer loop: stop when the loss improves by less than this fraction.
    pub loss_tolerance: f64,
    /// Outer loop: hard iteration cap.
    pub max_outer_iterations: usize,
    /// Seed for the synthetic dataset.
    pub seed: u64,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        Self {
            partitions: 8,
            points_per_partition: 256,
            dim: 8,
            learning_rate: 0.5,
            gradient_threshold: 0.05,
            max_inner_iterations: 10,
            loss_tolerance: 1e-3,
            max_outer_iterations: 5,
            seed: 42,
        }
    }
}

/// Typed dataset handles used by the job.
pub struct LrDatasets {
    /// Training data.
    pub tdata: Dataset<PointsPartition>,
    /// Per-partition gradient partials.
    pub gradient: Dataset<VecF64>,
    /// First-level reduced gradients.
    pub gradient_l1: Dataset<VecF64>,
    /// Globally reduced gradient.
    pub gradient_global: Dataset<VecF64>,
    /// Model weights (single partition, broadcast-read).
    pub weights: Dataset<VecF64>,
    /// Norm of the last reduced gradient.
    pub gradient_norm: Dataset<Scalar>,
    /// Per-partition loss partials.
    pub loss_partial: Dataset<VecF64>,
    /// First-level reduced losses.
    pub loss_l1: Dataset<VecF64>,
    /// Global loss.
    pub loss: Dataset<VecF64>,
}

/// Result of a logistic-regression run.
#[derive(Clone, Debug, PartialEq)]
pub struct LrResult {
    /// Final training loss.
    pub final_loss: f64,
    /// Loss after each outer iteration.
    pub loss_history: Vec<f64>,
    /// Total inner (gradient) iterations executed.
    pub inner_iterations: usize,
    /// Outer iterations executed.
    pub outer_iterations: usize,
}

/// Registers the job's task functions and dataset factories.
pub fn register(setup: &mut AppSetup, config: &LogisticRegressionConfig) {
    let dim = config.dim;
    let seed = config.seed;
    let points = config.points_per_partition;

    // Dataset ids are assigned by the driver in definition order; factories
    // are registered against those ids by `define_datasets` below through
    // names. To keep registration independent of id assignment, factories are
    // keyed by the dataset's position in `define_datasets`: tdata is the
    // first dataset defined by this job, and so on. The runtime's driver
    // assigns ids 1..=9 in that order for a fresh context.
    setup.register_object(nimbus_core::LogicalObjectId(1), move |lp| {
        generate_classification_partition(seed, lp.partition.raw(), points, dim)
    });
    for id in 2..=4 {
        setup.register_object(nimbus_core::LogicalObjectId(id), move |_| {
            VecF64::zeros(dim)
        });
    }
    setup.register_object(nimbus_core::LogicalObjectId(5), move |_| VecF64::zeros(dim));
    setup.register_object(nimbus_core::LogicalObjectId(6), |_| Scalar::new(f64::MAX));
    for id in 7..=9 {
        setup.register_object(nimbus_core::LogicalObjectId(id), |_| VecF64::zeros(1));
    }

    setup.register_function(LR_GRADIENT, "lr_gradient", |ctx| {
        let data = ctx.read::<PointsPartition>(0)?;
        let weights = ctx.read::<VecF64>(1)?.values.clone();
        let grad = ctx.write::<VecF64>(0)?;
        if grad.values.len() != weights.len() {
            grad.values = vec![0.0; weights.len()];
        } else {
            grad.values.iter_mut().for_each(|g| *g = 0.0);
        }
        for i in 0..data.len() {
            let row = data.row(i);
            let y = data.ys[i];
            let margin: f64 = row.iter().zip(&weights).map(|(a, b)| a * b).sum();
            let coeff = -y / (1.0 + (y * margin).exp());
            for (g, x) in grad.values.iter_mut().zip(row) {
                *g += coeff * x;
            }
        }
        Ok(())
    });

    setup.register_function(LR_REDUCE_VECS, "lr_reduce_vecs", |ctx| {
        let mut acc: Vec<f64> = Vec::new();
        for i in 0..ctx.read_count() {
            let v = ctx.read::<VecF64>(i)?;
            if acc.is_empty() {
                acc = vec![0.0; v.values.len()];
            }
            for (a, b) in acc.iter_mut().zip(&v.values) {
                *a += b;
            }
        }
        ctx.write::<VecF64>(0)?.values = acc;
        Ok(())
    });

    setup.register_function(LR_UPDATE, "lr_update", |ctx| {
        let params = ctx.params().as_f64s().map_err(|e| e.to_string())?;
        let (lr, total_points) = (params[0], params[1]);
        let grad = ctx.read::<VecF64>(0)?.values.clone();
        let norm = (grad.iter().map(|g| g * g).sum::<f64>()).sqrt() / total_points;
        {
            let weights = ctx.write::<VecF64>(0)?;
            if weights.values.len() != grad.len() {
                weights.values = vec![0.0; grad.len()];
            }
            for (w, g) in weights.values.iter_mut().zip(&grad) {
                *w -= lr * g / total_points;
            }
        }
        ctx.write::<Scalar>(1)?.value = norm;
        Ok(())
    });

    setup.register_function(LR_LOSS, "lr_loss", |ctx| {
        let data = ctx.read::<PointsPartition>(0)?;
        let weights = &ctx.read::<VecF64>(1)?.values.clone();
        let mut loss = 0.0;
        for i in 0..data.len() {
            let row = data.row(i);
            let y = data.ys[i];
            let margin: f64 = row.iter().zip(weights).map(|(a, b)| a * b).sum();
            loss += (1.0 + (-y * margin).exp()).ln();
        }
        let out = ctx.write::<VecF64>(0)?;
        out.values = vec![loss];
        Ok(())
    });
}

/// Defines the job's datasets. Must be called on a fresh driver context (the
/// factory registration in [`register`] assumes these are the first datasets
/// defined).
pub fn define_datasets(
    ctx: &mut DriverContext,
    config: &LogisticRegressionConfig,
) -> DriverResult<LrDatasets> {
    let groups = intermediate_partitions(config.partitions);
    Ok(LrDatasets {
        tdata: ctx.define_dataset("tdata", config.partitions)?,
        gradient: ctx.define_dataset("gradient", config.partitions)?,
        gradient_l1: ctx.define_dataset("gradient_l1", groups)?,
        gradient_global: ctx.define_dataset("gradient_global", 1)?,
        weights: ctx.define_dataset("weights", 1)?,
        gradient_norm: ctx.define_dataset("gradient_norm", 1)?,
        loss_partial: ctx.define_dataset("loss_partial", config.partitions)?,
        loss_l1: ctx.define_dataset("loss_l1", groups)?,
        loss: ctx.define_dataset("loss", 1)?,
    })
}

/// Submits one inner (gradient) iteration as the "lr_inner" basic block.
pub fn submit_inner_block(
    ctx: &mut DriverContext,
    data: &LrDatasets,
    config: &LogisticRegressionConfig,
) -> DriverResult<()> {
    let total_points = (config.partitions as usize * config.points_per_partition) as f64;
    let lr = config.learning_rate;
    ctx.block("lr_inner", |ctx| {
        ctx.submit_stage(
            StageSpec::new("gradient", LR_GRADIENT)
                .read(&data.tdata)
                .read_broadcast(&data.weights)
                .write(&data.gradient),
        )?;
        submit_two_level_reduce(
            ctx,
            "gradient_reduce",
            LR_REDUCE_VECS,
            &data.gradient,
            &data.gradient_l1,
            &data.gradient_global,
            TaskParams::empty(),
        )?;
        ctx.submit_stage(
            StageSpec::new("update", LR_UPDATE)
                .read_broadcast(&data.gradient_global)
                .write_partition(&data.weights, 0)
                .write_partition(&data.gradient_norm, 0)
                .partitions(1)
                .params(TaskParams::from_f64s(&[lr, total_points])),
        )?;
        Ok(())
    })
}

/// Submits one outer (loss estimation) iteration as the "lr_outer" block.
pub fn submit_outer_block(
    ctx: &mut DriverContext,
    data: &LrDatasets,
    _config: &LogisticRegressionConfig,
) -> DriverResult<()> {
    ctx.block("lr_outer", |ctx| {
        ctx.submit_stage(
            StageSpec::new("loss", LR_LOSS)
                .read(&data.tdata)
                .read_broadcast(&data.weights)
                .write(&data.loss_partial),
        )?;
        submit_two_level_reduce(
            ctx,
            "loss_reduce",
            LR_REDUCE_VECS,
            &data.loss_partial,
            &data.loss_l1,
            &data.loss,
            TaskParams::empty(),
        )?;
        Ok(())
    })
}

/// Runs the full nested-loop training job (Figure 3 of the paper).
pub fn run(ctx: &mut DriverContext, config: &LogisticRegressionConfig) -> DriverResult<LrResult> {
    let data = define_datasets(ctx, config)?;
    let mut loss_history = Vec::new();
    let mut previous_loss = f64::MAX;
    let mut inner_iterations = 0usize;
    let mut outer_iterations = 0usize;

    for _outer in 0..config.max_outer_iterations {
        outer_iterations += 1;
        // Inner optimization loop: gradient steps until the gradient norm is
        // small (data-dependent branch on a fetched scalar).
        for _inner in 0..config.max_inner_iterations {
            submit_inner_block(ctx, &data, config)?;
            inner_iterations += 1;
            let norm = ctx.fetch(&data.gradient_norm, 0)?;
            if norm < config.gradient_threshold {
                break;
            }
        }
        // Outer estimation: compute the loss and decide whether to continue.
        submit_outer_block(ctx, &data, config)?;
        let total_points = (config.partitions as usize * config.points_per_partition) as f64;
        let loss = ctx.fetch(&data.loss, 0)? / total_points;
        loss_history.push(loss);
        let improvement = (previous_loss - loss).abs() / previous_loss.max(1e-12);
        previous_loss = loss;
        if improvement < config.loss_tolerance {
            break;
        }
    }

    Ok(LrResult {
        final_loss: previous_loss,
        loss_history,
        inner_iterations,
        outer_iterations,
    })
}

/// Total tasks submitted per inner iteration (gradient stage + reduction tree
/// + update). Used by the benchmark harness to compute task throughput.
pub fn tasks_per_inner_iteration(partitions: u32) -> u64 {
    partitions as u64 + crate::reduction::reduction_task_count(partitions) as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_runtime::{Cluster, ClusterConfig};

    #[test]
    fn logistic_regression_converges_and_templates_are_reused() {
        let config = LogisticRegressionConfig {
            partitions: 4,
            points_per_partition: 64,
            dim: 4,
            max_inner_iterations: 4,
            max_outer_iterations: 3,
            ..Default::default()
        };
        let mut setup = AppSetup::new();
        register(&mut setup, &config);
        let cluster = Cluster::start(ClusterConfig::new(2), setup);
        let report = cluster
            .run_driver(|ctx| run(ctx, &config))
            .expect("job completes");
        let result = report.output;
        assert!(result.inner_iterations >= 2);
        assert!(result.final_loss.is_finite());
        // Training reduces the loss below the untrained ln(2) baseline.
        assert!(
            result.final_loss < 0.693,
            "final loss {} did not improve over the untrained model",
            result.final_loss
        );
        // The inner block was recorded once and instantiated afterwards.
        assert_eq!(report.controller.controller_templates_installed, 2);
        assert!(report.controller.tasks_from_templates > 0);
    }

    #[test]
    fn templates_do_not_change_results() {
        let config = LogisticRegressionConfig {
            partitions: 4,
            points_per_partition: 32,
            dim: 3,
            max_inner_iterations: 3,
            max_outer_iterations: 2,
            ..Default::default()
        };
        let run_once = |templates: bool| {
            let mut setup = AppSetup::new();
            register(&mut setup, &config);
            let cluster_config = if templates {
                ClusterConfig::new(2)
            } else {
                ClusterConfig::new(2).without_templates()
            };
            let cluster = Cluster::start(cluster_config, setup);
            cluster
                .run_driver(|ctx| {
                    if !templates {
                        ctx.enable_templates(false)?;
                    }
                    run(ctx, &config)
                })
                .expect("job completes")
                .output
        };
        let with = run_once(true);
        let without = run_once(false);
        assert_eq!(with.loss_history.len(), without.loss_history.len());
        for (a, b) in with.loss_history.iter().zip(&without.loss_history) {
            assert!(
                (a - b).abs() < 1e-9,
                "templates changed results: {a} vs {b}"
            );
        }
    }

    #[test]
    fn task_count_helper_matches_structure() {
        // 8 partitions: 8 gradient tasks + 3+1 reduction tasks + 1 update.
        assert_eq!(tasks_per_inner_iteration(8), 13);
    }
}
