//! Water-simulation proxy: a particle-levelset fluid step with the control
//! structure of the paper's PhysBAM benchmark.
//!
//! The paper's most demanding application is a PhysBAM particle-levelset
//! water simulation: a triply nested loop (frames → adaptive CFL-bounded
//! sub-steps → iterative pressure projection) with 21 computational stages,
//! more than 40 simulation variables, and tasks as short as 100 µs. PhysBAM
//! itself is half a million lines of C++; this module substitutes a compact
//! 2-D staggered-grid solver that preserves exactly the properties the
//! control-plane evaluation depends on:
//!
//! * the same **triply nested, data-dependent** loop structure — the sub-step
//!   size comes from a reduced CFL bound and the pressure loop terminates on
//!   a reduced residual, so no static dataflow can express it;
//! * **21 named stages** per sub-step spread over four basic blocks;
//! * a large number of per-partition simulation variables (velocity
//!   components, pressure, divergence, level set, particles, ghost rows, …)
//!   plus global reduced values;
//! * short tasks whose cost is dominated by control-plane handling.
//!
//! The physics is intentionally simple (semi-Lagrangian advection, Jacobi
//! pressure projection, level-set reinitialization, particle correction); the
//! point is faithful control flow, not film-quality water.

use nimbus_core::appdata::VecF64;
use nimbus_core::{impl_app_data, TaskParams};
use nimbus_driver::{Dataset, DriverContext, DriverResult, StageSpec};
use nimbus_runtime::AppSetup;

/// One horizontal slab of the simulation grid plus its particle set.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GridSlab {
    /// Grid cells per row.
    pub nx: usize,
    /// Rows in this slab.
    pub ny: usize,
    /// Horizontal velocity.
    pub u: Vec<f64>,
    /// Vertical velocity.
    pub v: Vec<f64>,
    /// Pressure.
    pub pressure: Vec<f64>,
    /// Pressure scratch buffer for Jacobi sweeps.
    pub pressure_next: Vec<f64>,
    /// Velocity divergence.
    pub divergence: Vec<f64>,
    /// Signed-distance level set (negative inside the water).
    pub levelset: Vec<f64>,
    /// Level-set scratch buffer.
    pub levelset_next: Vec<f64>,
    /// Marker particle x positions.
    pub particles_x: Vec<f64>,
    /// Marker particle y positions.
    pub particles_y: Vec<f64>,
    /// Marker particle signs (+1 outside, -1 inside).
    pub particles_sign: Vec<f64>,
    /// Ghost row received from the slab below.
    pub ghost_below: Vec<f64>,
    /// Ghost row received from the slab above.
    pub ghost_above: Vec<f64>,
    /// Global y offset of this slab's first row.
    pub y_offset: usize,
}

impl GridSlab {
    /// Creates a slab initialized with a column of water on the left side.
    pub fn new(nx: usize, ny: usize, y_offset: usize) -> Self {
        let cells = nx * ny;
        let mut levelset = vec![1.0; cells];
        for row in 0..ny {
            for col in 0..nx {
                // Water occupies the left third of the domain.
                let inside = col < nx / 3;
                levelset[row * nx + col] = if inside { -1.0 } else { 1.0 };
            }
        }
        let mut particles_x = Vec::new();
        let mut particles_y = Vec::new();
        let mut particles_sign = Vec::new();
        for row in 0..ny {
            for col in 0..nx {
                particles_x.push(col as f64 + 0.5);
                particles_y.push((y_offset + row) as f64 + 0.5);
                particles_sign.push(if col < nx / 3 { -1.0 } else { 1.0 });
            }
        }
        Self {
            nx,
            ny,
            u: vec![0.0; cells],
            v: vec![0.0; cells],
            pressure: vec![0.0; cells],
            pressure_next: vec![0.0; cells],
            divergence: vec![0.0; cells],
            levelset,
            levelset_next: vec![0.0; cells],
            particles_x,
            particles_y,
            particles_sign,
            ghost_below: vec![0.0; nx],
            ghost_above: vec![0.0; nx],
            y_offset,
        }
    }

    /// Row-major index of a cell.
    pub fn idx(&self, row: usize, col: usize) -> usize {
        row * self.nx + col
    }

    /// Maximum velocity magnitude in the slab (for the CFL bound).
    pub fn max_speed(&self) -> f64 {
        self.u
            .iter()
            .zip(&self.v)
            .map(|(a, b)| (a * a + b * b).sqrt())
            .fold(0.0, f64::max)
    }

    /// Fraction of cells currently inside the water.
    pub fn water_fraction(&self) -> f64 {
        let inside = self.levelset.iter().filter(|p| **p < 0.0).count();
        inside as f64 / self.levelset.len().max(1) as f64
    }
}

impl_app_data!(GridSlab, |g: &GridSlab| {
    (g.u.len() * 7 + g.particles_x.len() * 3 + g.nx * 2) * std::mem::size_of::<f64>()
        + std::mem::size_of::<GridSlab>()
});

/// Function identifiers for the 21 computational stages of one sub-step.
pub mod stages {
    use nimbus_core::ids::FunctionId;

    /// 1. Per-slab CFL bound.
    pub const COMPUTE_CFL: FunctionId = FunctionId(40);
    /// 2–3. Reduce CFL bounds (two levels, min).
    pub const REDUCE_MIN: FunctionId = FunctionId(41);
    /// 4. Apply gravity and other body forces.
    pub const ADD_FORCES: FunctionId = FunctionId(42);
    /// 5. Semi-Lagrangian advection of velocity.
    pub const ADVECT_VELOCITY: FunctionId = FunctionId(43);
    /// 6. Simple viscosity smoothing.
    pub const APPLY_VISCOSITY: FunctionId = FunctionId(44);
    /// 7. Publish boundary rows to neighbours.
    pub const PUBLISH_HALO: FunctionId = FunctionId(45);
    /// 8. Absorb neighbour boundary rows.
    pub const APPLY_HALO: FunctionId = FunctionId(46);
    /// 9. Velocity divergence.
    pub const COMPUTE_DIVERGENCE: FunctionId = FunctionId(47);
    /// 10. One Jacobi sweep of the pressure solve.
    pub const PRESSURE_SWEEP: FunctionId = FunctionId(48);
    /// 11. Per-slab pressure residual.
    pub const COMPUTE_RESIDUAL: FunctionId = FunctionId(49);
    /// 12. Reduce residuals (max).
    pub const REDUCE_MAX: FunctionId = FunctionId(50);
    /// 13. Apply the pressure gradient to the velocity.
    pub const APPLY_PRESSURE: FunctionId = FunctionId(51);
    /// 14. Enforce domain boundary conditions.
    pub const ENFORCE_BOUNDARIES: FunctionId = FunctionId(52);
    /// 15. Advect the level set.
    pub const ADVECT_LEVELSET: FunctionId = FunctionId(53);
    /// 16. Reinitialize the level set toward signed distance.
    pub const REINITIALIZE_LEVELSET: FunctionId = FunctionId(54);
    /// 17. Advect marker particles.
    pub const ADVECT_PARTICLES: FunctionId = FunctionId(55);
    /// 18. Correct the level set with escaped particles.
    pub const CORRECT_LEVELSET: FunctionId = FunctionId(56);
    /// 19. Reseed particles in a band around the interface.
    pub const RESEED_PARTICLES: FunctionId = FunctionId(57);
    /// 20. Extrapolate velocity into the air region.
    pub const EXTRAPOLATE_VELOCITY: FunctionId = FunctionId(58);
    /// 21. Per-slab water volume (frame diagnostic).
    pub const MEASURE_VOLUME: FunctionId = FunctionId(59);
    /// Reduce volumes (sum).
    pub const REDUCE_SUM: FunctionId = FunctionId(60);
}

/// Configuration of a water-simulation run.
#[derive(Clone, Debug)]
pub struct WaterConfig {
    /// Grid cells per row.
    pub nx: usize,
    /// Grid rows per slab.
    pub rows_per_slab: usize,
    /// Number of slabs (partitions).
    pub slabs: u32,
    /// Number of output frames (outer loop).
    pub frames: usize,
    /// Simulated time per frame.
    pub frame_dt: f64,
    /// CFL safety factor.
    pub cfl: f64,
    /// Pressure-solve convergence threshold.
    pub pressure_tolerance: f64,
    /// Maximum pressure iterations per sub-step.
    pub max_pressure_iterations: usize,
    /// Maximum sub-steps per frame (safety cap).
    pub max_substeps_per_frame: usize,
}

impl Default for WaterConfig {
    fn default() -> Self {
        Self {
            nx: 16,
            rows_per_slab: 8,
            slabs: 4,
            frames: 2,
            frame_dt: 0.1,
            cfl: 0.5,
            pressure_tolerance: 1e-3,
            max_pressure_iterations: 8,
            max_substeps_per_frame: 4,
        }
    }
}

/// Dataset handles used by the simulation.
pub struct WaterDatasets {
    /// Grid slabs (one per partition).
    pub grid: Dataset<GridSlab>,
    /// Per-slab CFL bounds.
    pub cfl_local: Dataset<VecF64>,
    /// Intermediate CFL reductions.
    pub cfl_l1: Dataset<VecF64>,
    /// Global time-step bound.
    pub dt_global: Dataset<VecF64>,
    /// Per-slab pressure residuals.
    pub residual_local: Dataset<VecF64>,
    /// Intermediate residual reductions.
    pub residual_l1: Dataset<VecF64>,
    /// Global pressure residual.
    pub residual_global: Dataset<VecF64>,
    /// Halo rows published upward.
    pub halo_up: Dataset<VecF64>,
    /// Halo rows published downward.
    pub halo_down: Dataset<VecF64>,
    /// Per-slab water volume.
    pub volume_local: Dataset<VecF64>,
    /// Intermediate volume reductions.
    pub volume_l1: Dataset<VecF64>,
    /// Global water volume.
    pub volume_global: Dataset<VecF64>,
}

/// Result of a water-simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct WaterResult {
    /// Water volume (cell fraction) after each frame.
    pub volume_per_frame: Vec<f64>,
    /// Total sub-steps executed (middle loop iterations).
    pub substeps: usize,
    /// Total pressure iterations executed (inner loop iterations).
    pub pressure_iterations: usize,
    /// Frames simulated.
    pub frames: usize,
}

fn vec_min(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Registers the simulation's functions and dataset factories.
pub fn register(setup: &mut AppSetup, config: &WaterConfig) {
    let nx = config.nx;
    let rows = config.rows_per_slab;

    setup.register_object(nimbus_core::LogicalObjectId(1), move |lp| {
        GridSlab::new(nx, rows, lp.partition.raw() as usize * rows)
    });
    // Scalar-per-partition datasets (CFL, residual, volume and their trees).
    for id in 2..=7 {
        setup.register_object(nimbus_core::LogicalObjectId(id), |_| VecF64::new(vec![0.0]));
    }
    // Halo rows.
    for id in 8..=9 {
        setup.register_object(nimbus_core::LogicalObjectId(id), move |_| VecF64::zeros(nx));
    }
    for id in 10..=12 {
        setup.register_object(nimbus_core::LogicalObjectId(id), |_| VecF64::new(vec![0.0]));
    }

    use stages::*;

    setup.register_function(COMPUTE_CFL, "compute_cfl", |ctx| {
        let cfl = ctx.params().as_scalar().map_err(|e| e.to_string())?;
        let grid = ctx.read::<GridSlab>(0)?;
        let speed = grid.max_speed().max(1e-3);
        ctx.write::<VecF64>(0)?.values = vec![cfl / speed];
        Ok(())
    });

    setup.register_function(REDUCE_MIN, "reduce_min", |ctx| {
        let mut m = f64::INFINITY;
        for i in 0..ctx.read_count() {
            m = m.min(vec_min(&ctx.read::<VecF64>(i)?.values));
        }
        ctx.write::<VecF64>(0)?.values = vec![m];
        Ok(())
    });

    setup.register_function(REDUCE_MAX, "reduce_max", |ctx| {
        let mut m = f64::NEG_INFINITY;
        for i in 0..ctx.read_count() {
            m = m.max(
                ctx.read::<VecF64>(i)?
                    .values
                    .iter()
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max),
            );
        }
        ctx.write::<VecF64>(0)?.values = vec![m];
        Ok(())
    });

    setup.register_function(REDUCE_SUM, "reduce_sum", |ctx| {
        let mut total = 0.0;
        for i in 0..ctx.read_count() {
            total += ctx.read::<VecF64>(i)?.values.iter().sum::<f64>();
        }
        ctx.write::<VecF64>(0)?.values = vec![total];
        Ok(())
    });

    setup.register_function(ADD_FORCES, "add_forces", |ctx| {
        let dt = ctx.params().as_scalar().map_err(|e| e.to_string())?;
        let grid = ctx.write::<GridSlab>(0)?;
        for i in 0..grid.v.len() {
            if grid.levelset[i] < 0.0 {
                grid.v[i] -= 9.8 * dt;
            }
        }
        Ok(())
    });

    setup.register_function(ADVECT_VELOCITY, "advect_velocity", |ctx| {
        let dt = ctx.params().as_scalar().map_err(|e| e.to_string())?;
        let grid = ctx.write::<GridSlab>(0)?;
        let (nx, ny) = (grid.nx, grid.ny);
        let u0 = grid.u.clone();
        let v0 = grid.v.clone();
        for row in 0..ny {
            for col in 0..nx {
                let i = row * nx + col;
                let src_col = ((col as f64 - u0[i] * dt)
                    .round()
                    .clamp(0.0, nx as f64 - 1.0)) as usize;
                let src_row = ((row as f64 - v0[i] * dt)
                    .round()
                    .clamp(0.0, ny as f64 - 1.0)) as usize;
                let s = src_row * nx + src_col;
                grid.u[i] = u0[s];
                grid.v[i] = v0[s];
            }
        }
        Ok(())
    });

    setup.register_function(APPLY_VISCOSITY, "apply_viscosity", |ctx| {
        let grid = ctx.write::<GridSlab>(0)?;
        let nx = grid.nx;
        let u0 = grid.u.clone();
        let v0 = grid.v.clone();
        for i in 0..u0.len() {
            let left = if i % nx > 0 { u0[i - 1] } else { u0[i] };
            let right = if i % nx < nx - 1 { u0[i + 1] } else { u0[i] };
            grid.u[i] = 0.9 * u0[i] + 0.05 * (left + right);
            let left = if i % nx > 0 { v0[i - 1] } else { v0[i] };
            let right = if i % nx < nx - 1 { v0[i + 1] } else { v0[i] };
            grid.v[i] = 0.9 * v0[i] + 0.05 * (left + right);
        }
        Ok(())
    });

    setup.register_function(PUBLISH_HALO, "publish_halo", |ctx| {
        let grid = ctx.read::<GridSlab>(0)?;
        let nx = grid.nx;
        let top_row: Vec<f64> = grid.levelset[(grid.ny - 1) * nx..].to_vec();
        let bottom_row: Vec<f64> = grid.levelset[..nx].to_vec();
        ctx.write::<VecF64>(0)?.values = top_row;
        ctx.write::<VecF64>(1)?.values = bottom_row;
        Ok(())
    });

    setup.register_function(APPLY_HALO, "apply_halo", |ctx| {
        // Reads: [grid is in the write set]; read 0/1 are the neighbours'
        // published rows (or this slab's own rows at the domain boundary).
        let below = ctx.read::<VecF64>(0)?.values.clone();
        let above = ctx.read::<VecF64>(1)?.values.clone();
        let grid = ctx.write::<GridSlab>(0)?;
        grid.ghost_below = below;
        grid.ghost_above = above;
        Ok(())
    });

    setup.register_function(COMPUTE_DIVERGENCE, "compute_divergence", |ctx| {
        let grid = ctx.write::<GridSlab>(0)?;
        let nx = grid.nx;
        for row in 0..grid.ny {
            for col in 0..nx {
                let i = row * nx + col;
                let right = if col < nx - 1 { grid.u[i + 1] } else { 0.0 };
                let up = if row < grid.ny - 1 {
                    grid.v[i + nx]
                } else {
                    0.0
                };
                grid.divergence[i] = (right - grid.u[i]) + (up - grid.v[i]);
            }
        }
        Ok(())
    });

    setup.register_function(PRESSURE_SWEEP, "pressure_sweep", |ctx| {
        let grid = ctx.write::<GridSlab>(0)?;
        let nx = grid.nx;
        let ny = grid.ny;
        for row in 0..ny {
            for col in 0..nx {
                let i = row * nx + col;
                let left = if col > 0 { grid.pressure[i - 1] } else { 0.0 };
                let right = if col < nx - 1 {
                    grid.pressure[i + 1]
                } else {
                    0.0
                };
                let down = if row > 0 {
                    grid.pressure[i - nx]
                } else {
                    grid.ghost_below.get(col).copied().unwrap_or(0.0)
                };
                let up = if row < ny - 1 {
                    grid.pressure[i + nx]
                } else {
                    grid.ghost_above.get(col).copied().unwrap_or(0.0)
                };
                grid.pressure_next[i] = (left + right + down + up - grid.divergence[i]) / 4.0;
            }
        }
        std::mem::swap(&mut grid.pressure, &mut grid.pressure_next);
        Ok(())
    });

    setup.register_function(COMPUTE_RESIDUAL, "compute_residual", |ctx| {
        let grid = ctx.read::<GridSlab>(0)?;
        let mut residual: f64 = 0.0;
        for i in 0..grid.pressure.len() {
            residual = residual.max((grid.pressure[i] - grid.pressure_next[i]).abs());
        }
        ctx.write::<VecF64>(0)?.values = vec![residual];
        Ok(())
    });

    setup.register_function(APPLY_PRESSURE, "apply_pressure", |ctx| {
        let grid = ctx.write::<GridSlab>(0)?;
        let nx = grid.nx;
        for row in 0..grid.ny {
            for col in 0..nx {
                let i = row * nx + col;
                let left = if col > 0 { grid.pressure[i - 1] } else { 0.0 };
                let down = if row > 0 { grid.pressure[i - nx] } else { 0.0 };
                grid.u[i] -= grid.pressure[i] - left;
                grid.v[i] -= grid.pressure[i] - down;
            }
        }
        Ok(())
    });

    setup.register_function(ENFORCE_BOUNDARIES, "enforce_boundaries", |ctx| {
        let grid = ctx.write::<GridSlab>(0)?;
        let nx = grid.nx;
        for row in 0..grid.ny {
            grid.u[row * nx] = 0.0;
            grid.u[row * nx + nx - 1] = 0.0;
        }
        for col in 0..nx {
            grid.v[col] = grid.v[col].max(0.0);
        }
        Ok(())
    });

    setup.register_function(ADVECT_LEVELSET, "advect_levelset", |ctx| {
        let dt = ctx.params().as_scalar().map_err(|e| e.to_string())?;
        let grid = ctx.write::<GridSlab>(0)?;
        let (nx, ny) = (grid.nx, grid.ny);
        let phi0 = grid.levelset.clone();
        for row in 0..ny {
            for col in 0..nx {
                let i = row * nx + col;
                let src_col = ((col as f64 - grid.u[i] * dt)
                    .round()
                    .clamp(0.0, nx as f64 - 1.0)) as usize;
                let src_row = ((row as f64 - grid.v[i] * dt)
                    .round()
                    .clamp(0.0, ny as f64 - 1.0)) as usize;
                grid.levelset_next[i] = phi0[src_row * nx + src_col];
            }
        }
        std::mem::swap(&mut grid.levelset, &mut grid.levelset_next);
        Ok(())
    });

    setup.register_function(REINITIALIZE_LEVELSET, "reinitialize_levelset", |ctx| {
        let grid = ctx.write::<GridSlab>(0)?;
        for phi in grid.levelset.iter_mut() {
            *phi = phi.clamp(-3.0, 3.0) * 0.99;
        }
        Ok(())
    });

    setup.register_function(ADVECT_PARTICLES, "advect_particles", |ctx| {
        let dt = ctx.params().as_scalar().map_err(|e| e.to_string())?;
        let grid = ctx.write::<GridSlab>(0)?;
        let nx = grid.nx;
        let ny = grid.ny;
        for p in 0..grid.particles_x.len() {
            let col = (grid.particles_x[p].floor().clamp(0.0, nx as f64 - 1.0)) as usize;
            let row = ((grid.particles_y[p] - grid.y_offset as f64)
                .floor()
                .clamp(0.0, ny as f64 - 1.0)) as usize;
            let i = row * nx + col;
            grid.particles_x[p] =
                (grid.particles_x[p] + grid.u[i] * dt).clamp(0.0, nx as f64 - 1e-3);
            grid.particles_y[p] += grid.v[i] * dt;
        }
        Ok(())
    });

    setup.register_function(CORRECT_LEVELSET, "correct_levelset", |ctx| {
        let grid = ctx.write::<GridSlab>(0)?;
        let nx = grid.nx;
        let ny = grid.ny;
        for p in 0..grid.particles_x.len() {
            let col = (grid.particles_x[p].floor().clamp(0.0, nx as f64 - 1.0)) as usize;
            let row = ((grid.particles_y[p] - grid.y_offset as f64)
                .floor()
                .clamp(0.0, ny as f64 - 1.0)) as usize;
            let i = row * nx + col;
            // An inside particle sitting in an "outside" cell (or vice
            // versa) pulls the level set toward its sign.
            if grid.particles_sign[p] * grid.levelset[i] > 0.25 {
                grid.levelset[i] -= 0.1 * grid.particles_sign[p];
            }
        }
        Ok(())
    });

    setup.register_function(RESEED_PARTICLES, "reseed_particles", |ctx| {
        let grid = ctx.write::<GridSlab>(0)?;
        let nx = grid.nx;
        let ny = grid.ny;
        let y_offset = grid.y_offset;
        let mut idx = 0usize;
        for row in 0..ny {
            for col in 0..nx {
                let i = row * nx + col;
                if grid.levelset[i].abs() < 1.5 && idx < grid.particles_x.len() {
                    grid.particles_x[idx] = col as f64 + 0.5;
                    grid.particles_y[idx] = (y_offset + row) as f64 + 0.5;
                    grid.particles_sign[idx] = grid.levelset[i].signum();
                    idx += 1;
                }
            }
        }
        Ok(())
    });

    setup.register_function(EXTRAPOLATE_VELOCITY, "extrapolate_velocity", |ctx| {
        let grid = ctx.write::<GridSlab>(0)?;
        for i in 0..grid.u.len() {
            if grid.levelset[i] >= 0.0 {
                grid.u[i] *= 0.5;
                grid.v[i] *= 0.5;
            }
        }
        Ok(())
    });

    setup.register_function(MEASURE_VOLUME, "measure_volume", |ctx| {
        let grid = ctx.read::<GridSlab>(0)?;
        ctx.write::<VecF64>(0)?.values = vec![grid.water_fraction()];
        Ok(())
    });
}

/// Defines the simulation's datasets (must be the first datasets defined on
/// the context).
pub fn define_datasets(
    ctx: &mut DriverContext,
    config: &WaterConfig,
) -> DriverResult<WaterDatasets> {
    let slabs = config.slabs;
    let groups = crate::reduction::intermediate_partitions(slabs);
    Ok(WaterDatasets {
        grid: ctx.define_dataset("grid", slabs)?,
        cfl_local: ctx.define_dataset("cfl_local", slabs)?,
        cfl_l1: ctx.define_dataset("cfl_l1", groups)?,
        dt_global: ctx.define_dataset("dt_global", 1)?,
        residual_local: ctx.define_dataset("residual_local", slabs)?,
        residual_l1: ctx.define_dataset("residual_l1", groups)?,
        residual_global: ctx.define_dataset("residual_global", 1)?,
        halo_up: ctx.define_dataset("halo_up", slabs)?,
        halo_down: ctx.define_dataset("halo_down", slabs)?,
        volume_local: ctx.define_dataset("volume_local", slabs)?,
        volume_l1: ctx.define_dataset("volume_l1", groups)?,
        volume_global: ctx.define_dataset("volume_global", 1)?,
    })
}

/// Runs the triply nested simulation loop.
pub fn run(ctx: &mut DriverContext, config: &WaterConfig) -> DriverResult<WaterResult> {
    use stages::*;
    let data = define_datasets(ctx, config)?;
    let slabs = config.slabs;
    let mut volume_per_frame = Vec::new();
    let mut substeps = 0usize;
    let mut pressure_iterations = 0usize;

    for _frame in 0..config.frames {
        let mut time_left = config.frame_dt;
        let mut frame_substeps = 0usize;
        // Middle loop: adaptive sub-steps until the frame time is consumed.
        while time_left > 1e-9 && frame_substeps < config.max_substeps_per_frame {
            frame_substeps += 1;
            substeps += 1;

            // Block 1: CFL bound (stages 1-3).
            let cfl = config.cfl;
            ctx.block("water_cfl", |ctx| {
                ctx.submit_stage(
                    StageSpec::new("compute_cfl", COMPUTE_CFL)
                        .read(&data.grid)
                        .write(&data.cfl_local)
                        .params(TaskParams::from_scalar(cfl)),
                )?;
                crate::reduction::submit_two_level_reduce(
                    ctx,
                    "cfl_reduce",
                    REDUCE_MIN,
                    &data.cfl_local,
                    &data.cfl_l1,
                    &data.dt_global,
                    TaskParams::empty(),
                )?;
                Ok(())
            })?;
            let dt_bound = ctx.fetch(&data.dt_global, 0)?;
            let dt = dt_bound.min(time_left).max(1e-4);

            // Block 2: forces, advection, halo exchange, divergence
            // (stages 4-9).
            ctx.block("water_advance", |ctx| {
                ctx.submit_stage(
                    StageSpec::new("add_forces", ADD_FORCES)
                        .write(&data.grid)
                        .params(TaskParams::from_scalar(dt)),
                )?;
                ctx.submit_stage(
                    StageSpec::new("advect_velocity", ADVECT_VELOCITY)
                        .write(&data.grid)
                        .params(TaskParams::from_scalar(dt)),
                )?;
                ctx.submit_stage(
                    StageSpec::new("apply_viscosity", APPLY_VISCOSITY).write(&data.grid),
                )?;
                ctx.submit_stage(
                    StageSpec::new("publish_halo", PUBLISH_HALO)
                        .read(&data.grid)
                        .write(&data.halo_up)
                        .write(&data.halo_down),
                )?;
                // Each slab absorbs its neighbours' published rows; domain
                // boundary slabs reuse their own rows.
                for slab in 0..slabs {
                    let below = if slab == 0 { slab } else { slab - 1 };
                    let above = if slab + 1 == slabs { slab } else { slab + 1 };
                    ctx.submit_stage(
                        StageSpec::new(format!("apply_halo_{slab}"), APPLY_HALO)
                            .read_partition(&data.halo_up, below)
                            .read_partition(&data.halo_down, above)
                            .write_partition(&data.grid, slab)
                            .partitions(1),
                    )?;
                }
                ctx.submit_stage(
                    StageSpec::new("compute_divergence", COMPUTE_DIVERGENCE).write(&data.grid),
                )?;
                Ok(())
            })?;

            // Inner loop: Jacobi pressure projection until the residual
            // converges (stages 10-12).
            for _ in 0..config.max_pressure_iterations {
                pressure_iterations += 1;
                ctx.block("water_pressure", |ctx| {
                    ctx.submit_stage(
                        StageSpec::new("pressure_sweep", PRESSURE_SWEEP).write(&data.grid),
                    )?;
                    ctx.submit_stage(
                        StageSpec::new("compute_residual", COMPUTE_RESIDUAL)
                            .read(&data.grid)
                            .write(&data.residual_local),
                    )?;
                    crate::reduction::submit_two_level_reduce(
                        ctx,
                        "residual_reduce",
                        REDUCE_MAX,
                        &data.residual_local,
                        &data.residual_l1,
                        &data.residual_global,
                        TaskParams::empty(),
                    )?;
                    Ok(())
                })?;
                let residual = ctx.fetch(&data.residual_global, 0)?;
                if residual < config.pressure_tolerance {
                    break;
                }
            }

            // Block 4: pressure application, level set, particles, volume
            // (stages 13-21).
            ctx.block("water_finish", |ctx| {
                ctx.submit_stage(
                    StageSpec::new("apply_pressure", APPLY_PRESSURE).write(&data.grid),
                )?;
                ctx.submit_stage(
                    StageSpec::new("enforce_boundaries", ENFORCE_BOUNDARIES).write(&data.grid),
                )?;
                ctx.submit_stage(
                    StageSpec::new("advect_levelset", ADVECT_LEVELSET)
                        .write(&data.grid)
                        .params(TaskParams::from_scalar(dt)),
                )?;
                ctx.submit_stage(
                    StageSpec::new("reinitialize_levelset", REINITIALIZE_LEVELSET)
                        .write(&data.grid),
                )?;
                ctx.submit_stage(
                    StageSpec::new("advect_particles", ADVECT_PARTICLES)
                        .write(&data.grid)
                        .params(TaskParams::from_scalar(dt)),
                )?;
                ctx.submit_stage(
                    StageSpec::new("correct_levelset", CORRECT_LEVELSET).write(&data.grid),
                )?;
                ctx.submit_stage(
                    StageSpec::new("reseed_particles", RESEED_PARTICLES).write(&data.grid),
                )?;
                ctx.submit_stage(
                    StageSpec::new("extrapolate_velocity", EXTRAPOLATE_VELOCITY).write(&data.grid),
                )?;
                ctx.submit_stage(
                    StageSpec::new("measure_volume", MEASURE_VOLUME)
                        .read(&data.grid)
                        .write(&data.volume_local),
                )?;
                crate::reduction::submit_two_level_reduce(
                    ctx,
                    "volume_reduce",
                    REDUCE_SUM,
                    &data.volume_local,
                    &data.volume_l1,
                    &data.volume_global,
                    TaskParams::empty(),
                )?;
                Ok(())
            })?;

            time_left -= dt;
        }
        let volume = ctx.fetch(&data.volume_global, 0)? / slabs as f64;
        volume_per_frame.push(volume);
    }

    Ok(WaterResult {
        volume_per_frame,
        substeps,
        pressure_iterations,
        frames: config.frames,
    })
}

/// Tasks submitted per full sub-step, assuming `p` pressure iterations.
pub fn tasks_per_substep(config: &WaterConfig, pressure_iterations: usize) -> u64 {
    let slabs = config.slabs as u64;
    let reduce = crate::reduction::reduction_task_count(config.slabs) as u64;
    let cfl = slabs + reduce;
    let advance = 4 * slabs + slabs; // forces, advect, viscosity, publish + per-slab halo
    let divergence = slabs;
    let pressure = pressure_iterations as u64 * (2 * slabs + reduce);
    let finish = 9 * slabs + reduce;
    cfl + advance + divergence + pressure + finish
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_runtime::{Cluster, ClusterConfig};

    #[test]
    fn slab_initialization_and_helpers() {
        let slab = GridSlab::new(9, 4, 8);
        assert_eq!(slab.u.len(), 36);
        assert!(slab.water_fraction() > 0.2 && slab.water_fraction() < 0.5);
        assert_eq!(slab.max_speed(), 0.0);
        assert_eq!(slab.idx(1, 2), 11);
    }

    #[test]
    fn water_simulation_runs_with_nested_data_dependent_loops() {
        let config = WaterConfig {
            nx: 8,
            rows_per_slab: 4,
            slabs: 2,
            frames: 2,
            max_pressure_iterations: 4,
            max_substeps_per_frame: 3,
            ..Default::default()
        };
        let mut setup = AppSetup::new();
        register(&mut setup, &config);
        let cluster = Cluster::start(ClusterConfig::new(2), setup);
        let report = cluster
            .run_driver(|ctx| run(ctx, &config))
            .expect("simulation completes");
        let result = report.output;
        assert_eq!(result.frames, 2);
        assert!(result.substeps >= 2, "at least one sub-step per frame");
        assert!(result.pressure_iterations >= result.substeps);
        for volume in &result.volume_per_frame {
            assert!(
                *volume > 0.05 && *volume < 0.95,
                "water volume {volume} should stay inside the domain"
            );
        }
        // All four blocks were recorded as templates and re-used.
        assert_eq!(report.controller.controller_templates_installed, 4);
        assert!(report.controller.controller_template_instantiations >= 1);
    }
}
