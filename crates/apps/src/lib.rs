//! # nimbus-apps
//!
//! The workloads used by the execution-templates evaluation: logistic
//! regression and k-means clustering (the paper's machine-learning
//! benchmarks, Figures 7–10) and a water-simulation proxy with the
//! triply nested, data-dependent control flow of the paper's PhysBAM
//! benchmark (Figure 11), plus synthetic data generators and the
//! application-level two-level reduction trees they share.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod data;
pub mod kmeans;
pub mod logistic_regression;
pub mod reduction;
pub mod water;

pub use data::{ClusterAccumulator, PointsPartition};
pub use kmeans::{KMeansConfig, KMeansResult};
pub use logistic_regression::{LogisticRegressionConfig, LrResult};
pub use water::{GridSlab, WaterConfig, WaterResult};
