//! K-means clustering: the paper's second machine-learning benchmark.
//!
//! Each iteration assigns points to the nearest centroid (one task per
//! partition), reduces the per-cluster sums and counts through a two-level
//! tree, and recomputes the centroids. The loop terminates when the
//! clustering objective stops improving — a data-dependent branch exercised
//! through a fetched scalar, just like logistic regression.

use nimbus_core::appdata::{Scalar, VecF64};
use nimbus_core::ids::FunctionId;
use nimbus_core::TaskParams;
use nimbus_driver::{Dataset, DriverContext, DriverResult, StageSpec};
use nimbus_runtime::AppSetup;

use crate::data::{generate_clustered_partition, ClusterAccumulator, PointsPartition};
use crate::reduction::{intermediate_partitions, submit_two_level_reduce};

/// Assigns a partition's points to their nearest centroid.
pub const KM_ASSIGN: FunctionId = FunctionId(20);
/// Merges cluster accumulators (both reduction levels).
pub const KM_MERGE: FunctionId = FunctionId(21);
/// Recomputes the centroids from the reduced accumulator.
pub const KM_UPDATE: FunctionId = FunctionId(22);

/// Configuration of a k-means job.
#[derive(Clone, Debug)]
pub struct KMeansConfig {
    /// Number of data partitions.
    pub partitions: u32,
    /// Points per partition.
    pub points_per_partition: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Number of clusters.
    pub k: usize,
    /// Stop when the objective improves by less than this fraction.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Seed for the synthetic dataset.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            partitions: 8,
            points_per_partition: 256,
            dim: 4,
            k: 4,
            tolerance: 1e-4,
            max_iterations: 10,
            seed: 7,
        }
    }
}

/// Typed dataset handles used by the job.
pub struct KMeansDatasets {
    /// Input points.
    pub points: Dataset<PointsPartition>,
    /// Per-partition accumulators.
    pub partials: Dataset<ClusterAccumulator>,
    /// First-level reduced accumulators.
    pub partials_l1: Dataset<ClusterAccumulator>,
    /// Globally reduced accumulator.
    pub partials_global: Dataset<ClusterAccumulator>,
    /// Current centroids (flattened `k × dim`).
    pub centroids: Dataset<VecF64>,
    /// Clustering objective after the last update.
    pub objective: Dataset<Scalar>,
}

/// Result of a k-means run.
#[derive(Clone, Debug, PartialEq)]
pub struct KMeansResult {
    /// Final objective (sum of squared distances).
    pub final_objective: f64,
    /// Objective after every iteration.
    pub objective_history: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
}

/// Registers the job's task functions and dataset factories.
pub fn register(setup: &mut AppSetup, config: &KMeansConfig) {
    let dim = config.dim;
    let k = config.k;
    let seed = config.seed;
    let points = config.points_per_partition;

    // Dataset ids follow the definition order in `define_datasets`.
    setup.register_object(nimbus_core::LogicalObjectId(1), move |lp| {
        generate_clustered_partition(seed, lp.partition.raw(), points, dim, k)
    });
    for id in 2..=4 {
        setup.register_object(nimbus_core::LogicalObjectId(id), move |_| {
            ClusterAccumulator::zeros(k, dim)
        });
    }
    setup.register_object(nimbus_core::LogicalObjectId(5), move |_| {
        // Initial centroids: spread deterministically so they are distinct.
        let mut values = vec![0.0; k * dim];
        for c in 0..k {
            for d in 0..dim {
                values[c * dim + d] = (c as f64 + 1.0) * if d % 2 == 0 { 2.0 } else { -2.0 };
            }
        }
        VecF64::new(values)
    });
    setup.register_object(nimbus_core::LogicalObjectId(6), |_| Scalar::new(f64::MAX));

    setup.register_function(KM_ASSIGN, "km_assign", |ctx| {
        let params = ctx.params().as_u64s().map_err(|e| e.to_string())?;
        let (k, dim) = (params[0] as usize, params[1] as usize);
        let data = ctx.read::<PointsPartition>(0)?;
        let centroids = ctx.read::<VecF64>(1)?.values.clone();
        let out = ctx.write::<ClusterAccumulator>(0)?;
        *out = ClusterAccumulator::zeros(k, dim);
        for i in 0..data.len() {
            let row = data.row(i);
            let mut best = 0usize;
            let mut best_d2 = f64::INFINITY;
            for c in 0..k {
                let d2: f64 = row
                    .iter()
                    .zip(&centroids[c * dim..(c + 1) * dim])
                    .map(|(a, b)| (a - b).powi(2))
                    .sum();
                if d2 < best_d2 {
                    best_d2 = d2;
                    best = c;
                }
            }
            for (d, x) in row.iter().enumerate().take(dim) {
                out.sums[best * dim + d] += x;
            }
            out.counts[best] += 1.0;
            out.objective += best_d2;
        }
        Ok(())
    });

    setup.register_function(KM_MERGE, "km_merge", |ctx| {
        let mut merged = ClusterAccumulator::default();
        for i in 0..ctx.read_count() {
            merged.merge(ctx.read::<ClusterAccumulator>(i)?);
        }
        *ctx.write::<ClusterAccumulator>(0)? = merged;
        Ok(())
    });

    setup.register_function(KM_UPDATE, "km_update", |ctx| {
        let acc = ctx.read::<ClusterAccumulator>(0)?.clone();
        {
            let centroids = ctx.write::<VecF64>(0)?;
            if centroids.values.len() != acc.sums.len() {
                centroids.values = vec![0.0; acc.sums.len()];
            }
            for c in 0..acc.k {
                if acc.counts[c] > 0.0 {
                    for d in 0..acc.dim {
                        centroids.values[c * acc.dim + d] =
                            acc.sums[c * acc.dim + d] / acc.counts[c];
                    }
                }
            }
        }
        ctx.write::<Scalar>(1)?.value = acc.objective;
        Ok(())
    });
}

/// Defines the job's datasets (must be the first datasets of the context).
pub fn define_datasets(
    ctx: &mut DriverContext,
    config: &KMeansConfig,
) -> DriverResult<KMeansDatasets> {
    let groups = intermediate_partitions(config.partitions);
    Ok(KMeansDatasets {
        points: ctx.define_dataset("points", config.partitions)?,
        partials: ctx.define_dataset("partials", config.partitions)?,
        partials_l1: ctx.define_dataset("partials_l1", groups)?,
        partials_global: ctx.define_dataset("partials_global", 1)?,
        centroids: ctx.define_dataset("centroids", 1)?,
        objective: ctx.define_dataset("objective", 1)?,
    })
}

/// Submits one clustering iteration as the "kmeans_iter" basic block.
pub fn submit_iteration(
    ctx: &mut DriverContext,
    data: &KMeansDatasets,
    config: &KMeansConfig,
) -> DriverResult<()> {
    let shape = TaskParams::from_u64s(&[config.k as u64, config.dim as u64]);
    ctx.block("kmeans_iter", |ctx| {
        ctx.submit_stage(
            StageSpec::new("assign", KM_ASSIGN)
                .read(&data.points)
                .read_broadcast(&data.centroids)
                .write(&data.partials)
                .params(shape.clone()),
        )?;
        submit_two_level_reduce(
            ctx,
            "accumulate",
            KM_MERGE,
            &data.partials,
            &data.partials_l1,
            &data.partials_global,
            TaskParams::empty(),
        )?;
        ctx.submit_stage(
            StageSpec::new("update", KM_UPDATE)
                .read_broadcast(&data.partials_global)
                .write_partition(&data.centroids, 0)
                .write_partition(&data.objective, 0)
                .partitions(1),
        )?;
        Ok(())
    })
}

/// Runs the clustering loop until the objective stops improving.
pub fn run(ctx: &mut DriverContext, config: &KMeansConfig) -> DriverResult<KMeansResult> {
    let data = define_datasets(ctx, config)?;
    let mut history = Vec::new();
    let mut previous = f64::MAX;
    let mut iterations = 0usize;
    for _ in 0..config.max_iterations {
        submit_iteration(ctx, &data, config)?;
        iterations += 1;
        let objective = ctx.fetch(&data.objective, 0)?;
        history.push(objective);
        let improvement = (previous - objective) / previous.max(1e-12);
        previous = objective;
        if improvement.abs() < config.tolerance {
            break;
        }
    }
    Ok(KMeansResult {
        final_objective: previous,
        objective_history: history,
        iterations,
    })
}

/// Tasks submitted per iteration (assignment + reduction tree + update).
pub fn tasks_per_iteration(partitions: u32) -> u64 {
    partitions as u64 + crate::reduction::reduction_task_count(partitions) as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_runtime::{Cluster, ClusterConfig};

    #[test]
    fn kmeans_objective_decreases_and_converges() {
        let config = KMeansConfig {
            partitions: 4,
            points_per_partition: 128,
            dim: 2,
            k: 3,
            max_iterations: 8,
            ..Default::default()
        };
        let mut setup = AppSetup::new();
        register(&mut setup, &config);
        let cluster = Cluster::start(ClusterConfig::new(2), setup);
        let report = cluster
            .run_driver(|ctx| run(ctx, &config))
            .expect("job completes");
        let result = report.output;
        assert!(result.iterations >= 2);
        assert!(result.final_objective.is_finite());
        // Objective is non-increasing across iterations.
        for w in result.objective_history.windows(2) {
            assert!(w[1] <= w[0] * (1.0 + 1e-9), "objective increased: {w:?}");
        }
        // Templates were recorded and re-used across iterations.
        assert_eq!(report.controller.controller_templates_installed, 1);
        assert!(report.controller.controller_template_instantiations >= 1);
    }

    #[test]
    fn task_count_helper() {
        assert_eq!(tasks_per_iteration(4), 4 + 3 + 1);
    }
}
