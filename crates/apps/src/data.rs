//! Application partition types and synthetic data generators.
//!
//! The paper's machine-learning benchmarks run over a 100 GB dataset split
//! into thousands of partitions; what matters for the control-plane
//! evaluation is the *shape* of the computation (task counts, dependencies,
//! reductions), not the bytes themselves. These generators produce synthetic
//! datasets whose per-task compute cost can be dialed to match the paper's
//! task durations.

use nimbus_core::impl_app_data;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A partition of labeled points for logistic regression and k-means.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PointsPartition {
    /// Feature dimensionality.
    pub dim: usize,
    /// Row-major features: `points × dim`.
    pub xs: Vec<f64>,
    /// Labels in `{-1.0, +1.0}` (ignored by k-means).
    pub ys: Vec<f64>,
}

impl PointsPartition {
    /// Number of points in the partition.
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// Returns true if the partition has no points.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// The `i`-th feature row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.xs[i * self.dim..(i + 1) * self.dim]
    }
}

impl_app_data!(PointsPartition, |p: &PointsPartition| {
    (p.xs.len() + p.ys.len()) * std::mem::size_of::<f64>() + std::mem::size_of::<PointsPartition>()
});

/// Partial sums produced by one k-means assignment task: per-cluster feature
/// sums and counts, plus the partition's contribution to the objective.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClusterAccumulator {
    /// Number of clusters.
    pub k: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Per-cluster feature sums (`k × dim`, row-major).
    pub sums: Vec<f64>,
    /// Per-cluster point counts.
    pub counts: Vec<f64>,
    /// Sum of squared distances to assigned centroids.
    pub objective: f64,
}

impl ClusterAccumulator {
    /// A zeroed accumulator for `k` clusters of dimension `dim`.
    pub fn zeros(k: usize, dim: usize) -> Self {
        Self {
            k,
            dim,
            sums: vec![0.0; k * dim],
            counts: vec![0.0; k],
            objective: 0.0,
        }
    }

    /// Adds another accumulator into this one.
    pub fn merge(&mut self, other: &ClusterAccumulator) {
        if self.sums.len() != other.sums.len() {
            *self = ClusterAccumulator::zeros(other.k, other.dim);
        }
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.objective += other.objective;
    }
}

impl_app_data!(ClusterAccumulator, |c: &ClusterAccumulator| {
    (c.sums.len() + c.counts.len() + 1) * std::mem::size_of::<f64>()
        + std::mem::size_of::<ClusterAccumulator>()
});

/// Generates a linearly separable (with noise) classification dataset
/// partition, deterministic in `(seed, partition)`.
pub fn generate_classification_partition(
    seed: u64,
    partition: u32,
    points: usize,
    dim: usize,
) -> PointsPartition {
    let mut rng = StdRng::seed_from_u64(seed ^ ((partition as u64) << 32));
    // A fixed "true" separating hyperplane derived from the seed.
    let mut truth_rng = StdRng::seed_from_u64(seed);
    let truth: Vec<f64> = (0..dim).map(|_| truth_rng.gen_range(-1.0..1.0)).collect();
    let mut xs = Vec::with_capacity(points * dim);
    let mut ys = Vec::with_capacity(points);
    for _ in 0..points {
        let row: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let margin: f64 = row.iter().zip(&truth).map(|(a, b)| a * b).sum();
        let noisy = margin + rng.gen_range(-0.1..0.1);
        ys.push(if noisy >= 0.0 { 1.0 } else { -1.0 });
        xs.extend(row);
    }
    PointsPartition { dim, xs, ys }
}

/// Generates a clustered dataset partition around `k` well-separated
/// centers, deterministic in `(seed, partition)`.
pub fn generate_clustered_partition(
    seed: u64,
    partition: u32,
    points: usize,
    dim: usize,
    k: usize,
) -> PointsPartition {
    let mut rng = StdRng::seed_from_u64(seed ^ ((partition as u64) << 32) ^ 0x5eed);
    let mut center_rng = StdRng::seed_from_u64(seed ^ 0xc1u64);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| {
            (0..dim)
                .map(|_| center_rng.gen_range(-10.0..10.0))
                .collect()
        })
        .collect();
    let mut xs = Vec::with_capacity(points * dim);
    let ys = vec![0.0; points];
    for _ in 0..points {
        let c = &centers[rng.gen_range(0..k)];
        for coord in c.iter().take(dim) {
            xs.push(coord + rng.gen_range(-0.5..0.5));
        }
    }
    PointsPartition { dim, xs, ys }
}

/// The true cluster centers used by [`generate_clustered_partition`].
pub fn true_centers(seed: u64, k: usize, dim: usize) -> Vec<Vec<f64>> {
    let mut center_rng = StdRng::seed_from_u64(seed ^ 0xc1u64);
    (0..k)
        .map(|_| {
            (0..dim)
                .map(|_| center_rng.gen_range(-10.0..10.0))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_partition_is_deterministic() {
        let a = generate_classification_partition(7, 3, 100, 8);
        let b = generate_classification_partition(7, 3, 100, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert_eq!(a.row(5).len(), 8);
        assert!(a.ys.iter().all(|y| *y == 1.0 || *y == -1.0));
        let c = generate_classification_partition(7, 4, 100, 8);
        assert_ne!(a, c, "different partitions get different data");
    }

    #[test]
    fn labels_correlate_with_truth() {
        let p = generate_classification_partition(11, 0, 500, 4);
        let mut truth_rng = StdRng::seed_from_u64(11);
        let truth: Vec<f64> = (0..4).map(|_| truth_rng.gen_range(-1.0..1.0)).collect();
        let agree = (0..p.len())
            .filter(|i| {
                let margin: f64 = p.row(*i).iter().zip(&truth).map(|(a, b)| a * b).sum();
                (margin >= 0.0) == (p.ys[*i] > 0.0)
            })
            .count();
        assert!(agree as f64 / p.len() as f64 > 0.9);
    }

    #[test]
    fn clustered_partition_points_near_centers() {
        let p = generate_clustered_partition(3, 0, 200, 2, 4);
        let centers = true_centers(3, 4, 2);
        for i in 0..p.len() {
            let row = p.row(i);
            let min_d2: f64 = centers
                .iter()
                .map(|c| row.iter().zip(c).map(|(a, b)| (a - b).powi(2)).sum::<f64>())
                .fold(f64::INFINITY, f64::min);
            assert!(min_d2 < 1.0, "point {i} is too far from every center");
        }
    }

    #[test]
    fn accumulator_merge() {
        let mut a = ClusterAccumulator::zeros(2, 2);
        let mut b = ClusterAccumulator::zeros(2, 2);
        b.sums = vec![1.0, 2.0, 3.0, 4.0];
        b.counts = vec![1.0, 2.0];
        b.objective = 5.0;
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.sums, vec![2.0, 4.0, 6.0, 8.0]);
        assert_eq!(a.counts, vec![2.0, 4.0]);
        assert_eq!(a.objective, 10.0);
        // Merging into a mismatched accumulator resizes it first.
        let mut c = ClusterAccumulator::default();
        c.merge(&b);
        assert_eq!(c.sums, b.sums);
    }
}
