//! The seeded exploration sweep: for every scenario, generate fault plans
//! from a range of seeds, run each under full schedule chaos, and hold the
//! cluster to its contract — exact closed-form totals for every surviving
//! job, and bit-identical traces on replay.
//!
//! `NIMBUS_DST_SWEEP` sets the seeds-per-scenario budget (default 60, so a
//! plain `cargo test` stays quick; CI sets it to at least 334 for a
//! 1,000+ seed sweep). A failing seed is shrunk before reporting, and both
//! the original and minimized traces are written under
//! `target/dst-failures/` — the artifact CI uploads.

use std::fs;
use std::path::PathBuf;

use nimbus_dst::{run_plan, shrink, Scenario};

/// Seeds per scenario: `NIMBUS_DST_SWEEP` or the local default.
fn seeds_per_scenario() -> u64 {
    std::env::var("NIMBUS_DST_SWEEP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

/// Replays of passing seeds pinning trace determinism (every Nth seed).
const REPLAY_EVERY: u64 = 5;

/// Budget of simulated runs the shrinker may spend on one failing seed.
const SHRINK_BUDGET: usize = 300;

fn failure_dir() -> PathBuf {
    // target/ relative to the workspace root, regardless of test cwd.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/dst-failures");
    let _ = fs::create_dir_all(&dir);
    dir
}

#[test]
fn seeded_sweep_holds_the_output_contract() {
    let per_scenario = seeds_per_scenario();
    let mut failures: Vec<String> = Vec::new();
    for scenario in Scenario::all() {
        for seed in 0..per_scenario {
            let plan = scenario.generate_plan(seed);
            let report = run_plan(&scenario, &plan);
            if let Err(why) = scenario.validate(&plan, &report) {
                let dir = failure_dir();
                let _ = fs::write(
                    dir.join(format!("{}-seed{seed}.trace", scenario.name)),
                    report.trace.render(),
                );
                let mut note = format!(
                    "{} seed {seed}: {why}\n  plan: {}",
                    scenario.name,
                    plan.describe()
                );
                if let Some(min) = shrink(&scenario, &plan, SHRINK_BUDGET) {
                    let _ = fs::write(
                        dir.join(format!("{}-seed{seed}-min.trace", scenario.name)),
                        min.trace.render(),
                    );
                    note.push_str(&format!(
                        "\n  shrunk ({} runs): {} -> {}",
                        min.runs,
                        min.plan.describe(),
                        min.failure
                    ));
                }
                failures.push(note);
                continue;
            }
            if seed % REPLAY_EVERY == 0 {
                let again = run_plan(&scenario, &plan);
                if report.trace.fingerprint() != again.trace.fingerprint() {
                    failures.push(format!(
                        "{} seed {seed}: replay diverged\n  plan: {}",
                        scenario.name,
                        plan.describe()
                    ));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} sweep failure(s); traces under target/dst-failures/:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
