//! The committed regression bank: one schedule per bug the simulator has
//! caught (or per recovery race fixed in earlier PRs), each small enough to
//! read. Every schedule is replayed twice — the run must validate *and* the
//! two traces must be bit-identical — so a reintroduced bug fails loudly and
//! a determinism regression fails just as loudly.
//!
//! Decision indices in these plans were picked from rendered calm traces
//! (see `SimTrace::render`); the surrounding wire traffic each index targets
//! is named in the comments so the plans stay auditable when schedules
//! drift.

use std::collections::BTreeSet;

use nimbus_core::ids::WorkerId;
use nimbus_dst::{run_plan, shrink, FaultKind, Scenario, SchedulePlan, SimReport, TraceEvent};
use nimbus_net::NodeId;

/// Runs `plan` twice: the run must validate against the scenario and both
/// runs must produce bit-identical traces. Returns the first run's report
/// for schedule-specific assertions.
fn replay(scenario: &Scenario, plan: &SchedulePlan) -> SimReport {
    let first = run_plan(scenario, plan);
    if let Err(why) = scenario.validate(plan, &first) {
        panic!(
            "regression schedule failed validation: {why}\n\n{}",
            first.trace.render()
        );
    }
    let second = run_plan(scenario, plan);
    assert_eq!(
        first.trace.fingerprint(),
        second.trace.fingerprint(),
        "replay diverged for {}",
        plan.describe()
    );
    first
}

/// Number of faults from the plan that were actually injected (not skipped).
fn faults_applied(report: &SimReport) -> usize {
    report
        .trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Fault(_)))
        .count()
}

/// Recovery-during-recovery lost partition state (found by this harness,
/// seed 102 on `churn`, then shrunk to the plan below).
///
/// Two overlapping recoveries — worker-2 delayed and killed mid-run, then
/// worker-0 killed and rejoined while the first recovery's re-homing was
/// still the live layout — used to replay `add` on factory zeros: the
/// checkpoint restore recreated rejoined-worker instances with checkpointed
/// *versions* but factory *contents*, and in-place task writes carried no
/// preconditions, so validation never patched them. Fixed by giving RunTask
/// writes block-entry preconditions (template_manager) and marking recreated
/// instances stale (controller::complete_recovery). Totals were
/// `[64, 128, 192, 256, 312]` under the bug; the closed form demands 320.
#[test]
fn recovery_during_recovery_preserves_partition_state() {
    let scenario = Scenario::by_name("churn").unwrap();
    let plan = SchedulePlan {
        seed: 102,
        faults: vec![],
        chaos_at: Some(
            [
                0u64, 5, 6, 35, 36, 39, 135, 144, 146, 147, 150, 152, 153, 154, 155,
            ]
            .into_iter()
            .collect::<BTreeSet<u64>>(),
        ),
    }
    .with_fault(
        76,
        FaultKind::DelayLink {
            from: NodeId::Worker(WorkerId(2)),
            to: NodeId::Controller,
            decisions: 14,
        },
    )
    .with_fault(152, FaultKind::Kill(WorkerId(2)))
    .with_fault(209, FaultKind::Kill(WorkerId(0)))
    .with_fault(250, FaultKind::Rejoin(WorkerId(0)));
    replay(&scenario, &plan);
}

/// Orphaned template references after a second restore of the same
/// checkpoint (found by this harness, seed 214 on `churn`, shrunk to the
/// plan below; seed 314 hit the same bug).
///
/// Kill worker-1, let it rejoin, then kill and rejoin it *again* before the
/// next checkpoint commits. The second restore rewinds the instance map to
/// the same checkpoint, but the template mirror keeps recovery #1's
/// migration edits — whose preconditions name instances created *after*
/// that checkpoint. Those orphans used to make `emit_patch_commands` skip
/// the destination `CreateData` (unknown object), so the repair copy landed
/// on a worker that never allocated it, the receive failed silently, and
/// the final total came up short (272 for 320). Fixed by re-registering
/// missing precondition instances, stale, from the precondition's own
/// metadata (template_manager::plan_instantiation).
#[test]
fn double_kill_and_rejoin_of_the_same_worker() {
    let scenario = Scenario::by_name("churn").unwrap();
    let plan = SchedulePlan {
        seed: 214,
        faults: vec![],
        chaos_at: Some(
            [80u64, 85, 92, 102, 109, 113, 204, 209, 219, 226]
                .into_iter()
                .collect::<BTreeSet<u64>>(),
        ),
    }
    .with_fault(137, FaultKind::Kill(WorkerId(1)))
    .with_fault(205, FaultKind::Rejoin(WorkerId(1)))
    .with_fault(238, FaultKind::Kill(WorkerId(1)))
    .with_fault(279, FaultKind::Rejoin(WorkerId(1)));
    replay(&scenario, &plan);
}

/// Phantom checkpoint commit (PR-5 recovery race, protocol-level schedule).
///
/// The original race was a worker dying between *receiving* the
/// checkpoint-save commands and *acking* them: the controller must not treat
/// the checkpoint as committed, or recovery restores from state that never
/// fully persisted. In the calm churn trace the save window is the
/// `execute_commands` fan-out to all three workers right after the second
/// instantiation (decisions 90..=95); killing worker-2 at 93 lands after its
/// save commands are delivered and before its `commands_completed` ack.
#[test]
fn kill_inside_the_checkpoint_save_window() {
    let scenario = Scenario::by_name("churn").unwrap();
    let plan = SchedulePlan::calm(0, vec![])
        .with_fault(93, FaultKind::Kill(WorkerId(2)))
        .with_fault(130, FaultKind::Rejoin(WorkerId(2)));
    let report = replay(&scenario, &plan);
    assert_eq!(faults_applied(&report), 2, "kill or rejoin was skipped");
}

/// Stale reconnect state on back-to-back disconnects (PR-5 redial-backoff
/// race, protocol-level schedule).
///
/// The TCP-internal bug was a redial backoff that survived a successful
/// reconnect, stalling the *next* reconnect. The simulator runs above the
/// transport, so this schedule pins the protocol shape the fix must keep
/// working: the same worker identity going silent (link delay long enough to
/// look like a failure), coming back, then disconnecting for real and
/// rejoining — two failure/return cycles of one identity in close
/// succession. Under the decision-38 delay the first checkpoint's save
/// fan-out lands at decisions 91..=94, so the kill at 95 strikes right after
/// worker-1's own checkpoint ack and recovery has state to restore from.
#[test]
fn back_to_back_disconnects_of_one_worker_identity() {
    let scenario = Scenario::by_name("quickstart").unwrap();
    let plan = SchedulePlan::calm(0, vec![])
        .with_fault(
            38,
            FaultKind::DelayLink {
                from: NodeId::Worker(WorkerId(1)),
                to: NodeId::Controller,
                decisions: 25,
            },
        )
        .with_fault(95, FaultKind::Kill(WorkerId(1)))
        .with_fault(125, FaultKind::Rejoin(WorkerId(1)));
    let report = replay(&scenario, &plan);
    assert_eq!(faults_applied(&report), 3, "a fault was skipped");
}

/// Stale cached writer after re-homing (PR-5 recovery race, protocol-level
/// schedule).
///
/// The controller caches each partition's latest writer; PR 5's race left
/// that cache pointing at an evicted worker after recovery re-homed its
/// partitions. Worker-0 is the churn reduction home (every `data_transfer`
/// lands there and it holds the fetched total), so killing it right after it
/// acks the third instantiation (decision 111) forces recovery to re-home
/// the hottest partitions; the rejoin then makes the old incarnation's
/// cached locations maximally tempting to reuse.
#[test]
fn kill_the_reduction_home_after_it_acks_an_instantiation() {
    let scenario = Scenario::by_name("churn").unwrap();
    let plan = SchedulePlan::calm(0, vec![])
        .with_fault(112, FaultKind::Kill(WorkerId(0)))
        .with_fault(150, FaultKind::Rejoin(WorkerId(0)));
    let report = replay(&scenario, &plan);
    assert_eq!(faults_applied(&report), 2, "kill or rejoin was skipped");
}

/// A plan that does not fail has nothing to shrink.
#[test]
fn shrink_declines_a_passing_plan() {
    let scenario = Scenario::by_name("quickstart").unwrap();
    assert!(shrink(&scenario, &SchedulePlan::calm(1, vec![]), 10).is_none());
}
