//! Event traces: the observable history of one simulated execution.
//!
//! Every scheduler decision appends one [`TraceEvent`]. Two runs of the same
//! scenario under the same [`SchedulePlan`](crate::SchedulePlan) must produce
//! identical traces — [`SimTrace::fingerprint`] is the cheap equality the
//! determinism tests assert — and a failing trace rendered with
//! [`SimTrace::render`] is the artifact CI uploads.

use nimbus_net::NodeId;

use crate::plan::FaultEvent;

/// One observable step of the simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was delivered to its destination inbox.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// The message's wire tag.
        tag: &'static str,
    },
    /// A blocked receive's timeout fired; virtual time advanced to it.
    TimerFired {
        /// The node whose receive timed out.
        node: NodeId,
        /// Virtual time after the advance, in nanoseconds since sim start.
        virtual_nanos: u64,
    },
    /// A fault from the plan was injected.
    Fault(FaultEvent),
    /// A fault from the plan was skipped (target already dead/alive/gone).
    FaultSkipped(FaultEvent),
    /// A message from a severed node was dropped at send time.
    DroppedFromSevered {
        /// Sender (severed).
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// The message's wire tag.
        tag: &'static str,
    },
    /// A queued message was dropped because its destination had exited.
    DroppedDeadDestination {
        /// Sender.
        from: NodeId,
        /// Exited receiver.
        to: NodeId,
        /// The message's wire tag.
        tag: &'static str,
    },
    /// A node's thread exited (clean shutdown or kill).
    NodeExited {
        /// The node that exited.
        node: NodeId,
    },
    /// The scheduler unstuck a wedged node with a disconnect grant (only on
    /// deadlock/stall teardown; its presence means the run did not complete
    /// normally).
    Unstick {
        /// The node that was forced awake.
        node: NodeId,
    },
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceEvent::Deliver { from, to, tag } => write!(f, "deliver {from} -> {to} [{tag}]"),
            TraceEvent::TimerFired {
                node,
                virtual_nanos,
            } => write!(f, "timer {node} (t={}us)", virtual_nanos / 1_000),
            TraceEvent::Fault(e) => write!(f, "fault {e}"),
            TraceEvent::FaultSkipped(e) => write!(f, "fault-skipped {e}"),
            TraceEvent::DroppedFromSevered { from, to, tag } => {
                write!(f, "dropped(severed) {from} -> {to} [{tag}]")
            }
            TraceEvent::DroppedDeadDestination { from, to, tag } => {
                write!(f, "dropped(dead-dest) {from} -> {to} [{tag}]")
            }
            TraceEvent::NodeExited { node } => write!(f, "exited {node}"),
            TraceEvent::Unstick { node } => write!(f, "unstick {node}"),
        }
    }
}

/// How a simulated execution ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimOutcome {
    /// Every node exited on its own.
    Completed,
    /// Live nodes remained but nothing was deliverable, no timer was armed,
    /// and no fault was pending: a genuine distributed deadlock.
    Deadlock,
    /// The decision or virtual-time budget was exhausted (livelock guard).
    Stalled,
}

impl std::fmt::Display for SimOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimOutcome::Completed => write!(f, "completed"),
            SimOutcome::Deadlock => write!(f, "deadlock"),
            SimOutcome::Stalled => write!(f, "stalled"),
        }
    }
}

/// The replayable record of one simulated execution.
#[derive(Clone, Debug)]
pub struct SimTrace {
    /// Scenario name the plan ran against.
    pub scenario: String,
    /// The plan (seed + faults + chaos set) that reproduces this trace.
    pub plan_description: String,
    /// How the run ended.
    pub outcome: SimOutcome,
    /// Every observable step, in decision order.
    pub events: Vec<TraceEvent>,
    /// Total scheduler decisions taken.
    pub decisions: u64,
    /// Virtual nanoseconds elapsed over the whole run.
    pub virtual_nanos: u64,
}

impl SimTrace {
    /// An order-sensitive FNV-1a hash of the whole trace: cheap bit-level
    /// equality for the determinism sweeps.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for e in &self.events {
            eat(e.to_string().as_bytes());
            eat(&[0xff]);
        }
        eat(&self.decisions.to_le_bytes());
        eat(&self.virtual_nanos.to_le_bytes());
        h
    }

    /// Renders the trace as the text artifact CI uploads on failure: plan
    /// header, outcome, then one line per event.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "scenario: {}", self.scenario);
        let _ = writeln!(out, "plan: {}", self.plan_description);
        let _ = writeln!(
            out,
            "outcome: {} ({} decisions, {}us virtual)",
            self.outcome,
            self.decisions,
            self.virtual_nanos / 1_000
        );
        for (i, e) in self.events.iter().enumerate() {
            let _ = writeln!(out, "{i:6}  {e}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(events: Vec<TraceEvent>) -> SimTrace {
        SimTrace {
            scenario: "t".into(),
            plan_description: "seed=0".into(),
            outcome: SimOutcome::Completed,
            events,
            decisions: 1,
            virtual_nanos: 5_000,
        }
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let a = TraceEvent::Deliver {
            from: NodeId::Driver,
            to: NodeId::Controller,
            tag: "open_job",
        };
        let b = TraceEvent::TimerFired {
            node: NodeId::Controller,
            virtual_nanos: 1,
        };
        let t1 = trace(vec![a.clone(), b.clone()]);
        let t2 = trace(vec![b, a]);
        assert_ne!(t1.fingerprint(), t2.fingerprint());
        assert_eq!(t1.fingerprint(), t1.clone().fingerprint());
    }

    #[test]
    fn render_contains_every_event() {
        let t = trace(vec![TraceEvent::NodeExited {
            node: NodeId::Driver,
        }]);
        let text = t.render();
        assert!(text.contains("exited driver"));
        assert!(text.contains("outcome: completed"));
    }
}
