//! Simulation scenarios: cluster topologies with exactly known outputs.
//!
//! Every scenario runs the quickstart workload (whose totals follow the
//! closed form `(i + 1) * PARTITIONS * PARTITION_LEN`), so a simulated run
//! is validated against *exact* expected bytes, not a tolerance. Any fault
//! plan a scenario generates must leave those outputs untouched — worker
//! kills, rejoins, and link delays are all events the control plane claims
//! to absorb — with the single exception of a dropped driver, whose own job
//! (and only its own job) may end in an error.

use std::collections::BTreeSet;
use std::time::Duration;

use nimbus_core::ids::WorkerId;
use nimbus_net::NodeId;
use nimbus_runtime::quickstart::{PARTITIONS, PARTITION_LEN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::harness::SimReport;
use crate::plan::{FaultKind, SchedulePlan};
use crate::trace::SimOutcome;

/// Decouples the plan-generation stream from the scheduler's decision
/// stream, which uses the seed directly.
const PLAN_STREAM_SALT: u64 = 0x5eed_5eed_5eed_5eed;

/// A cluster topology plus workload with exactly known outputs.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name (appears in traces and failure reports).
    pub name: &'static str,
    /// Number of workers.
    pub workers: u32,
    /// Number of concurrent driver jobs.
    pub jobs: u32,
    /// Quickstart iterations per job.
    pub iterations: u32,
    /// Auto-checkpoint period (template instantiations per checkpoint).
    pub checkpoint_every: Option<u64>,
    /// Rejoin grace window for transport-detected worker failures.
    pub rejoin_grace: Option<Duration>,
    /// Whether generated plans may kill (and rejoin) workers.
    pub allow_kills: bool,
    /// Whether generated plans may drop driver jobs.
    pub allow_drops: bool,
}

impl Scenario {
    /// The baseline: one job, two workers, kills and rejoins allowed.
    pub fn quickstart() -> Self {
        Self {
            name: "quickstart",
            workers: 2,
            jobs: 1,
            iterations: 4,
            checkpoint_every: Some(2),
            rejoin_grace: Some(Duration::from_millis(50)),
            allow_kills: true,
            allow_drops: false,
        }
    }

    /// Three concurrent jobs on two workers; jobs may be dropped mid-run
    /// (isolation: surviving jobs must be untouched).
    pub fn multijob() -> Self {
        Self {
            name: "multijob",
            workers: 2,
            jobs: 3,
            iterations: 3,
            checkpoint_every: Some(2),
            rejoin_grace: Some(Duration::from_millis(50)),
            allow_kills: false,
            allow_drops: true,
        }
    }

    /// Three workers under membership churn: kills, rejoins, link delays.
    pub fn churn() -> Self {
        Self {
            name: "churn",
            workers: 3,
            jobs: 1,
            iterations: 5,
            checkpoint_every: Some(2),
            rejoin_grace: Some(Duration::from_millis(100)),
            allow_kills: true,
            allow_drops: false,
        }
    }

    /// Every scenario, in sweep order.
    pub fn all() -> Vec<Self> {
        vec![Self::quickstart(), Self::multijob(), Self::churn()]
    }

    /// Looks a scenario up by name.
    pub fn by_name(name: &str) -> Option<Self> {
        Self::all().into_iter().find(|s| s.name == name)
    }

    /// The exact totals every surviving job must fetch: iteration `i` totals
    /// `(i + 1) * PARTITIONS * PARTITION_LEN`.
    pub fn expected_totals(&self) -> Vec<f64> {
        (1..=self.iterations)
            .map(|i| f64::from(i) * f64::from(PARTITIONS) * PARTITION_LEN as f64)
            .collect()
    }

    /// Generates a seeded fault plan consistent with this scenario's rules:
    /// at least one worker stays alive at every point, only real clients are
    /// dropped, and fault times land inside the plausible decision range.
    pub fn generate_plan(&self, seed: u64) -> SchedulePlan {
        let mut rng = StdRng::seed_from_u64(seed ^ PLAN_STREAM_SALT);
        let mut plan = SchedulePlan::random(seed);
        let mut alive: Vec<WorkerId> = (0..self.workers).map(WorkerId).collect();
        let mut dead: Vec<WorkerId> = Vec::new();
        let mut undropped: Vec<u32> = (1..=self.jobs).collect();
        let fault_count = rng.gen_range(0u32..6);
        let mut at: u64 = 0;
        for _ in 0..fault_count {
            at += rng.gen_range(5u64..90);
            // Build the menu of currently legal fault kinds; always draw the
            // selector even when the menu shrinks, so plans with different
            // histories stay on comparable streams.
            let draw = rng.gen_range(0u32..100);
            let can_kill = self.allow_kills && alive.len() >= 2;
            let can_rejoin = !dead.is_empty();
            let can_drop = self.allow_drops && !undropped.is_empty();
            if can_kill && draw < 35 {
                let victim = alive.remove(rng.gen_range(0..alive.len()));
                plan = plan.with_fault(at, FaultKind::Kill(victim));
                // Most kills come back (the rejoin handshake is the richer
                // code path); the rest recover onto the survivors.
                if rng.gen_bool(0.7) {
                    at += rng.gen_range(5u64..80);
                    plan = plan.with_fault(at, FaultKind::Rejoin(victim));
                    alive.push(victim);
                } else {
                    dead.push(victim);
                }
            } else if can_rejoin && draw < 50 {
                let back = dead.remove(rng.gen_range(0..dead.len()));
                plan = plan.with_fault(at, FaultKind::Rejoin(back));
                alive.push(back);
            } else if can_drop && draw < 65 {
                let gone = undropped.remove(rng.gen_range(0..undropped.len()));
                plan = plan.with_fault(at, FaultKind::DropJob(gone));
            } else {
                // Delay one direction of a controller<->worker link.
                let w = NodeId::Worker(WorkerId(rng.gen_range(0..self.workers)));
                let (from, to) = if rng.gen_bool(0.5) {
                    (NodeId::Controller, w)
                } else {
                    (w, NodeId::Controller)
                };
                let decisions = rng.gen_range(1u32..40);
                plan = plan.with_fault(
                    at,
                    FaultKind::DelayLink {
                        from,
                        to,
                        decisions,
                    },
                );
            }
        }
        plan
    }

    /// The client ids a plan drops.
    pub fn dropped_clients(plan: &SchedulePlan) -> BTreeSet<u32> {
        plan.faults
            .iter()
            .filter_map(|f| match f.kind {
                FaultKind::DropJob(c) => Some(c),
                _ => None,
            })
            .collect()
    }

    /// Validates a simulated run: completion, exact totals for every
    /// surviving job, and controller bookkeeping consistent with the plan.
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, plan: &SchedulePlan, report: &SimReport) -> Result<(), String> {
        if report.trace.outcome != SimOutcome::Completed {
            return Err(format!("run ended in {}", report.trace.outcome));
        }
        let dropped = Self::dropped_clients(plan);
        let expected = self.expected_totals();
        if report.outputs.len() != self.jobs as usize {
            return Err(format!(
                "expected {} job outputs, got {}",
                self.jobs,
                report.outputs.len()
            ));
        }
        for (idx, output) in report.outputs.iter().enumerate() {
            let client = idx as u32 + 1;
            match output {
                Ok(totals) => {
                    // A dropped job may still have finished before the drop
                    // landed — but if it reports success, its totals must be
                    // the exact closed form like everyone else's.
                    if totals != &expected {
                        return Err(format!(
                            "job {client} totals diverged: got {totals:?}, want {expected:?}"
                        ));
                    }
                }
                Err(e) => {
                    // A clean error is legitimate in two cases: the job's own
                    // driver was dropped, or a worker died before the job had
                    // any checkpoint to recover from (the controller reports
                    // the loss rather than fabricating state). Anything else
                    // is a real failure.
                    let killed = plan
                        .faults
                        .iter()
                        .any(|f| matches!(f.kind, FaultKind::Kill(_)));
                    if !dropped.contains(&client) && !killed {
                        return Err(format!("job {client} failed without being dropped: {e}"));
                    }
                }
            }
        }
        let controller = report
            .controller
            .as_ref()
            .ok_or_else(|| "controller stats missing (thread panicked?)".to_string())?;
        // Every job that ran to success recorded its template exactly once;
        // rejoin reinstalls can only add to the counter, never subtract.
        // (Jobs that ended in a tolerated error may have died before their
        // recording finished, so only successes set the floor.)
        let succeeded = report.outputs.iter().filter(|o| o.is_ok()).count() as u64;
        if self.iterations >= 2 && controller.controller_templates_installed < succeeded {
            return Err(format!(
                "{} templates installed for {succeeded} successful jobs",
                controller.controller_templates_installed
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_totals_follow_the_closed_form() {
        let s = Scenario::quickstart();
        assert_eq!(s.expected_totals(), vec![64.0, 128.0, 192.0, 256.0]);
    }

    #[test]
    fn generated_plans_are_deterministic_and_legal() {
        for scenario in Scenario::all() {
            for seed in 0..200 {
                let a = scenario.generate_plan(seed);
                let b = scenario.generate_plan(seed);
                assert_eq!(a, b, "plan generation must be deterministic");
                // Replay the alive-set bookkeeping: at least one worker must
                // be alive at every point of the plan.
                let mut alive: BTreeSet<u32> = (0..scenario.workers).collect();
                for fault in &a.faults {
                    match fault.kind {
                        FaultKind::Kill(w) => {
                            assert!(alive.remove(&w.raw()), "kill of dead worker");
                            assert!(!alive.is_empty(), "plan killed the last worker");
                        }
                        FaultKind::Rejoin(w) => {
                            assert!(alive.insert(w.raw()), "rejoin of live worker");
                        }
                        FaultKind::DropJob(c) => {
                            assert!(c >= 1 && c <= scenario.jobs, "dropped unknown client");
                        }
                        FaultKind::DelayLink { decisions, .. } => {
                            assert!(decisions >= 1);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn kills_only_where_allowed() {
        for seed in 0..100 {
            let plan = Scenario::multijob().generate_plan(seed);
            assert!(
                !plan
                    .faults
                    .iter()
                    .any(|f| matches!(f.kind, FaultKind::Kill(_))),
                "multijob must not kill workers"
            );
        }
    }
}
