//! The simulated cluster: real controller / worker / driver threads on the
//! in-process fabric, with every delivery, timeout, and fault driven from a
//! [`SchedulePlan`] by the harness thread.
//!
//! The harness acts only at **quiescence** — when every live node thread is
//! parked inside the scheduler's delivery hook — so each step wakes exactly
//! one node, which runs until it parks again. That makes the whole execution
//! a deterministic function of the plan: the event trace, the job outputs,
//! and the controller's statistics all replay bit-for-bit.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use nimbus_controller::{Controller, ControllerConfig};
use nimbus_core::clock::Clock;
use nimbus_core::ids::WorkerId;
use nimbus_core::ControlPlaneStats;
use nimbus_driver::Session;
use nimbus_net::{DeliveryHook, HookWake, LatencyModel, Network, NodeId};
use nimbus_runtime::quickstart::{quickstart_driver, quickstart_setup};
use nimbus_worker::{
    DataFactoryRegistry, FunctionRegistry, ObjectVault, Worker, WorkerConfig, WorkerStats,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::plan::{FaultEvent, FaultKind, SchedulePlan};
use crate::scenario::Scenario;
use crate::scheduler::{NodeState, SimScheduler};
use crate::trace::{SimOutcome, SimTrace, TraceEvent};

/// Decision budget: a livelock guard far above any legitimate run (the
/// largest scenario completes in a few thousand decisions).
const MAX_DECISIONS: u64 = 200_000;

/// Virtual-time budget. The longest legitimate waits are the driver's 60 s
/// reply timeouts; anything still alive at five virtual minutes is stuck.
const MAX_VIRTUAL_NANOS: u64 = 300 * 1_000_000_000;

/// Probability that a chaotic decision fires the earliest timer even though
/// messages are deliverable — the race between timeouts and traffic.
const TIMER_RACE_NUM: u64 = 1; // numerator of 1/10

/// One job's fetched totals, or the driver error string that ended it (a
/// dropped job, or a job the controller failed over a worker death without
/// a usable checkpoint).
pub type DriverOutput = Result<Vec<f64>, String>;

/// Everything a simulated run reports.
pub struct SimReport {
    /// Per-job driver outputs, indexed by client id - 1.
    pub outputs: Vec<DriverOutput>,
    /// Controller statistics (`None` if the controller thread panicked).
    pub controller: Option<ControlPlaneStats>,
    /// Per-worker statistics, killed workers included.
    pub workers: Vec<WorkerStats>,
    /// The replayable record of the execution.
    pub trace: SimTrace,
    /// Decisions where the plan's random draw actually changed the schedule
    /// (the shrinker minimizes over this set).
    pub chaotic_effective: BTreeSet<u64>,
}

/// Runs one plan against a scenario to completion and reports everything.
pub fn run_plan(scenario: &Scenario, plan: &SchedulePlan) -> SimReport {
    SimCluster::launch(scenario, plan).run()
}

struct SimWorkerSlot {
    id: WorkerId,
    kill: Arc<AtomicBool>,
    handle: Option<JoinHandle<WorkerStats>>,
}

/// A running simulated cluster (see the module docs).
pub struct SimCluster {
    scenario: Scenario,
    plan: SchedulePlan,
    scheduler: Arc<SimScheduler>,
    /// The shared virtual clock, handed to every node (controller, workers,
    /// drivers) so no simulated component ever reads wall time.
    clock: Clock,
    network: Network,
    controller: Option<JoinHandle<ControlPlaneStats>>,
    workers: Vec<SimWorkerSlot>,
    reaped: Vec<WorkerStats>,
    drivers: Vec<Option<JoinHandle<DriverOutput>>>,
    outputs: Vec<Option<DriverOutput>>,
    terminator: Option<JoinHandle<()>>,
    functions: Arc<FunctionRegistry>,
    factories: Arc<DataFactoryRegistry>,
    vault: Arc<ObjectVault>,
    rng: StdRng,
    fault_cursor: usize,
    chaotic_effective: BTreeSet<u64>,
}

impl SimCluster {
    /// Builds the cluster and spawns every node thread. Nodes immediately
    /// run until they park in the scheduler; no decision is taken yet.
    pub fn launch(scenario: &Scenario, plan: &SchedulePlan) -> Self {
        let (clock, vclock) = Clock::virtual_clock();
        let scheduler = Arc::new(SimScheduler::new(vclock));
        let network = Network::new(LatencyModel::None);
        network.install_delivery_hook(Arc::clone(&scheduler) as Arc<dyn DeliveryHook>);

        let (functions, factories) = quickstart_setup().into_shared();
        let vault = Arc::new(ObjectVault::new());

        let mut cluster = Self {
            scenario: scenario.clone(),
            plan: plan.clone(),
            scheduler,
            clock: clock.clone(),
            network,
            controller: None,
            workers: Vec::new(),
            reaped: Vec::new(),
            drivers: Vec::new(),
            outputs: (0..scenario.jobs).map(|_| None).collect(),
            terminator: None,
            functions,
            factories,
            vault,
            rng: StdRng::seed_from_u64(plan.seed),
            fault_cursor: 0,
            chaotic_effective: BTreeSet::new(),
        };

        // Register EVERY endpoint before spawning ANY thread. On the real
        // in-process fabric a worker's hello may race the controller's
        // registration and get dropped as `UnknownNode` — a benign race in
        // production, but a nondeterministic one. With all destinations
        // registered up front, every startup send lands in the scheduler's
        // link queues and the whole startup is replayable.
        let worker_ids: Vec<WorkerId> = (0..scenario.workers).map(WorkerId).collect();
        let worker_endpoints: Vec<_> = worker_ids
            .iter()
            .map(|id| {
                cluster.scheduler.add_node(NodeId::Worker(*id));
                cluster.network.register(NodeId::Worker(*id))
            })
            .collect();
        cluster.scheduler.add_node(NodeId::Controller);
        let controller_endpoint = cluster.network.register(NodeId::Controller);
        let client_endpoints: Vec<_> = (1..=scenario.jobs)
            .map(|client| {
                cluster.scheduler.add_node(NodeId::Client(client));
                cluster.network.register(NodeId::Client(client))
            })
            .collect();

        for (id, endpoint) in worker_ids.iter().zip(worker_endpoints) {
            let slot = cluster.spawn_worker(*id, endpoint);
            cluster.workers.push(slot);
        }

        let mut config = ControllerConfig::new(worker_ids);
        config.checkpoint_every = scenario.checkpoint_every;
        config.rejoin_grace = scenario.rejoin_grace;
        config.clock = clock;
        let controller = Controller::new(config, controller_endpoint);
        cluster.controller = Some(
            std::thread::Builder::new()
                .name("sim-controller".into())
                .spawn(move || controller.run())
                .expect("spawn controller"),
        );

        for (client, endpoint) in (1..=scenario.jobs).zip(client_endpoints) {
            let iterations = scenario.iterations;
            let clock = cluster.clock.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sim-driver-{client}"))
                .spawn(move || -> Result<Vec<f64>, String> {
                    let mut session =
                        Session::connect_with_clock(endpoint, clock).map_err(|e| e.to_string())?;
                    let totals =
                        quickstart_driver(&mut session, iterations).map_err(|e| e.to_string())?;
                    session.close().map_err(|e| e.to_string())?;
                    Ok(totals)
                })
                .expect("spawn driver");
            cluster.drivers.push(Some(handle));
        }
        cluster
    }

    fn spawn_worker(&self, id: WorkerId, endpoint: nimbus_net::Endpoint) -> SimWorkerSlot {
        let kill = Arc::new(AtomicBool::new(false));
        let mut config = WorkerConfig::new(
            id,
            Arc::clone(&self.functions),
            Arc::clone(&self.factories),
            Arc::clone(&self.vault),
        );
        config.kill_switch = Some(Arc::clone(&kill));
        config.clock = self.clock.clone();
        let worker = Worker::new(config, endpoint);
        let handle = std::thread::Builder::new()
            .name(format!("sim-worker-{id}"))
            .spawn(move || worker.run())
            .expect("spawn worker");
        SimWorkerSlot {
            id,
            kill,
            handle: Some(handle),
        }
    }

    /// Steps the simulation to its end and assembles the report.
    pub fn run(mut self) -> SimReport {
        let outcome = self.step_to_completion();
        if outcome != SimOutcome::Completed {
            self.force_teardown();
        }
        self.harvest_drivers();
        let (events, decisions) = self
            .scheduler
            .with_state(|st| (st.take_events(), st.decisions()));
        let trace = SimTrace {
            scenario: self.scenario.name.to_string(),
            plan_description: self.plan.describe(),
            outcome,
            events,
            decisions,
            virtual_nanos: self.scheduler.clock.elapsed_nanos(),
        };
        let controller = self.controller.take().and_then(|h| h.join().ok());
        let mut workers = std::mem::take(&mut self.reaped);
        for slot in &mut self.workers {
            if let Some(handle) = slot.handle.take() {
                if let Ok(stats) = handle.join() {
                    workers.push(stats);
                }
            }
        }
        if let Some(t) = self.terminator.take() {
            let _ = t.join();
        }
        SimReport {
            outputs: self
                .outputs
                .iter_mut()
                .map(|o| {
                    o.take()
                        .unwrap_or_else(|| Err("driver never joined".into()))
                })
                .collect(),
            controller,
            workers,
            trace,
            chaotic_effective: std::mem::take(&mut self.chaotic_effective),
        }
    }

    fn step_to_completion(&mut self) -> SimOutcome {
        loop {
            self.scheduler.wait_quiescence();

            if self.scheduler.with_state(|st| st.all_exited()) {
                return SimOutcome::Completed;
            }

            // Drop undeliverable traffic and unstick severed sleepers; both
            // are bookkeeping, not decisions.
            let scheduler = Arc::clone(&self.scheduler);
            let resumed = self.scheduler.with_state(|st| {
                st.purge_dead_destinations();
                let stuck = st.severed_blocked();
                for node in &stuck {
                    scheduler.grant_locked(st, *node, HookWake::Disconnected);
                }
                !stuck.is_empty()
            });
            if resumed {
                continue;
            }

            // Once every scenario driver is done, harvest their outputs and
            // send the cluster-wide shutdown through one last session.
            if self.terminator.is_none() && self.scenario_drivers_exited() {
                self.harvest_drivers();
                self.spawn_terminator();
                continue;
            }

            // Faults scheduled at or before the current decision index.
            if let Some(fault) = self.next_due_fault() {
                self.apply_fault(fault);
                continue;
            }

            let view = self.scheduler.with_state(|st| st.quiescent_view());

            // A worker still alive after the controller exited can never
            // hear another message once nothing is in flight (its register
            // and every reply path need a controller). Without this, its
            // idle step timer grinds virtual time all the way to the cap.
            // Masked links may still hold deliverable traffic whose mask
            // expires as timer decisions pass, so those runs keep stepping.
            if view.eligible.is_empty()
                && self.scheduler.node_state(NodeId::Controller) == Some(NodeState::Exited)
                && !self.scheduler.with_state(|st| st.masked_traffic_pending())
            {
                let mut drained = false;
                for slot in &self.workers {
                    let node = NodeId::Worker(slot.id);
                    if slot.handle.is_some()
                        && self.scheduler.node_state(node) != Some(NodeState::Exited)
                    {
                        slot.kill.store(true, Ordering::Relaxed);
                        self.scheduler.with_state(|st| {
                            st.push_event(TraceEvent::Unstick { node });
                            if st.is_blocked(node) {
                                scheduler.grant_locked(st, node, HookWake::TimedOut);
                            }
                        });
                        drained = true;
                    }
                }
                if drained {
                    continue;
                }
            }

            if view.eligible.is_empty() && view.earliest_timer.is_none() {
                // Nothing can happen on its own. Pull the next fault forward
                // if one remains (its decision index was past the natural
                // end); otherwise the cluster is genuinely deadlocked.
                if self.fault_cursor < self.plan.faults.len() {
                    let fault = self.plan.faults[self.fault_cursor].clone();
                    self.fault_cursor += 1;
                    self.apply_fault(fault);
                    continue;
                }
                return if view.any_live {
                    SimOutcome::Deadlock
                } else {
                    SimOutcome::Completed
                };
            }

            let decisions = self.decide(&view);
            if decisions >= MAX_DECISIONS
                || self.scheduler.clock.elapsed_nanos() >= MAX_VIRTUAL_NANOS
            {
                return SimOutcome::Stalled;
            }
        }
    }

    /// Takes one scheduler decision (the only place virtual time advances
    /// and messages get delivered). Returns the new decision count.
    fn decide(&mut self, view: &crate::scheduler::Quiescent) -> u64 {
        let decision = self.scheduler.with_state(|st| st.decisions());
        let chaotic = self.plan.is_chaotic(decision);
        // Two raw draws per decision, unconditionally, so the stream stays
        // aligned no matter which decisions the shrinker calms.
        let coin_draw = self.rng.next_u64();
        let index_draw = self.rng.next_u64();
        let n = view.eligible.len();
        let timer_coin = coin_draw % 10 < TIMER_RACE_NUM;
        let index = if n > 0 {
            (index_draw % n as u64) as usize
        } else {
            0
        };

        let pick_timer = match (view.earliest_timer, n) {
            (Some(_), 0) => true,
            (None, _) => false,
            (Some(_), _) => chaotic && timer_coin,
        };
        // Did the chaotic draw change anything vs. the calm default
        // (deliver from the first eligible link)?
        if chaotic && ((pick_timer && n > 0) || (!pick_timer && index != 0)) {
            self.chaotic_effective.insert(decision);
        }

        let scheduler = Arc::clone(&self.scheduler);
        if pick_timer {
            let (deadline, node) = view.earliest_timer.expect("checked above");
            self.scheduler.clock.advance_to(deadline);
            let virtual_nanos = self.scheduler.clock.elapsed_nanos();
            self.scheduler.with_state(|st| {
                st.push_event(TraceEvent::TimerFired {
                    node,
                    virtual_nanos,
                });
                scheduler.grant_locked(st, node, HookWake::TimedOut);
                st.bump_decisions();
                st.decisions()
            })
        } else {
            let link = view.eligible[if chaotic { index } else { 0 }];
            let network = self.network.clone();
            self.scheduler.with_state(|st| {
                let envelope = st.pop_link(link).expect("eligible link was empty");
                let (from, to) = (envelope.from, envelope.to);
                let tag = envelope.message.tag();
                // Safe under the scheduler lock: every other thread that
                // touches the sender map is parked at quiescence, and the
                // map's writers all run on this harness thread.
                if network.deliver_now(envelope) {
                    st.push_event(TraceEvent::Deliver { from, to, tag });
                    scheduler.grant_locked(st, to, HookWake::Delivered);
                } else {
                    st.push_event(TraceEvent::DroppedDeadDestination { from, to, tag });
                }
                st.bump_decisions();
                st.decisions()
            })
        }
    }

    fn next_due_fault(&mut self) -> Option<FaultEvent> {
        let due = self
            .plan
            .faults
            .get(self.fault_cursor)
            .is_some_and(|f| f.at <= self.scheduler.with_state(|st| st.decisions()));
        if due {
            let fault = self.plan.faults[self.fault_cursor].clone();
            self.fault_cursor += 1;
            Some(fault)
        } else {
            None
        }
    }

    fn apply_fault(&mut self, fault: FaultEvent) {
        let scheduler = Arc::clone(&self.scheduler);
        match fault.kind {
            FaultKind::Kill(w) => {
                let node = NodeId::Worker(w);
                let Some(i) = self.workers.iter().position(|s| s.id == w) else {
                    self.skip_fault(fault);
                    return;
                };
                let alive = self.workers[i].handle.is_some()
                    && self.scheduler.node_state(node) != Some(NodeState::Exited);
                if !alive {
                    self.skip_fault(fault);
                    return;
                }
                // Switch first, then wake: the worker's next step observes
                // the flipped switch and dies without a goodbye. Severing
                // drops anything it manages to send in between, so the death
                // is externally instantaneous.
                self.workers[i].kill.store(true, Ordering::Relaxed);
                self.scheduler.with_state(|st| {
                    st.push_event(TraceEvent::Fault(fault.clone()));
                    scheduler.sever_locked(st, node);
                    if st.is_blocked(node) {
                        scheduler.grant_locked(st, node, HookWake::TimedOut);
                    }
                });
                self.scheduler.wait_exited(node);
                let handle = self.workers[i].handle.take().expect("checked alive");
                let stats = handle.join().expect("killed worker panicked");
                self.reaped.push(stats);
                // Outside the scheduler lock: disconnect synthesizes the
                // PeerDisconnected notices through the hook, which queues
                // them on the dead worker's links — after its in-flight
                // sends, exactly like a FIN behind buffered TCP data.
                self.network.disconnect(node);
            }
            FaultKind::Rejoin(w) => {
                let node = NodeId::Worker(w);
                let Some(i) = self.workers.iter().position(|s| s.id == w) else {
                    self.skip_fault(fault);
                    return;
                };
                // A rejoin into a cluster whose controller has already shut
                // down would orphan the new worker: nothing can ever message
                // it again, and its idle step timer would grind virtual time
                // to the cap. Treat it like any other impossible fault.
                let cluster_down =
                    self.scheduler.node_state(NodeId::Controller) == Some(NodeState::Exited);
                if self.workers[i].handle.is_some() || cluster_down {
                    self.skip_fault(fault);
                    return;
                }
                self.scheduler.with_state(|st| {
                    // Anything still queued for the dead incarnation belongs
                    // to a socket that no longer exists.
                    st.purge_links_to(node);
                    st.push_event(TraceEvent::Fault(fault.clone()));
                });
                self.scheduler.reset_node(node);
                let slot = self.spawn_worker_rejoin(w);
                self.workers[i] = slot;
            }
            FaultKind::DropJob(c) => {
                let node = NodeId::Client(c);
                let alive = matches!(
                    self.scheduler.node_state(node),
                    Some(NodeState::Running | NodeState::Blocked)
                );
                if !alive {
                    self.skip_fault(fault);
                    return;
                }
                self.scheduler.with_state(|st| {
                    st.push_event(TraceEvent::Fault(fault.clone()));
                    scheduler.sever_locked(st, node);
                    if st.is_blocked(node) {
                        scheduler.grant_locked(st, node, HookWake::Disconnected);
                    }
                });
                self.network.disconnect(node);
            }
            FaultKind::DelayLink {
                from,
                to,
                decisions,
            } => {
                self.scheduler.with_state(|st| {
                    st.push_event(TraceEvent::Fault(fault.clone()));
                    st.mask_link((from, to), u64::from(decisions));
                });
            }
        }
    }

    /// Respawns a previously killed worker under its old identity, like
    /// [`SimCluster::spawn_worker`] but without re-adding the scheduler slot
    /// (it was reset in place).
    fn spawn_worker_rejoin(&self, id: WorkerId) -> SimWorkerSlot {
        let kill = Arc::new(AtomicBool::new(false));
        let mut config = WorkerConfig::new(
            id,
            Arc::clone(&self.functions),
            Arc::clone(&self.factories),
            Arc::clone(&self.vault),
        );
        config.kill_switch = Some(Arc::clone(&kill));
        config.clock = self.clock.clone();
        let endpoint = self.network.register(NodeId::Worker(id));
        let worker = Worker::new(config, endpoint);
        let handle = std::thread::Builder::new()
            .name(format!("sim-worker-{id}-rejoin"))
            .spawn(move || worker.run())
            .expect("spawn rejoined worker");
        SimWorkerSlot {
            id,
            kill,
            handle: Some(handle),
        }
    }

    fn skip_fault(&self, fault: FaultEvent) {
        self.scheduler
            .with_state(|st| st.push_event(TraceEvent::FaultSkipped(fault)));
    }

    fn scenario_drivers_exited(&self) -> bool {
        (1..=self.scenario.jobs)
            .all(|c| self.scheduler.node_state(NodeId::Client(c)) == Some(NodeState::Exited))
    }

    fn harvest_drivers(&mut self) {
        for (i, slot) in self.drivers.iter_mut().enumerate() {
            if let Some(handle) = slot.take() {
                let result = handle
                    .join()
                    .unwrap_or_else(|_| Err("driver thread panicked".into()));
                self.outputs[i] = Some(result);
            }
        }
    }

    /// Opens one last session whose only job is to broadcast the
    /// cluster-wide shutdown (the simulated counterpart of
    /// `Cluster::shutdown_and_join`).
    fn spawn_terminator(&mut self) {
        let node = NodeId::Client(self.scenario.jobs + 1);
        self.scheduler.add_node(node);
        let endpoint = self.network.register(node);
        let clock = self.clock.clone();
        self.terminator = Some(
            std::thread::Builder::new()
                .name("sim-terminator".into())
                .spawn(move || {
                    // Implicit session (no open_job handshake): one less
                    // reply to race against the reply timeout. Retry a few
                    // times — an adversarial schedule can fire the timeout
                    // before the controller's confirmation arrives, and a
                    // terminator that gives up strands the whole cluster.
                    let mut session = Session::new(endpoint);
                    session.set_clock(clock);
                    session.set_reply_timeout(Duration::from_secs(10));
                    for _ in 0..4 {
                        if session.shutdown().is_ok() {
                            break;
                        }
                    }
                })
                .expect("spawn terminator"),
        );
    }

    /// After a deadlock or stall verdict: force every surviving node out
    /// with disconnect grants so threads can be joined. The `Unstick` events
    /// mark the trace as abnormal.
    fn force_teardown(&mut self) {
        let scheduler = Arc::clone(&self.scheduler);
        for _ in 0..10_000 {
            self.scheduler.wait_quiescence();
            let done = self.scheduler.with_state(|st| {
                st.purge_dead_destinations();
                if st.all_exited() {
                    return true;
                }
                for node in st.blocked_nodes() {
                    st.push_event(TraceEvent::Unstick { node });
                    scheduler.grant_locked(st, node, HookWake::Disconnected);
                }
                false
            });
            if done {
                return;
            }
        }
        panic!("simulation teardown failed to converge");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_quickstart_completes_with_exact_totals() {
        let scenario = Scenario::quickstart();
        let plan = SchedulePlan::calm(0, Vec::new());
        let report = run_plan(&scenario, &plan);
        assert_eq!(
            report.trace.outcome,
            SimOutcome::Completed,
            "{}",
            report.trace.render()
        );
        scenario
            .validate(&plan, &report)
            .unwrap_or_else(|e| panic!("{e}\n{}", report.trace.render()));
        assert!(
            report.chaotic_effective.is_empty(),
            "calm run took chaotic choices"
        );
    }

    #[test]
    fn same_seed_replays_to_the_same_fingerprint() {
        let scenario = Scenario::quickstart();
        let plan = SchedulePlan::random(42);
        let a = run_plan(&scenario, &plan);
        let b = run_plan(&scenario, &plan);
        assert_eq!(
            a.trace.fingerprint(),
            b.trace.fingerprint(),
            "same plan must replay identically"
        );
        assert_eq!(a.outputs, b.outputs);
    }
}
