//! Schedule plans: the complete, replayable description of one simulated
//! execution — a seed for the scheduler's choices plus a list of fault
//! injections pinned to decision points.
//!
//! A [`SchedulePlan`] is all the nondeterminism there is. Replaying the same
//! plan against the same scenario reproduces the same event trace and the
//! same outputs, bit for bit; that is what makes a failing plan a committable
//! regression artifact rather than a description of something that happened
//! once.

use std::collections::BTreeSet;

use nimbus_core::ids::WorkerId;
use nimbus_net::NodeId;

/// One fault injection, applied when the scheduler reaches decision
/// [`FaultEvent::at`]. Decision indices past the end of the run are skipped
/// (recorded as such in the trace), so plans survive shrinking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// The decision index at which to inject (0 = before the first delivery).
    pub at: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// The fault vocabulary of the simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Kill a worker abruptly: flip its kill switch, let its thread die
    /// without a goodbye, and sever it from the fabric (every peer gets the
    /// same `PeerDisconnected` notice a dead TCP peer produces, scheduled
    /// like any other message).
    Kill(WorkerId),
    /// Restart a previously killed worker under the same identity, driving
    /// the rejoin handshake (template reinstalls, checkpoint reload).
    Rejoin(WorkerId),
    /// Sever a driver client's session mid-job: its sends vanish, its
    /// blocked receive errors, and the controller observes the driver's
    /// disconnect (the "job dropped" path).
    DropJob(u32),
    /// Hold every message on one directed link for the next `decisions`
    /// scheduler decisions (a transient one-way delay / partial partition).
    DelayLink {
        /// Sending side of the held link.
        from: NodeId,
        /// Receiving side of the held link.
        to: NodeId,
        /// How many decisions the hold lasts.
        decisions: u32,
    },
}

impl FaultEvent {
    /// The issue-level `Disconnect(node)` vocabulary, mapped onto the
    /// concrete fault for the node's role: workers die ([`FaultKind::Kill`]),
    /// driver clients drop their job ([`FaultKind::DropJob`]).
    ///
    /// # Panics
    ///
    /// Panics for the controller or the classic driver node, which the
    /// harness does not disconnect (the cluster cannot outlive either).
    pub fn disconnect(at: u64, node: NodeId) -> Self {
        let kind = match node {
            NodeId::Worker(w) => FaultKind::Kill(w),
            NodeId::Client(c) => FaultKind::DropJob(c),
            other => panic!("cannot disconnect {other}"),
        };
        Self { at, kind }
    }
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            FaultKind::Kill(w) => write!(f, "@{} kill worker-{w}", self.at),
            FaultKind::Rejoin(w) => write!(f, "@{} rejoin worker-{w}", self.at),
            FaultKind::DropJob(c) => write!(f, "@{} drop job of client-{c}", self.at),
            FaultKind::DelayLink {
                from,
                to,
                decisions,
            } => {
                write!(f, "@{} delay link {from}->{to} for {decisions}", self.at)
            }
        }
    }
}

/// A complete, replayable schedule: seed, fault injections, and how much of
/// the seeded reordering chaos is applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedulePlan {
    /// Seed of the scheduler's decision stream. The stream is drawn
    /// identically whether or not a decision is chaotic (see
    /// [`SchedulePlan::chaos_at`]), so restricting chaos never shifts later
    /// draws — the prefix of an execution is stable under shrinking.
    pub seed: u64,
    /// Fault injections, sorted by [`FaultEvent::at`] (ties apply in order).
    pub faults: Vec<FaultEvent>,
    /// Which decisions take the seeded random choice instead of the calm
    /// default (first eligible link, no early timer). `None` means every
    /// decision is chaotic — the exploration default. `Some(set)` is what
    /// the shrinker produces: only the listed decisions stay random.
    pub chaos_at: Option<BTreeSet<u64>>,
}

impl SchedulePlan {
    /// A fully random plan with no injected faults.
    pub fn random(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
            chaos_at: None,
        }
    }

    /// A fully calm plan (FIFO delivery in link order, timers only when
    /// nothing is deliverable) with the given faults.
    pub fn calm(seed: u64, faults: Vec<FaultEvent>) -> Self {
        Self {
            seed,
            faults,
            chaos_at: Some(BTreeSet::new()),
        }
    }

    /// Adds a fault, keeping the list sorted by decision index.
    pub fn with_fault(mut self, at: u64, kind: FaultKind) -> Self {
        self.faults.push(FaultEvent { at, kind });
        self.faults.sort_by_key(|f| f.at);
        self
    }

    /// Whether the scheduler applies its random draw at `decision`.
    pub fn is_chaotic(&self, decision: u64) -> bool {
        match &self.chaos_at {
            None => true,
            Some(set) => set.contains(&decision),
        }
    }

    /// One-line human description (for failure reports and artifacts).
    /// Small chaos sets are listed in full so a shrunk plan's header alone
    /// is enough to reconstruct it.
    pub fn describe(&self) -> String {
        let chaos = match &self.chaos_at {
            None => "full".to_string(),
            Some(s) if s.is_empty() => "calm".to_string(),
            Some(s) if s.len() <= 32 => {
                let decisions: Vec<String> = s.iter().map(u64::to_string).collect();
                format!("@[{}]", decisions.join(","))
            }
            Some(s) => format!("{} decisions", s.len()),
        };
        let faults: Vec<String> = self.faults.iter().map(|f| f.to_string()).collect();
        format!(
            "seed={} chaos={} faults=[{}]",
            self.seed,
            chaos,
            faults.join("; ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disconnect_maps_roles() {
        let kill = FaultEvent::disconnect(3, NodeId::Worker(WorkerId(1)));
        assert_eq!(kill.kind, FaultKind::Kill(WorkerId(1)));
        let drop = FaultEvent::disconnect(9, NodeId::Client(2));
        assert_eq!(drop.kind, FaultKind::DropJob(2));
    }

    #[test]
    fn with_fault_keeps_order() {
        let plan = SchedulePlan::random(7)
            .with_fault(50, FaultKind::Kill(WorkerId(0)))
            .with_fault(
                10,
                FaultKind::DelayLink {
                    from: NodeId::Controller,
                    to: NodeId::Worker(WorkerId(0)),
                    decisions: 4,
                },
            );
        assert_eq!(plan.faults[0].at, 10);
        assert_eq!(plan.faults[1].at, 50);
    }

    #[test]
    fn chaos_membership() {
        let full = SchedulePlan::random(1);
        assert!(full.is_chaotic(0) && full.is_chaotic(999));
        let calm = SchedulePlan::calm(1, vec![]);
        assert!(!calm.is_chaotic(0));
        let mut set = BTreeSet::new();
        set.insert(4u64);
        let partial = SchedulePlan {
            chaos_at: Some(set),
            ..SchedulePlan::random(1)
        };
        assert!(partial.is_chaotic(4) && !partial.is_chaotic(5));
    }
}
