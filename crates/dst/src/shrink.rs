//! Plan shrinking: delta-debugging a failing [`SchedulePlan`] down to a
//! minimal reproduction.
//!
//! Two phases, both budget-bounded:
//!
//! 1. **Faults** — remove chunks of the injected fault list (largest chunks
//!    first) as long as *some* validation failure survives.
//! 2. **Chaos** — the failing run reports which decisions' random draws
//!    actually changed the schedule ([`SimReport::chaotic_effective`]); try
//!    the fully calm schedule first, then delta-debug that set. Because the
//!    scheduler draws its stream identically whether or not a decision is
//!    chaotic, restricting the set never shifts the remaining draws — the
//!    execution prefix before the first calmed decision is untouched.
//!
//! The result is a plan that still fails, usually with a handful of faults
//! and a few truly load-bearing reorderings — small enough to read, commit,
//! and replay forever.

use std::collections::BTreeSet;

use crate::harness::{run_plan, SimReport};
use crate::plan::SchedulePlan;
use crate::scenario::Scenario;
use crate::trace::SimTrace;

/// A minimized failing plan, with the failure it reproduces.
#[derive(Debug)]
pub struct ShrinkResult {
    /// The minimized plan (same seed as the input).
    pub plan: SchedulePlan,
    /// The validation failure the minimized plan reproduces.
    pub failure: String,
    /// The trace of the minimized plan's failing run.
    pub trace: SimTrace,
    /// How many simulated runs the shrink spent.
    pub runs: usize,
}

struct Checker<'a> {
    scenario: &'a Scenario,
    runs: usize,
    budget: usize,
}

struct Failure {
    message: String,
    trace: SimTrace,
    effective: BTreeSet<u64>,
}

impl Checker<'_> {
    /// Runs a candidate; `Some` iff it still fails validation (any failure
    /// counts — shrinking may legitimately shift the failure mode).
    fn fails(&mut self, candidate: &SchedulePlan) -> Option<Failure> {
        self.runs += 1;
        let report: SimReport = run_plan(self.scenario, candidate);
        match self.scenario.validate(candidate, &report) {
            Ok(()) => None,
            Err(message) => Some(Failure {
                message,
                trace: report.trace,
                effective: report.chaotic_effective,
            }),
        }
    }

    fn exhausted(&self) -> bool {
        self.runs >= self.budget
    }
}

/// One bounded delta-debugging pass over `items`: drop contiguous chunks
/// (largest first, halving) as long as `keep_failing` confirms the reduced
/// list still reproduces the failure. `keep_failing` returns `None` when the
/// run budget is exhausted; the best reduction so far is returned as-is.
fn ddmin<T: Clone>(
    mut items: Vec<T>,
    start_chunk: usize,
    mut keep_failing: impl FnMut(&[T]) -> Option<bool>,
) -> Vec<T> {
    let mut chunk = start_chunk.min(items.len());
    while chunk >= 1 {
        let mut start = 0;
        while start < items.len() {
            let mut candidate = items.clone();
            let end = (start + chunk).min(candidate.len());
            candidate.drain(start..end);
            match keep_failing(&candidate) {
                None => return items,
                // Same position now holds the next chunk; don't advance.
                Some(true) => items = candidate,
                Some(false) => start += chunk,
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    items
}

/// Minimizes a failing plan. Returns `None` if the input plan does not
/// actually fail (nothing to shrink). `budget` caps the total number of
/// simulated runs spent (the input confirmation run included).
pub fn shrink(scenario: &Scenario, plan: &SchedulePlan, budget: usize) -> Option<ShrinkResult> {
    let mut checker = Checker {
        scenario,
        runs: 0,
        budget,
    };
    let mut best = plan.clone();
    let mut failure = checker.fails(&best)?;

    // Phase 1: drop fault chunks, largest first.
    let faults = best.faults.clone();
    let start_chunk = faults.len();
    let kept_faults = ddmin(faults, start_chunk, |candidate_faults| {
        if checker.exhausted() {
            return None;
        }
        let candidate = SchedulePlan {
            faults: candidate_faults.to_vec(),
            ..best.clone()
        };
        match checker.fails(&candidate) {
            Some(f) => {
                failure = f;
                Some(true)
            }
            None => Some(false),
        }
    });
    best.faults = kept_faults;

    // Phase 2: calm the schedule down to the load-bearing reorderings.
    if best.chaos_at.is_none() && !checker.exhausted() {
        let calm = SchedulePlan {
            chaos_at: Some(BTreeSet::new()),
            ..best.clone()
        };
        if let Some(f) = checker.fails(&calm) {
            best = calm;
            failure = f;
        } else {
            let effective: Vec<u64> = failure.effective.iter().copied().collect();
            let start_chunk = effective.len().max(1).div_ceil(2);
            let kept = ddmin(effective, start_chunk, |candidate_set| {
                if checker.exhausted() {
                    return None;
                }
                let candidate = SchedulePlan {
                    chaos_at: Some(candidate_set.iter().copied().collect()),
                    ..best.clone()
                };
                match checker.fails(&candidate) {
                    Some(f) => {
                        failure = f;
                        Some(true)
                    }
                    None => Some(false),
                }
            });
            best = SchedulePlan {
                chaos_at: Some(kept.into_iter().collect()),
                ..best
            };
        }
    }

    Some(ShrinkResult {
        plan: best,
        failure: failure.message,
        trace: failure.trace,
        runs: checker.runs,
    })
}

#[cfg(test)]
mod tests {
    use super::ddmin;

    /// Runs `ddmin` with a synthetic failure predicate and a run budget,
    /// returning the reduction and how many candidate evaluations it spent.
    fn reduce(items: Vec<u32>, fails: impl Fn(&[u32]) -> bool, budget: usize) -> (Vec<u32>, usize) {
        let mut runs = 0;
        let start = items.len();
        let out = ddmin(items, start, |candidate| {
            if runs >= budget {
                return None;
            }
            runs += 1;
            Some(fails(candidate))
        });
        (out, runs)
    }

    #[test]
    fn finds_the_minimal_pair() {
        let (out, _) = reduce(
            (0..16).collect(),
            |c| c.contains(&3) && c.contains(&11),
            10_000,
        );
        assert_eq!(out, vec![3, 11]);
    }

    #[test]
    fn unconditional_failure_reduces_to_empty_in_one_run() {
        let (out, runs) = reduce((0..8).collect(), |_| true, 10_000);
        assert!(out.is_empty());
        // The first candidate (drop everything) already fails; the inner
        // loop then has nothing left to try at any chunk size.
        assert_eq!(runs, 1);
    }

    #[test]
    fn exhausted_budget_returns_the_best_so_far() {
        let (out, runs) = reduce(vec![1, 2, 3], |_| true, 0);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(runs, 0);
    }

    #[test]
    fn singleton_failure_survives_reduction() {
        let (out, _) = reduce((0..7).collect(), |c| c.contains(&6), 10_000);
        assert_eq!(out, vec![6]);
    }
}
