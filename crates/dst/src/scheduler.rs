//! The seeded simulation scheduler: owner of every delivery, timeout, and
//! clock advance in a simulated cluster.
//!
//! Nodes stay ordinary threads running unmodified controller / worker /
//! driver code, but the [`DeliveryHook`] installed on the in-process
//! [`Network`] funnels all their nondeterminism here:
//!
//! * every send parks its envelope in a per-link FIFO instead of the
//!   destination inbox;
//! * every blocking receive that finds an empty inbox parks its *thread* in
//!   [`SimScheduler::on_empty_recv`] until the scheduler grants an outcome;
//! * timeouts are virtual — the scheduler fires one by advancing the shared
//!   [`VirtualClock`] and granting `TimedOut`, never by letting wall time
//!   pass.
//!
//! The harness only takes decisions at **quiescence** — when every live node
//! is parked — so exactly one node runs between decisions and the execution
//! is logically single-threaded: same plan in, same event trace out.
//!
//! Per-link FIFO is preserved (both real fabrics guarantee it); everything
//! across links is up to the scheduler, which is exactly the reordering
//! freedom a real network has.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nimbus_core::clock::VirtualClock;
use nimbus_net::{DeliveryHook, Envelope, HookWake, Message, NetResult, NodeId};
use parking_lot::{Condvar, Mutex};

use crate::trace::TraceEvent;

/// How long a simulated node may run between decisions before the harness
/// declares the simulation wedged (wall-clock watchdog; a correct node under
/// test always blocks again quickly since task work is synthetic).
const WEDGE_TIMEOUT: Duration = Duration::from_secs(60);

/// Rounds a timeout to the nearest whole millisecond (see the deadline
/// comment in `on_empty_recv`).
fn quantize_ms(t: Duration) -> Duration {
    let nanos = u64::try_from(t.as_nanos()).unwrap_or(u64::MAX);
    Duration::from_millis((nanos + 500_000) / 1_000_000)
}

/// Where a node's thread currently stands, as the scheduler sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeState {
    /// The thread is executing (or has been granted a wake and will be).
    Running,
    /// The thread is parked in [`SimScheduler::on_empty_recv`].
    Blocked,
    /// The thread dropped its endpoint (exited).
    Exited,
}

struct NodeSlot {
    state: NodeState,
    /// Virtual deadline of the receive the node is blocked in, if it gave one.
    deadline: Option<Instant>,
    /// Wake grant slot, filled by the scheduler, consumed by the node.
    wake: Option<HookWake>,
    /// Severed from the fabric: its non-transport sends are dropped and its
    /// blocked receives get `Disconnected` grants.
    severed: bool,
}

impl NodeSlot {
    fn fresh() -> Self {
        Self {
            state: NodeState::Running,
            deadline: None,
            wake: None,
            severed: false,
        }
    }
}

/// A directed link between two nodes.
pub type LinkKey = (NodeId, NodeId);

pub(crate) struct SchedState {
    nodes: BTreeMap<NodeId, NodeSlot>,
    /// Per-link FIFO queues of undelivered messages.
    links: BTreeMap<LinkKey, VecDeque<Envelope>>,
    /// Held links: messages stay queued for this many more decisions.
    masks: BTreeMap<LinkKey, u64>,
    events: Vec<TraceEvent>,
    decisions: u64,
}

/// What the harness sees when it inspects a quiescent cluster.
pub(crate) struct Quiescent {
    /// Links with at least one deliverable (unmasked) message, sorted.
    pub eligible: Vec<LinkKey>,
    /// The earliest armed virtual timeout, if any: `(deadline, node)`.
    pub earliest_timer: Option<(Instant, NodeId)>,
    /// Whether any node is still alive (blocked).
    pub any_live: bool,
}

/// The seeded scheduler shared between the harness and every hooked endpoint.
pub struct SimScheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
    /// The virtual clock all simulated timeouts are measured on (shared with
    /// the controller via its `ControllerConfig::clock`).
    pub clock: Arc<VirtualClock>,
}

impl SimScheduler {
    /// Creates a scheduler with a fresh virtual clock.
    pub fn new(clock: Arc<VirtualClock>) -> Self {
        Self {
            state: Mutex::new(SchedState {
                nodes: BTreeMap::new(),
                links: BTreeMap::new(),
                masks: BTreeMap::new(),
                events: Vec::new(),
                decisions: 0,
            }),
            cv: Condvar::new(),
            clock,
        }
    }

    /// Registers a node with the scheduler (state `Running`). Must happen
    /// before the node's endpoint is registered on the network, so its very
    /// first send is accounted.
    pub fn add_node(&self, node: NodeId) {
        let mut st = self.state.lock();
        st.nodes.insert(node, NodeSlot::fresh());
    }

    /// Resets a node slot for a rejoin: alive again, unsevered.
    pub(crate) fn reset_node(&self, node: NodeId) {
        let mut st = self.state.lock();
        st.nodes.insert(node, NodeSlot::fresh());
    }

    /// Current state of a node (`None` if never added).
    pub fn node_state(&self, node: NodeId) -> Option<NodeState> {
        self.state.lock().nodes.get(&node).map(|s| s.state)
    }

    /// Blocks until no node is `Running` (every live node parked in a
    /// receive, every other node exited).
    ///
    /// # Panics
    ///
    /// Panics if a node runs for more than the wedge timeout without
    /// blocking — a real livelock in the code under test.
    pub fn wait_quiescence(&self) {
        let mut st = self.state.lock();
        loop {
            if st.nodes.values().all(|s| s.state != NodeState::Running) {
                return;
            }
            if self.cv.wait_for(&mut st, WEDGE_TIMEOUT).timed_out() {
                let running: Vec<NodeId> = st
                    .nodes
                    .iter()
                    .filter(|(_, s)| s.state == NodeState::Running)
                    .map(|(n, _)| *n)
                    .collect();
                panic!("simulation wedged: {running:?} ran {WEDGE_TIMEOUT:?} without blocking");
            }
        }
    }

    /// Blocks until `node` has exited (used by the kill fault, which must
    /// observe the death before synthesizing disconnect notices).
    pub(crate) fn wait_exited(&self, node: NodeId) {
        let mut st = self.state.lock();
        loop {
            match st.nodes.get(&node) {
                None => return,
                Some(s) if s.state == NodeState::Exited => return,
                Some(_) => {}
            }
            if self.cv.wait_for(&mut st, WEDGE_TIMEOUT).timed_out() {
                panic!("killed node {node} failed to exit within {WEDGE_TIMEOUT:?}");
            }
        }
    }

    /// Runs `f` with the locked scheduler state. Internal harness plumbing.
    pub(crate) fn with_state<R>(&self, f: impl FnOnce(&mut SchedState) -> R) -> R {
        let mut st = self.state.lock();
        f(&mut st)
    }

    /// Grants `wake` to a parked node and marks it running. Caller must hold
    /// the state via [`SimScheduler::with_state`].
    pub(crate) fn grant_locked(&self, st: &mut SchedState, node: NodeId, wake: HookWake) {
        let slot = st.nodes.get_mut(&node).expect("grant to unknown node");
        debug_assert_eq!(slot.state, NodeState::Blocked, "grant to unparked {node}");
        slot.wake = Some(wake);
        slot.state = NodeState::Running;
        slot.deadline = None;
        self.cv.notify_all();
    }

    /// Marks a node severed. Caller holds the state.
    pub(crate) fn sever_locked(&self, st: &mut SchedState, node: NodeId) {
        if let Some(slot) = st.nodes.get_mut(&node) {
            slot.severed = true;
        }
    }
}

impl SchedState {
    pub(crate) fn decisions(&self) -> u64 {
        self.decisions
    }

    pub(crate) fn bump_decisions(&mut self) {
        self.decisions += 1;
        // Held links thaw as decisions pass.
        self.masks.retain(|_, left| {
            *left = left.saturating_sub(1);
            *left > 0
        });
    }

    pub(crate) fn push_event(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    pub(crate) fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    pub(crate) fn mask_link(&mut self, link: LinkKey, decisions: u64) {
        self.masks.insert(link, decisions);
    }

    /// True if any held link still has traffic queued behind its mask —
    /// deliveries that will become eligible once enough decisions pass.
    pub(crate) fn masked_traffic_pending(&self) -> bool {
        self.masks
            .keys()
            .any(|k| self.links.get(k).is_some_and(|q| !q.is_empty()))
    }

    pub(crate) fn node_state(&self, node: NodeId) -> Option<NodeState> {
        self.nodes.get(&node).map(|s| s.state)
    }

    pub(crate) fn is_blocked(&self, node: NodeId) -> bool {
        self.node_state(node) == Some(NodeState::Blocked)
    }

    pub(crate) fn all_exited(&self) -> bool {
        self.nodes.values().all(|s| s.state == NodeState::Exited)
    }

    /// Blocked-and-severed nodes that need a `Disconnected` grant to get
    /// unstuck (their next receive can never be satisfied).
    pub(crate) fn severed_blocked(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|(_, s)| s.state == NodeState::Blocked && s.severed)
            .map(|(n, _)| *n)
            .collect()
    }

    /// All blocked nodes (the teardown path unsticks every one).
    pub(crate) fn blocked_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|(_, s)| s.state == NodeState::Blocked)
            .map(|(n, _)| *n)
            .collect()
    }

    /// Drops every queued message addressed to an exited node (packets in
    /// flight to a dead process), tracing each drop.
    pub(crate) fn purge_dead_destinations(&mut self) {
        let dead: Vec<LinkKey> = self
            .links
            .iter()
            .filter(|((_, to), q)| {
                !q.is_empty() && self.nodes.get(to).map(|s| s.state) == Some(NodeState::Exited)
            })
            .map(|(k, _)| *k)
            .collect();
        for key in dead {
            if let Some(q) = self.links.get_mut(&key) {
                for env in q.drain(..) {
                    self.events.push(TraceEvent::DroppedDeadDestination {
                        from: env.from,
                        to: env.to,
                        tag: env.message.tag(),
                    });
                }
            }
        }
    }

    /// Drops every queued message on links from or to `node` (used when a
    /// node is severed: nothing queued for it can arrive, and — for
    /// in-flight messages *to* it — nothing can be delivered to a dead
    /// process).
    pub(crate) fn purge_links_to(&mut self, node: NodeId) {
        let keys: Vec<LinkKey> = self
            .links
            .iter()
            .filter(|((_, to), q)| *to == node && !q.is_empty())
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            if let Some(q) = self.links.get_mut(&key) {
                for env in q.drain(..) {
                    self.events.push(TraceEvent::DroppedDeadDestination {
                        from: env.from,
                        to: env.to,
                        tag: env.message.tag(),
                    });
                }
            }
        }
    }

    /// Pops the head of a link queue.
    pub(crate) fn pop_link(&mut self, link: LinkKey) -> Option<Envelope> {
        self.links.get_mut(&link).and_then(VecDeque::pop_front)
    }

    /// The quiescent view the harness decides from.
    pub(crate) fn quiescent_view(&self) -> Quiescent {
        let eligible: Vec<LinkKey> = self
            .links
            .iter()
            .filter(|(key, q)| {
                if q.is_empty() || self.masks.contains_key(*key) {
                    return false;
                }
                // Destination must be parked, alive, and reachable; exited
                // destinations are purged before this view is built, and
                // severed ones drain via their disconnect grant instead.
                self.nodes
                    .get(&key.1)
                    .is_some_and(|s| s.state == NodeState::Blocked && !s.severed)
            })
            .map(|(k, _)| *k)
            .collect();
        let earliest_timer = self
            .nodes
            .iter()
            .filter_map(|(n, s)| match (s.state, s.deadline) {
                (NodeState::Blocked, Some(d)) if !s.severed => Some((d, *n)),
                _ => None,
            })
            .min();
        let any_live = self.nodes.values().any(|s| s.state != NodeState::Exited);
        Quiescent {
            eligible,
            earliest_timer,
            any_live,
        }
    }
}

impl DeliveryHook for SimScheduler {
    fn on_send(&self, envelope: Envelope) -> NetResult<()> {
        let mut st = self.state.lock();
        let severed = st
            .nodes
            .get(&envelope.from)
            .map(|s| s.severed)
            .unwrap_or(false);
        // Transport events are fabric-synthesized (disconnect notices), never
        // sent by the severed node's own thread — they must get through or
        // no peer would ever observe the death.
        if severed && !matches!(envelope.message, Message::Transport(_)) {
            st.events.push(TraceEvent::DroppedFromSevered {
                from: envelope.from,
                to: envelope.to,
                tag: envelope.message.tag(),
            });
            return Ok(());
        }
        st.links
            .entry((envelope.from, envelope.to))
            .or_default()
            .push_back(envelope);
        Ok(())
    }

    fn on_empty_recv(&self, node: NodeId, timeout: Option<Duration>) -> HookWake {
        let mut st = self.state.lock();
        {
            let slot = st
                .nodes
                .get_mut(&node)
                .unwrap_or_else(|| panic!("unknown sim node {node} blocked"));
            slot.state = NodeState::Blocked;
            // Quantize to whole milliseconds: some callers derive their
            // timeout by subtracting real `Instant::now()` readings, and the
            // sub-millisecond wall jitter in that arithmetic must not leak
            // into virtual deadlines (it would make timer order run-
            // dependent). Every intentional timeout in the workspace is a
            // whole number of milliseconds.
            slot.deadline = timeout.map(|t| self.clock.now() + quantize_ms(t));
        }
        self.cv.notify_all();
        loop {
            if let Some(wake) = st.nodes.get_mut(&node).and_then(|s| s.wake.take()) {
                // The scheduler already marked the node Running and cleared
                // its deadline when granting.
                return wake;
            }
            self.cv.wait(&mut st);
        }
    }

    fn on_node_exit(&self, node: NodeId) {
        let mut st = self.state.lock();
        if let Some(slot) = st.nodes.get_mut(&node) {
            slot.state = NodeState::Exited;
            slot.deadline = None;
        }
        st.events.push(TraceEvent::NodeExited { node });
        self.cv.notify_all();
    }
}
