//! Deterministic simulation testing (DST) for the Nimbus control plane.
//!
//! Runs a full cluster — controller, workers, driver sessions — on the
//! in-process fabric with every source of nondeterminism owned by a seeded
//! [`SimScheduler`]: message delivery order, timeout firing, virtual time,
//! and fault injection (worker kills, rejoins, dropped jobs, delayed links).
//! The same [`SchedulePlan`] always produces the same event trace and the
//! same job outputs, so a failing seed is a *committable regression test*,
//! not a flake report.
//!
//! The pieces:
//!
//! * [`SchedulePlan`] — seed + fault list + chaos set; the whole input.
//! * [`SimScheduler`] — the [`DeliveryHook`](nimbus_net::DeliveryHook) that
//!   parks node threads and replays the plan's choices.
//! * [`SimCluster`] / [`run_plan`] — builds the cluster, steps the scheduler
//!   to completion, validates outputs against the scenario's closed form.
//! * [`Scenario`] — quickstart / multijob / churn topologies with exact
//!   expected outputs.
//! * [`shrink`] — delta-debugs a failing plan down to a minimal fault list
//!   and chaos set.
//! * [`SimTrace`] — the replayable record; rendered traces are the CI
//!   failure artifact.

#![warn(missing_docs)]

pub mod harness;
pub mod plan;
pub mod scenario;
pub mod scheduler;
pub mod shrink;
pub mod trace;

pub use harness::{run_plan, DriverOutput, SimCluster, SimReport};
pub use plan::{FaultEvent, FaultKind, SchedulePlan};
pub use scenario::Scenario;
pub use scheduler::{NodeState, SimScheduler};
pub use shrink::{shrink, ShrinkResult};
pub use trace::{SimOutcome, SimTrace, TraceEvent};
