//! Experiment drivers: one function per figure of the paper's evaluation.
//!
//! Each driver returns plain data rows so the benchmark harness (and tests)
//! can print, compare, or plot them. The paper's published values are
//! embedded alongside the simulated ones so EXPERIMENTS.md can report
//! paper-vs-measured for every figure.

use crate::control::{simulate_iteration, ControlPlane, IterationBreakdown};
use crate::costs::CostProfile;
use crate::model::{ClusterModel, WorkloadModel};

/// One data point of a figure: an x value plus named series values.
#[derive(Clone, Debug, PartialEq)]
pub struct Row {
    /// The x coordinate (worker count, iteration index, or seconds).
    pub x: f64,
    /// `(series name, value)` pairs.
    pub values: Vec<(&'static str, f64)>,
}

impl Row {
    /// Returns the value of a named series.
    pub fn get(&self, series: &str) -> Option<f64> {
        self.values
            .iter()
            .find(|(n, _)| *n == series)
            .map(|(_, v)| *v)
    }
}

fn seconds(breakdown: &IterationBreakdown) -> (f64, f64, f64) {
    (
        breakdown.total_us / 1e6,
        breakdown.compute_us / 1e6,
        breakdown.control_us / 1e6,
    )
}

/// Figure 1: Spark 2.0 MLlib logistic regression, 30–100 workers. Completion
/// time grows with parallelism because the control plane outstrips the
/// computation gains.
pub fn fig1_spark_bottleneck(profile: &CostProfile) -> Vec<Row> {
    let workload = WorkloadModel::mllib_logistic_regression();
    (30..=100)
        .step_by(10)
        .map(|workers| {
            let b = simulate_iteration(
                &ControlPlane::spark_like(profile),
                &ClusterModel::new(workers),
                &workload,
            );
            let (total, compute, control) = seconds(&b);
            Row {
                x: workers as f64,
                values: vec![
                    ("iteration_s", total),
                    ("computation_s", compute),
                    ("control_s", control),
                ],
            }
        })
        .collect()
}

/// Figure 7: iteration time of logistic regression (`kmeans = false`) or
/// k-means (`kmeans = true`) for Spark-opt, Naiad-opt, and Nimbus at 20, 50,
/// and 100 workers, with the control/computation split.
pub fn fig7_iteration_time(profile: &CostProfile, kmeans: bool) -> Vec<Row> {
    let workload = if kmeans {
        WorkloadModel::kmeans()
    } else {
        WorkloadModel::logistic_regression()
    };
    [20u32, 50, 100]
        .into_iter()
        .map(|workers| {
            let cluster = ClusterModel::new(workers);
            let spark = simulate_iteration(&ControlPlane::spark_like(profile), &cluster, &workload);
            let naiad = simulate_iteration(
                &ControlPlane::naiad_steady(200.0, workers),
                &cluster,
                &workload,
            );
            let nimbus = simulate_iteration(
                &ControlPlane::templates_steady(profile),
                &cluster,
                &workload,
            );
            Row {
                x: workers as f64,
                values: vec![
                    ("spark_opt_s", spark.total_us / 1e6),
                    ("naiad_opt_s", naiad.total_us / 1e6),
                    ("nimbus_s", nimbus.total_us / 1e6),
                    ("computation_s", nimbus.compute_us / 1e6),
                    ("spark_control_s", spark.control_us / 1e6),
                    ("nimbus_control_s", nimbus.control_us / 1e6),
                ],
            }
        })
        .collect()
}

/// Figure 8: task throughput of Nimbus and Spark as the worker count grows.
pub fn fig8_task_throughput(profile: &CostProfile) -> Vec<Row> {
    let workload = WorkloadModel::logistic_regression();
    (10..=100)
        .step_by(10)
        .map(|workers| {
            let cluster = ClusterModel::new(workers);
            let spark = simulate_iteration(&ControlPlane::spark_like(profile), &cluster, &workload);
            let nimbus = simulate_iteration(
                &ControlPlane::templates_steady(profile),
                &cluster,
                &workload,
            );
            Row {
                x: workers as f64,
                values: vec![
                    (
                        "spark_tasks_per_s",
                        spark
                            .tasks_per_second
                            .min(profile.centralized_max_throughput),
                    ),
                    ("nimbus_tasks_per_s", nimbus.tasks_per_second),
                ],
            }
        })
        .collect()
}

/// Figure 9: a 35-iteration timeline of logistic regression on 100 workers
/// while templates are enabled mid-run, 50 workers are revoked, and later
/// returned. Returns one row per iteration with the annotation encoded as a
/// phase index:
/// 0 = templates disabled, 1 = installing, 2 = steady state,
/// 3 = allocation change (regeneration), 4 = validation-only.
pub fn fig9_dynamic_scheduling(profile: &CostProfile) -> Vec<Row> {
    let workload = WorkloadModel::logistic_regression();
    let full = ClusterModel::new(100);
    let half = ClusterModel::new(50);
    let tasks_full = workload.tasks(100) as f64;

    let mut rows = Vec::new();
    for iteration in 1..=35u32 {
        let (cluster, plane, phase) = match iteration {
            1..=9 => (&full, ControlPlane::nimbus_without_templates(profile), 0.0),
            // Iteration 10: still scheduled per task, plus the one-time cost
            // of installing the controller template.
            10 => (
                &full,
                ControlPlane::CentralizedPerTask {
                    per_task_us: profile.nimbus_schedule_task
                        + profile.install_controller_template_per_task,
                    max_throughput: 1e6
                        / (profile.nimbus_schedule_task
                            + profile.install_controller_template_per_task),
                },
                1.0,
            ),
            // Iteration 11: generating the controller half of the worker
            // templates while still dispatching tasks individually.
            11 => (
                &full,
                ControlPlane::CentralizedPerTask {
                    per_task_us: profile.nimbus_schedule_task
                        + profile.install_worker_template_controller_per_task,
                    max_throughput: 1e6
                        / (profile.nimbus_schedule_task
                            + profile.install_worker_template_controller_per_task),
                },
                1.0,
            ),
            // Iteration 12: installing the worker halves on the workers.
            12 => (
                &full,
                ControlPlane::ExecutionTemplates {
                    per_task_us: profile.instantiate_controller_per_task
                        + profile.instantiate_worker_validated_per_task,
                    one_off_us: tasks_full * profile.install_worker_template_worker_per_task,
                },
                1.0,
            ),
            13..=19 => (&full, ControlPlane::templates_steady(profile), 2.0),
            // Iteration 20: 50 workers revoked; the controller regenerates
            // worker templates for the remaining 50, dispatching per task.
            20 => (&half, ControlPlane::nimbus_without_templates(profile), 3.0),
            21 => (
                &half,
                ControlPlane::ExecutionTemplates {
                    per_task_us: profile.instantiate_controller_per_task
                        + profile.instantiate_worker_validated_per_task,
                    one_off_us: workload.tasks(50) as f64
                        * profile.install_worker_template_worker_per_task,
                },
                3.0,
            ),
            22..=29 => (&half, ControlPlane::templates_steady(profile), 2.0),
            // Iteration 30: workers return; cached templates only need an
            // explicit validation pass.
            30 => (&full, ControlPlane::templates_validated(profile), 4.0),
            _ => (&full, ControlPlane::templates_steady(profile), 2.0),
        };
        let b = simulate_iteration(&plane, cluster, &workload);
        let (total, compute, control) = seconds(&b);
        rows.push(Row {
            x: iteration as f64,
            values: vec![
                ("iteration_s", total),
                ("computation_s", compute),
                ("control_s", control),
                ("phase", phase),
                ("workers", cluster.workers as f64),
            ],
        });
    }
    rows
}

/// Figure 10: logistic regression over 100 workers with 5% of tasks migrated
/// every 5 iterations. Returns cumulative completion time (seconds) against
/// iteration number for Nimbus (edits) and Naiad (full re-installation).
pub fn fig10_migration(profile: &CostProfile) -> Vec<Row> {
    let workload = WorkloadModel::logistic_regression();
    let cluster = ClusterModel::new(100);
    let steady_nimbus = simulate_iteration(
        &ControlPlane::templates_steady(profile),
        &cluster,
        &workload,
    );
    let steady_naiad =
        simulate_iteration(&ControlPlane::naiad_steady(200.0, 100), &cluster, &workload);
    let migrated_tasks = (workload.tasks(100) as f64 * 0.05).round();

    let mut nimbus_t = 0.0;
    let mut naiad_t = 0.0;
    let mut rows = Vec::new();
    for iteration in 1..=20u32 {
        let migrate = iteration % 5 == 0;
        nimbus_t += steady_nimbus.total_us / 1e6;
        naiad_t += steady_naiad.total_us / 1e6;
        if migrate {
            // Nimbus applies one edit per migrated task; Naiad reinstalls the
            // whole dataflow (Table 3).
            nimbus_t += migrated_tasks * profile.single_edit / 1e6;
            naiad_t += profile.dataflow_change / 1e6;
        }
        rows.push(Row {
            x: iteration as f64,
            values: vec![("nimbus_elapsed_s", nimbus_t), ("naiad_elapsed_s", naiad_t)],
        });
    }
    rows
}

/// Figure 11: outer-loop iteration time of the particle-levelset water
/// simulation on 64 workers, for hand-tuned MPI, Nimbus with templates, and
/// Nimbus without templates.
pub fn fig11_water_simulation(profile: &CostProfile) -> Vec<Row> {
    let workload = WorkloadModel::water_simulation_frame();
    let cluster = ClusterModel::new(64);
    let mpi = simulate_iteration(&ControlPlane::ApplicationMpi, &cluster, &workload);
    // With templates, the simulation's dynamic control flow means a mix of
    // auto-validated and fully-validated instantiations plus load-balancing
    // copies; model it as the validated path.
    let nimbus = simulate_iteration(
        &ControlPlane::templates_validated(profile),
        &cluster,
        &workload,
    );
    let without = simulate_iteration(
        &ControlPlane::nimbus_without_templates(profile),
        &cluster,
        &workload,
    );
    vec![
        Row {
            x: 0.0,
            values: vec![
                ("mpi_s", mpi.total_us / 1e6),
                ("nimbus_s", nimbus.total_us / 1e6),
                ("nimbus_without_templates_s", without.total_us / 1e6),
            ],
        },
        Row {
            x: 1.0,
            values: vec![
                ("paper_mpi_s", 31.7),
                ("paper_nimbus_s", 36.5),
                ("paper_nimbus_without_templates_s", 196.8),
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_completion_grows_while_compute_shrinks() {
        let rows = fig1_spark_bottleneck(&CostProfile::paper());
        assert_eq!(rows.len(), 8);
        let first = &rows[0];
        let last = &rows[rows.len() - 1];
        assert!(last.get("computation_s").unwrap() < first.get("computation_s").unwrap());
        assert!(last.get("iteration_s").unwrap() > first.get("iteration_s").unwrap());
        assert!((1.0..2.2).contains(&last.get("iteration_s").unwrap()));
    }

    #[test]
    fn fig7_nimbus_and_naiad_scale_while_spark_inverts() {
        for kmeans in [false, true] {
            let rows = fig7_iteration_time(&CostProfile::paper(), kmeans);
            let at20 = &rows[0];
            let at100 = &rows[2];
            assert!(at100.get("nimbus_s").unwrap() < at20.get("nimbus_s").unwrap());
            assert!(at100.get("spark_opt_s").unwrap() > at20.get("spark_opt_s").unwrap());
            // Paper: Spark is 15–23x slower than Nimbus at 100 workers.
            let ratio = at100.get("spark_opt_s").unwrap() / at100.get("nimbus_s").unwrap();
            assert!(ratio > 10.0, "ratio {ratio}");
        }
    }

    #[test]
    fn fig8_spark_saturates_nimbus_grows() {
        let rows = fig8_task_throughput(&CostProfile::paper());
        let last = rows.last().unwrap();
        assert!(last.get("spark_tasks_per_s").unwrap() <= 6_000.0 + 1.0);
        assert!(last.get("nimbus_tasks_per_s").unwrap() > 100_000.0);
        // Superlinear growth of the task rate with workers.
        let mid = &rows[4];
        assert!(
            last.get("nimbus_tasks_per_s").unwrap() > 2.0 * mid.get("nimbus_tasks_per_s").unwrap()
        );
    }

    #[test]
    fn fig9_timeline_shape() {
        let rows = fig9_dynamic_scheduling(&CostProfile::paper());
        assert_eq!(rows.len(), 35);
        let before_templates = rows[5].get("iteration_s").unwrap();
        let install = rows[9].get("iteration_s").unwrap();
        let steady = rows[15].get("iteration_s").unwrap();
        let evicted_steady = rows[25].get("iteration_s").unwrap();
        let restored = rows[32].get("iteration_s").unwrap();
        assert!(before_templates > 10.0 * steady);
        assert!(install > before_templates);
        assert!((1.25..3.0).contains(&(evicted_steady / steady)));
        assert!((restored - steady).abs() / steady < 0.2);
    }

    #[test]
    fn fig10_nimbus_finishes_much_faster_than_naiad() {
        let rows = fig10_migration(&CostProfile::paper());
        let last = rows.last().unwrap();
        let nimbus = last.get("nimbus_elapsed_s").unwrap();
        let naiad = last.get("naiad_elapsed_s").unwrap();
        assert!(naiad / nimbus > 1.5, "naiad {naiad} nimbus {nimbus}");
    }

    #[test]
    fn fig11_orderings_match_paper() {
        let rows = fig11_water_simulation(&CostProfile::paper());
        let sim = &rows[0];
        let mpi = sim.get("mpi_s").unwrap();
        let nimbus = sim.get("nimbus_s").unwrap();
        let without = sim.get("nimbus_without_templates_s").unwrap();
        assert!(nimbus > mpi);
        assert!(
            nimbus < mpi * 1.3,
            "templates stay within ~15-30% of MPI: {nimbus} vs {mpi}"
        );
        assert!(
            without > 3.0 * mpi,
            "without templates is several times slower"
        );
    }
}
