//! # nimbus-sim
//!
//! A cluster simulator for the execution-templates evaluation. Per-task
//! control-plane costs (the paper's Tables 1–3, or constants measured by the
//! Criterion microbenchmarks on this machine) are composed with a cluster and
//! workload model to regenerate the paper's scale-out figures (Figures 1 and
//! 7–11) — experiments that would otherwise need a 100-node EC2 cluster.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod control;
pub mod costs;
pub mod experiments;
pub mod model;

pub use control::{simulate_iteration, ControlPlane, IterationBreakdown};
pub use costs::CostProfile;
pub use experiments::Row;
pub use model::{ClusterModel, WorkloadModel};
