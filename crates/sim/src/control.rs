//! Control-plane models and the per-iteration dispatch simulation.
//!
//! One iteration is simulated by replaying the controller's dispatch behaviour
//! against per-worker queues: a centralized per-task scheduler feeds tasks one
//! at a time (bounded by its dispatch cost and maximum throughput), a
//! template-driven controller sends one instantiation message per worker, and
//! a static dataflow plane sends nothing at all once installed. Workers drain
//! their queues in parallel; the non-parallelizable reduction tail runs after
//! the slowest worker finishes.

use serde::{Deserialize, Serialize};

use crate::costs::CostProfile;
use crate::model::{ClusterModel, WorkloadModel};

/// The control-plane discipline driving an iteration.
#[derive(Clone, Debug, PartialEq)]
pub enum ControlPlane {
    /// A Spark-like centralized scheduler that dispatches every task
    /// individually from the controller.
    CentralizedPerTask {
        /// Cost of scheduling one task at the controller, in microseconds.
        per_task_us: f64,
        /// Saturation throughput in tasks per second.
        max_throughput: f64,
    },
    /// A Nimbus controller using execution templates.
    ExecutionTemplates {
        /// Per-task instantiation cost at the controller and worker.
        per_task_us: f64,
        /// One-off cost added this iteration (template installation, edits,
        /// patches), in microseconds.
        one_off_us: f64,
    },
    /// A Naiad/TensorFlow-like static dataflow installed on the workers.
    StaticDataflow {
        /// One-off cost added this iteration (full plan re-installation).
        one_off_us: f64,
        /// Fixed per-iteration coordination overhead, in microseconds.
        per_iteration_us: f64,
    },
    /// Application-level MPI messaging: no control plane during execution.
    ApplicationMpi,
}

impl ControlPlane {
    /// Spark-opt: the paper's Spark 2.0 baseline with C++-equivalent tasks.
    pub fn spark_like(profile: &CostProfile) -> Self {
        ControlPlane::CentralizedPerTask {
            per_task_us: profile.spark_schedule_task,
            max_throughput: profile.centralized_max_throughput,
        }
    }

    /// Nimbus without templates: the same centralized scheduler Nimbus falls
    /// back to when templates are disabled.
    pub fn nimbus_without_templates(profile: &CostProfile) -> Self {
        ControlPlane::CentralizedPerTask {
            per_task_us: profile.nimbus_schedule_task,
            max_throughput: 1_000_000.0 / profile.nimbus_schedule_task,
        }
    }

    /// Nimbus with templates in the auto-validated steady state.
    pub fn templates_steady(profile: &CostProfile) -> Self {
        ControlPlane::ExecutionTemplates {
            per_task_us: profile.instantiate_controller_per_task
                + profile.instantiate_worker_auto_per_task,
            one_off_us: 0.0,
        }
    }

    /// Nimbus with templates when the instantiation needs full validation.
    pub fn templates_validated(profile: &CostProfile) -> Self {
        ControlPlane::ExecutionTemplates {
            per_task_us: profile.instantiate_controller_per_task
                + profile.instantiate_worker_validated_per_task,
            one_off_us: 0.0,
        }
    }

    /// Naiad-opt in the steady state (plan already installed).
    pub fn naiad_steady(per_worker_callback_us: f64, workers: u32) -> Self {
        ControlPlane::StaticDataflow {
            one_off_us: 0.0,
            per_iteration_us: per_worker_callback_us * workers as f64,
        }
    }
}

/// The simulated outcome of one iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IterationBreakdown {
    /// Wall-clock iteration time, in microseconds.
    pub total_us: f64,
    /// Ideal computation time (what the black bars in the paper's figures
    /// show), in microseconds.
    pub compute_us: f64,
    /// Control-plane overhead (total minus computation), in microseconds.
    pub control_us: f64,
    /// Task throughput achieved this iteration, in tasks per second.
    pub tasks_per_second: f64,
}

/// Simulates one iteration of `workload` on `cluster` under `plane`.
pub fn simulate_iteration(
    plane: &ControlPlane,
    cluster: &ClusterModel,
    workload: &WorkloadModel,
) -> IterationBreakdown {
    let workers = cluster.workers.max(1);
    let tasks = workload.tasks(workers);
    let task_duration = workload.task_duration_us(workers);
    let compute_us = workload.compute_us(workers);

    let finish = match plane {
        ControlPlane::CentralizedPerTask {
            per_task_us,
            max_throughput,
        } => {
            // The controller emits tasks one at a time; each dispatch costs
            // `per_task_us` and the overall rate saturates at
            // `max_throughput`. Workers drain their queues as tasks arrive.
            let dispatch_gap = per_task_us.max(1_000_000.0 / max_throughput);
            let mut worker_free = vec![0.0f64; workers as usize];
            let mut finish = 0.0f64;
            for i in 0..tasks {
                let dispatched = (i + 1) as f64 * dispatch_gap;
                let arrival = dispatched + cluster.latency_us;
                let w = (i % workers as u64) as usize;
                let start = arrival.max(worker_free[w]);
                worker_free[w] = start + task_duration;
                finish = finish.max(worker_free[w]);
            }
            finish + workload.serial_tail_us
        }
        ControlPlane::ExecutionTemplates {
            per_task_us,
            one_off_us,
        } => {
            // One instantiation message per worker; the controller's serial
            // work is the per-task instantiation cost over all tasks, spread
            // across the per-worker messages in worker order.
            let serial = tasks as f64 * per_task_us + one_off_us;
            let per_worker_tasks = (tasks as f64 / workers as f64).ceil();
            let mut finish = 0.0f64;
            for w in 0..workers as u64 {
                let msg_sent = serial * (w + 1) as f64 / workers as f64;
                let start = msg_sent + cluster.latency_us;
                finish = finish.max(start + per_worker_tasks * task_duration);
            }
            finish + workload.serial_tail_us
        }
        ControlPlane::StaticDataflow {
            one_off_us,
            per_iteration_us,
        } => {
            let per_worker_tasks = (tasks as f64 / workers as f64).ceil();
            one_off_us
                + per_iteration_us
                + cluster.latency_us
                + per_worker_tasks * task_duration
                + workload.serial_tail_us
        }
        ControlPlane::ApplicationMpi => {
            let per_worker_tasks = (tasks as f64 / workers as f64).ceil();
            per_worker_tasks * task_duration + workload.serial_tail_us
        }
    };

    IterationBreakdown {
        total_us: finish,
        compute_us,
        control_us: (finish - compute_us).max(0.0),
        tasks_per_second: tasks as f64 / (finish / 1_000_000.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lr() -> WorkloadModel {
        WorkloadModel::logistic_regression()
    }

    #[test]
    fn templates_match_distributed_dataflow_and_beat_centralized() {
        let profile = CostProfile::paper();
        let cluster = ClusterModel::new(100);
        let spark = simulate_iteration(&ControlPlane::spark_like(&profile), &cluster, &lr());
        let nimbus = simulate_iteration(&ControlPlane::templates_steady(&profile), &cluster, &lr());
        let naiad = simulate_iteration(&ControlPlane::naiad_steady(200.0, 100), &cluster, &lr());
        // Figure 7a at 100 workers: Spark ~1.43 s, Naiad ~0.08 s, Nimbus ~0.06 s.
        assert!(spark.total_us > 10.0 * nimbus.total_us);
        assert!((nimbus.total_us / naiad.total_us - 1.0).abs() < 0.5);
        assert!(nimbus.total_us < 120_000.0, "{}", nimbus.total_us);
    }

    #[test]
    fn centralized_scheduler_gets_worse_with_more_workers() {
        let profile = CostProfile::paper();
        let w = WorkloadModel::mllib_logistic_regression();
        let at30 = simulate_iteration(
            &ControlPlane::spark_like(&profile),
            &ClusterModel::new(30),
            &w,
        );
        let at100 = simulate_iteration(
            &ControlPlane::spark_like(&profile),
            &ClusterModel::new(100),
            &w,
        );
        // Figure 1: computation shrinks but completion time grows.
        assert!(at100.compute_us < at30.compute_us);
        assert!(at100.total_us > at30.total_us);
    }

    #[test]
    fn template_throughput_scales_with_workers() {
        let profile = CostProfile::paper();
        let nimbus20 = simulate_iteration(
            &ControlPlane::templates_steady(&profile),
            &ClusterModel::new(20),
            &lr(),
        );
        let nimbus100 = simulate_iteration(
            &ControlPlane::templates_steady(&profile),
            &ClusterModel::new(100),
            &lr(),
        );
        assert!(nimbus100.tasks_per_second > 3.0 * nimbus20.tasks_per_second);
        // Figure 8: ~128k tasks/s at 100 workers.
        assert!(nimbus100.tasks_per_second > 80_000.0);
        let spark100 = simulate_iteration(
            &ControlPlane::spark_like(&profile),
            &ClusterModel::new(100),
            &lr(),
        );
        assert!(spark100.tasks_per_second < 7_000.0);
    }

    #[test]
    fn mpi_has_no_control_overhead() {
        let b = simulate_iteration(&ControlPlane::ApplicationMpi, &ClusterModel::new(64), &lr());
        assert!(b.control_us < 1.0);
    }
}
