//! Control-plane cost profiles.
//!
//! The scaling figures compose per-task control-plane costs with a cluster
//! model. By default the costs are the paper's published constants (Tables
//! 1–3); the benchmark harness can substitute the constants measured on the
//! local machine by the Criterion microbenchmarks so the figures reflect this
//! implementation rather than the authors' testbed.

use serde::{Deserialize, Serialize};

/// Per-task and per-event control-plane costs, in microseconds unless noted.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostProfile {
    /// Installing one task into a controller template (Table 1).
    pub install_controller_template_per_task: f64,
    /// Installing one task into a worker template, controller side (Table 1).
    pub install_worker_template_controller_per_task: f64,
    /// Installing one task into a worker template, worker side (Table 1).
    pub install_worker_template_worker_per_task: f64,
    /// Centrally scheduling one task in Nimbus without templates (Table 1).
    pub nimbus_schedule_task: f64,
    /// Centrally scheduling one task in Spark (Table 1).
    pub spark_schedule_task: f64,
    /// Instantiating one task slot of a controller template (Table 2).
    pub instantiate_controller_per_task: f64,
    /// Instantiating one task slot of a worker template when validation is
    /// skipped (Table 2).
    pub instantiate_worker_auto_per_task: f64,
    /// Instantiating one task slot of a worker template with full validation
    /// (Table 2).
    pub instantiate_worker_validated_per_task: f64,
    /// Applying a single edit (Table 3).
    pub single_edit: f64,
    /// Installing a complete data-flow change in a Naiad-like system, in
    /// microseconds (Table 3: 230 ms for any change).
    pub dataflow_change: f64,
    /// One-way control-plane message latency between any two nodes.
    pub message_latency: f64,
    /// Maximum task dispatch throughput of a Spark-like centralized
    /// scheduler, in tasks per second (Figure 8 saturates near 6 000/s).
    pub centralized_max_throughput: f64,
}

impl Default for CostProfile {
    fn default() -> Self {
        Self::paper()
    }
}

impl CostProfile {
    /// The constants reported by the paper (Tables 1–3, Figure 8).
    pub fn paper() -> Self {
        Self {
            install_controller_template_per_task: 25.0,
            install_worker_template_controller_per_task: 15.0,
            install_worker_template_worker_per_task: 9.0,
            nimbus_schedule_task: 134.0,
            spark_schedule_task: 166.0,
            instantiate_controller_per_task: 0.2,
            instantiate_worker_auto_per_task: 1.7,
            instantiate_worker_validated_per_task: 7.3,
            single_edit: 41.0,
            dataflow_change: 230_000.0,
            message_latency: 250.0,
            centralized_max_throughput: 6_000.0,
        }
    }

    /// Tasks per second a template-driven controller sustains in the
    /// auto-validated steady state (paper: >500 000 tasks/s).
    pub fn template_steady_state_throughput(&self) -> f64 {
        1_000_000.0 / (self.instantiate_controller_per_task + self.instantiate_worker_auto_per_task)
    }

    /// Tasks per second when every instantiation requires full validation
    /// (paper: ~130 000 tasks/s).
    pub fn template_validated_throughput(&self) -> f64 {
        1_000_000.0
            / (self.instantiate_controller_per_task + self.instantiate_worker_validated_per_task)
    }

    /// Per-task cost of installing all template levels (Table 1 totals).
    pub fn install_total_per_task(&self) -> f64 {
        self.install_controller_template_per_task
            + self.install_worker_template_controller_per_task
            + self.install_worker_template_worker_per_task
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_throughputs_match_reported_numbers() {
        let p = CostProfile::paper();
        // Table 2 narrative: >500k tasks/s auto-validated, ~130k validated.
        assert!(p.template_steady_state_throughput() > 500_000.0);
        let validated = p.template_validated_throughput();
        assert!((120_000.0..150_000.0).contains(&validated));
        assert_eq!(p.install_total_per_task(), 49.0);
    }
}
