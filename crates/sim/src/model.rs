//! Cluster and workload models for the scale-out simulations.

use serde::{Deserialize, Serialize};

/// A modeled cluster: worker count and data-plane characteristics.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterModel {
    /// Number of workers allocated to the job.
    pub workers: u32,
    /// One-way network latency between any two nodes, in microseconds.
    pub latency_us: f64,
}

impl ClusterModel {
    /// A cluster of `workers` nodes with datacenter-like latency.
    pub fn new(workers: u32) -> Self {
        Self {
            workers,
            latency_us: 250.0,
        }
    }
}

/// An iterative workload: how many tasks one iteration produces and how much
/// computation it contains.
///
/// The paper's benchmarks keep the per-worker task count fixed (80 tasks per
/// worker per iteration), so adding workers increases the task count and
/// shrinks each task — the property that stresses the control plane
/// (Section 5.3).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadModel {
    /// Tasks per worker per iteration (80 for the paper's ML benchmarks).
    pub tasks_per_worker: u32,
    /// Total parallelizable computation per iteration, in microseconds
    /// (spread evenly over all tasks).
    pub parallel_compute_us: f64,
    /// Non-parallelizable tail per iteration (reduction tree levels and final
    /// aggregation), in microseconds.
    pub serial_tail_us: f64,
}

impl WorkloadModel {
    /// Logistic regression over the paper's 100 GB dataset: ~0.21 s of
    /// computation at 20 workers shrinking to ~0.06 s at 100 workers.
    pub fn logistic_regression() -> Self {
        Self {
            tasks_per_worker: 80,
            parallel_compute_us: 3_700_000.0,
            serial_tail_us: 25_000.0,
        }
    }

    /// K-means clustering over 100 GB: ~0.31 s at 20 workers, ~0.10 s at 100.
    pub fn kmeans() -> Self {
        Self {
            tasks_per_worker: 80,
            parallel_compute_us: 5_500_000.0,
            serial_tail_us: 41_000.0,
        }
    }

    /// Spark MLlib logistic regression as in Figure 1 (JVM task bodies are
    /// roughly 8× slower than the C++ ones, so the computation is larger).
    pub fn mllib_logistic_regression() -> Self {
        Self {
            tasks_per_worker: 80,
            parallel_compute_us: 31_000_000.0,
            serial_tail_us: 60_000.0,
        }
    }

    /// One outer-loop iteration (one frame) of the particle-levelset water
    /// simulation on 64 workers: ~31.7 s of computation spread over roughly
    /// 1.2 million short tasks (median 13 ms, some as short as 100 µs).
    pub fn water_simulation_frame() -> Self {
        Self {
            tasks_per_worker: 19_000,
            parallel_compute_us: 31_000_000.0 * 64.0,
            serial_tail_us: 700_000.0,
        }
    }

    /// Total tasks one iteration produces on a cluster of `workers`.
    pub fn tasks(&self, workers: u32) -> u64 {
        self.tasks_per_worker as u64 * workers as u64
    }

    /// Duration of one task on a cluster of `workers`, in microseconds.
    pub fn task_duration_us(&self, workers: u32) -> f64 {
        self.parallel_compute_us / self.tasks(workers) as f64
    }

    /// Ideal computation time of one iteration on `workers` workers.
    pub fn compute_us(&self, workers: u32) -> f64 {
        self.parallel_compute_us / workers as f64 + self.serial_tail_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lr_compute_matches_paper_scale() {
        let w = WorkloadModel::logistic_regression();
        let at20 = w.compute_us(20) / 1e6;
        let at100 = w.compute_us(100) / 1e6;
        assert!((0.19..0.24).contains(&at20), "{at20}");
        assert!((0.05..0.08).contains(&at100), "{at100}");
        assert_eq!(w.tasks(100), 8_000);
        assert!(w.task_duration_us(100) < w.task_duration_us(20));
    }

    #[test]
    fn kmeans_is_heavier_than_lr() {
        let lr = WorkloadModel::logistic_regression();
        let km = WorkloadModel::kmeans();
        assert!(km.compute_us(50) > lr.compute_us(50));
    }
}
