//! Task execution: the function registry and the task context handed to
//! application functions.
//!
//! Application functions are registered once per worker under a
//! [`FunctionId`]. A task command names the function plus the physical
//! objects it reads and writes; the executor materializes a [`TaskContext`]
//! that exposes those objects (typed, via downcasting) together with the
//! task's parameter block, and measures the task's compute time.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use nimbus_core::appdata::AppData;
use nimbus_core::clock::Clock;
use nimbus_core::ids::{FunctionId, PhysicalObjectId, WorkerId};
use nimbus_core::{Command, TaskParams};

use crate::data_store::{DataStore, StoredObject};
use crate::error::{WorkerError, WorkerResult};

/// The signature of an application task function.
pub type TaskFn = Arc<dyn Fn(&mut TaskContext<'_>) -> Result<(), String> + Send + Sync>;

/// Registry mapping function identifiers to application code.
#[derive(Default, Clone)]
pub struct FunctionRegistry {
    functions: HashMap<FunctionId, TaskFn>,
    names: HashMap<FunctionId, String>,
}

impl FunctionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a function under an identifier.
    pub fn register(
        &mut self,
        id: FunctionId,
        name: impl Into<String>,
        f: impl Fn(&mut TaskContext<'_>) -> Result<(), String> + Send + Sync + 'static,
    ) {
        self.functions.insert(id, Arc::new(f));
        self.names.insert(id, name.into());
    }

    /// Looks up a function.
    pub fn get(&self, id: FunctionId) -> WorkerResult<TaskFn> {
        self.functions
            .get(&id)
            .cloned()
            .ok_or(WorkerError::UnknownFunction(id))
    }

    /// Returns the human-readable name of a function.
    pub fn name(&self, id: FunctionId) -> Option<&str> {
        self.names.get(&id).map(String::as_str)
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Returns true if no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

enum ReadSlot<'a> {
    /// Borrowed directly from the store.
    Store(&'a dyn AppData),
    /// The object is also written by this task; access goes through `write`.
    AliasWrite,
}

/// The view of cluster data an application function sees while running.
pub struct TaskContext<'a> {
    worker: WorkerId,
    params: &'a TaskParams,
    reads: Vec<(PhysicalObjectId, ReadSlot<'a>)>,
    writes: Vec<(PhysicalObjectId, &'a mut dyn AppData)>,
}

impl<'a> TaskContext<'a> {
    /// The worker executing the task.
    pub fn worker(&self) -> WorkerId {
        self.worker
    }

    /// The task's parameter block.
    pub fn params(&self) -> &TaskParams {
        self.params
    }

    /// Number of readable objects (the command's read set, in order).
    pub fn read_count(&self) -> usize {
        self.reads.len()
    }

    /// Number of writable objects (the command's write set, in order).
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }

    /// Returns the `index`-th read object downcast to `T`.
    ///
    /// The returned reference borrows from the data store (not from the
    /// context), so it can be held while mutating other objects through
    /// [`TaskContext::write`]. Objects that appear in both the read and the
    /// write set must be accessed through `write` (in-place modification).
    pub fn read<T: 'static>(&self, index: usize) -> Result<&'a T, String> {
        let (id, slot) = self
            .reads
            .get(index)
            .ok_or_else(|| format!("read index {index} out of range ({})", self.reads.len()))?;
        let data: &'a dyn AppData = match slot {
            ReadSlot::Store(d) => *d,
            ReadSlot::AliasWrite => {
                return Err(format!(
                    "object {id} is also in the write set; access it through write()"
                ))
            }
        };
        data.as_any()
            .downcast_ref::<T>()
            .ok_or_else(|| format!("object {id} is not a {}", std::any::type_name::<T>()))
    }

    /// Returns the `index`-th write object downcast to `T`.
    pub fn write<T: 'static>(&mut self, index: usize) -> Result<&mut T, String> {
        let len = self.writes.len();
        let (id, data) = self
            .writes
            .get_mut(index)
            .ok_or_else(|| format!("write index {index} out of range ({len})"))?;
        data.as_any_mut()
            .downcast_mut::<T>()
            .ok_or_else(|| format!("object {id} is not a {}", std::any::type_name::<T>()))
    }

    /// Returns the physical identifier of the `index`-th read object.
    pub fn read_id(&self, index: usize) -> Option<PhysicalObjectId> {
        self.reads.get(index).map(|(id, _)| *id)
    }

    /// Returns the physical identifier of the `index`-th write object.
    pub fn write_id(&self, index: usize) -> Option<PhysicalObjectId> {
        self.writes.get(index).map(|(id, _)| *id)
    }
}

/// Executes task commands against a data store.
pub struct Executor {
    worker: WorkerId,
    functions: Arc<FunctionRegistry>,
    /// Optional artificial task duration: when set, every task additionally
    /// spin-waits for this long. The evaluation uses this to equalize task
    /// durations across control planes, exactly as the paper does for
    /// Spark-opt and Naiad-opt.
    pub spin_wait: Option<Duration>,
    /// Where task compute time is measured from. Real in production; the
    /// simulation harness installs its virtual clock so task timing never
    /// leaks wall-clock jitter into deterministic runs.
    pub clock: Clock,
}

impl Executor {
    /// Creates an executor for a worker.
    pub fn new(worker: WorkerId, functions: Arc<FunctionRegistry>) -> Self {
        Self {
            worker,
            functions,
            spin_wait: None,
            clock: Clock::Real,
        }
    }

    /// Runs a task command. Returns the task's compute time.
    pub fn run_task(&self, command: &Command, store: &mut DataStore) -> WorkerResult<Duration> {
        let function = command
            .function_id()
            .ok_or_else(|| WorkerError::TaskFailed {
                command: command.id,
                message: "command is not a task".to_string(),
            })?;
        let f = self.functions.get(function)?;

        // Take write objects out of the store so we can hand out mutable
        // references while still borrowing read objects from the store.
        let mut taken: Vec<(PhysicalObjectId, StoredObject)> =
            Vec::with_capacity(command.write_set.len());
        for id in &command.write_set {
            match store.take(*id) {
                Ok(obj) => taken.push((*id, obj)),
                Err(e) => {
                    // Put back whatever we already removed before failing.
                    for (id, obj) in taken {
                        store.put_back(id, obj);
                    }
                    return Err(e);
                }
            }
        }

        let run_result = (|| -> WorkerResult<Duration> {
            let writes: Vec<(PhysicalObjectId, &mut dyn AppData)> = taken
                .iter_mut()
                .map(|(id, obj)| (*id, obj.data.as_mut()))
                .collect();
            // Keep write order aligned with the command's write set.
            debug_assert_eq!(writes.len(), command.write_set.len());

            let mut reads: Vec<(PhysicalObjectId, ReadSlot<'_>)> =
                Vec::with_capacity(command.read_set.len());
            for id in &command.read_set {
                if command.write_set.contains(id) {
                    reads.push((*id, ReadSlot::AliasWrite));
                } else {
                    reads.push((*id, ReadSlot::Store(store.get(*id)?)));
                }
            }

            let mut ctx = TaskContext {
                worker: self.worker,
                params: &command.params,
                reads,
                writes,
            };

            let start = self.clock.now();
            f(&mut ctx).map_err(|message| WorkerError::TaskFailed {
                command: command.id,
                message,
            })?;
            // Spin-waiting against a virtual clock would spin forever (only
            // the scheduler advances it), so artificial task durations are a
            // real-time-only device.
            if let (Some(d), false) = (self.spin_wait, self.clock.is_virtual()) {
                let deadline = start + d;
                while self.clock.now() < deadline {
                    std::hint::spin_loop();
                }
            }
            Ok(self.clock.now().saturating_duration_since(start))
        })();

        for (id, obj) in taken {
            store.put_back(id, obj);
        }
        run_result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::appdata::{Scalar, VecF64};
    use nimbus_core::ids::{CommandId, LogicalObjectId, LogicalPartition, PartitionIndex, TaskId};
    use nimbus_core::CommandKind;

    fn lp(o: u64, p: u32) -> LogicalPartition {
        LogicalPartition::new(LogicalObjectId(o), PartitionIndex(p))
    }

    fn registry() -> Arc<FunctionRegistry> {
        let mut reg = FunctionRegistry::new();
        // Function 1: writes[0] += sum(reads[0]) * params[0].
        reg.register(FunctionId(1), "accumulate", |ctx| {
            let scale = ctx.params().as_scalar().map_err(|e| e.to_string())?;
            let sum: f64 = ctx.read::<VecF64>(0)?.values.iter().sum();
            ctx.write::<Scalar>(0)?.value += sum * scale;
            Ok(())
        });
        // Function 2: in-place doubling of an object that is both read and written.
        reg.register(FunctionId(2), "double", |ctx| {
            // Reading an aliased object through `read` is rejected; the
            // in-place value is reachable through `write`.
            assert!(ctx.read::<VecF64>(0).is_err());
            let v = ctx.write::<VecF64>(0)?;
            for x in v.values.iter_mut() {
                *x *= 2.0;
            }
            Ok(())
        });
        // Function 3: always fails.
        reg.register(FunctionId(3), "fail", |_ctx| Err("boom".to_string()));
        Arc::new(reg)
    }

    fn store() -> DataStore {
        let mut s = DataStore::new();
        s.create(
            PhysicalObjectId(1),
            lp(1, 0),
            Box::new(VecF64::new(vec![1.0, 2.0, 3.0])),
        );
        s.create(PhysicalObjectId(2), lp(2, 0), Box::new(Scalar::new(0.0)));
        s
    }

    fn task(f: u32, reads: Vec<u64>, writes: Vec<u64>, param: f64) -> Command {
        Command::new(
            CommandId(1),
            CommandKind::RunTask {
                function: FunctionId(f),
                task: TaskId(1),
            },
        )
        .with_reads(reads.into_iter().map(PhysicalObjectId).collect())
        .with_writes(writes.into_iter().map(PhysicalObjectId).collect())
        .with_params(TaskParams::from_scalar(param))
    }

    #[test]
    fn runs_a_task_and_mutates_the_store() {
        let exec = Executor::new(WorkerId(0), registry());
        let mut s = store();
        let elapsed = exec
            .run_task(&task(1, vec![1], vec![2], 2.0), &mut s)
            .unwrap();
        assert!(elapsed >= Duration::ZERO);
        let result = nimbus_core::downcast_ref::<Scalar>(s.get(PhysicalObjectId(2)).unwrap())
            .unwrap()
            .value;
        assert_eq!(result, 12.0);
    }

    #[test]
    fn read_write_overlap_aliases_to_the_same_object() {
        let exec = Executor::new(WorkerId(0), registry());
        let mut s = store();
        exec.run_task(&task(2, vec![1], vec![1], 0.0), &mut s)
            .unwrap();
        let v = nimbus_core::downcast_ref::<VecF64>(s.get(PhysicalObjectId(1)).unwrap()).unwrap();
        assert_eq!(v.values, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn task_failure_restores_the_store() {
        let exec = Executor::new(WorkerId(0), registry());
        let mut s = store();
        let err = exec
            .run_task(&task(3, vec![1], vec![2], 0.0), &mut s)
            .unwrap_err();
        assert!(matches!(err, WorkerError::TaskFailed { .. }));
        // The written object is back in the store despite the failure.
        assert!(s.contains(PhysicalObjectId(2)));
    }

    #[test]
    fn unknown_function_and_missing_object_errors() {
        let exec = Executor::new(WorkerId(0), registry());
        let mut s = store();
        assert!(matches!(
            exec.run_task(&task(9, vec![1], vec![2], 0.0), &mut s),
            Err(WorkerError::UnknownFunction(_))
        ));
        assert!(matches!(
            exec.run_task(&task(1, vec![99], vec![2], 0.0), &mut s),
            Err(WorkerError::UnknownObject(_))
        ));
        assert!(
            s.contains(PhysicalObjectId(2)),
            "taken objects were restored"
        );
    }

    #[test]
    fn spin_wait_extends_task_duration() {
        let mut exec = Executor::new(WorkerId(0), registry());
        exec.spin_wait = Some(Duration::from_millis(2));
        let mut s = store();
        let elapsed = exec
            .run_task(&task(1, vec![1], vec![2], 1.0), &mut s)
            .unwrap();
        assert!(elapsed >= Duration::from_millis(2));
    }

    #[test]
    fn registry_names() {
        let reg = registry();
        assert_eq!(reg.name(FunctionId(1)), Some("accumulate"));
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
    }
}
