//! # nimbus-worker
//!
//! The Nimbus worker runtime: a command queue with local dependency
//! resolution, a store of mutable data objects, an executor for application
//! functions, a cache of installed worker templates, and the event loop tying
//! them together.
//!
//! Workers satisfy the control-plane requirements from Section 3.1 of the
//! paper: they decide locally when commands become runnable and exchange data
//! directly with their peers, so the centralized controller never sits on the
//! data path.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod data_store;
pub mod error;
pub mod executor;
pub mod queue;
pub mod stats;
pub mod vault;
pub mod worker;

pub use data_store::{DataFactory, DataFactoryRegistry, DataStore, StoredObject};
pub use error::{WorkerError, WorkerResult};
pub use executor::{Executor, FunctionRegistry, TaskContext, TaskFn};
pub use queue::CommandQueue;
pub use stats::WorkerStats;
pub use vault::ObjectVault;
pub use worker::{extract_scalar, Worker, WorkerConfig};
