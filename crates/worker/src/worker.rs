//! The worker event loop.
//!
//! A worker serves many concurrent jobs: it keeps one isolated runtime —
//! command queue, data store, template cache — **per job**, so two jobs'
//! physical object identifiers, command identifiers, and transfer
//! identifiers can never collide even though each controller-side job issues
//! them from its own counters. Control messages and data transfers arrive
//! tagged with their [`JobId`] and are routed to the owning runtime; ready
//! commands are executed round-robin across jobs so one busy job cannot
//! starve another on a shared worker.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nimbus_core::appdata::AppData;
use nimbus_core::clock::Clock;
use nimbus_core::ids::{CommandId, JobId, WorkerId};
use nimbus_core::template::cache::WorkerTemplateCache;
use nimbus_core::{Command, CommandKind};
use nimbus_net::{
    ControllerToWorker, DataPayload, DataTransfer, Endpoint, Envelope, Message, NodeId,
    TransportEndpoint, TransportEvent, WorkerToController,
};

use crate::data_store::{DataFactoryRegistry, DataStore};
use crate::error::{WorkerError, WorkerResult};
use crate::executor::{Executor, FunctionRegistry};
use crate::queue::CommandQueue;
use crate::stats::WorkerStats;
use crate::vault::ObjectVault;

/// Static configuration of a worker.
pub struct WorkerConfig {
    /// This worker's identifier.
    pub id: WorkerId,
    /// Registered application functions.
    pub functions: Arc<FunctionRegistry>,
    /// Registered dataset factories (initial partition contents).
    pub factories: Arc<DataFactoryRegistry>,
    /// Shared durable-storage emulation for file commands and checkpoints.
    pub vault: Arc<ObjectVault>,
    /// Optional artificial per-task duration (spin wait), matching how the
    /// paper equalizes task durations across frameworks.
    pub spin_wait: Option<Duration>,
    /// How many completions to accumulate before reporting to the controller.
    pub completion_batch: usize,
    /// Abrupt-death switch for fault-injection tests: when it flips to true
    /// the worker stops immediately — no final completion flush, no goodbye
    /// to the controller — emulating a killed process in thread-based
    /// clusters (the dropped endpoint is what the controller observes).
    pub kill_switch: Option<Arc<AtomicBool>>,
    /// Where the worker reads "now" from when timing tasks. Real by
    /// default; the simulation harness shares its virtual clock here.
    pub clock: Clock,
}

impl WorkerConfig {
    /// Creates a configuration with default batching and no spin wait.
    pub fn new(
        id: WorkerId,
        functions: Arc<FunctionRegistry>,
        factories: Arc<DataFactoryRegistry>,
        vault: Arc<ObjectVault>,
    ) -> Self {
        Self {
            id,
            functions,
            factories,
            vault,
            spin_wait: None,
            completion_batch: 64,
            kill_switch: None,
            clock: Clock::Real,
        }
    }
}

/// Upper bound on retained drop tombstones (see `Worker::dropped_jobs`).
const MAX_TOMBSTONES: usize = 65_536;

/// One job's isolated execution state on a worker. Everything a command can
/// touch lives here, so jobs sharing the worker cannot observe each other.
struct JobRuntime {
    job: JobId,
    store: DataStore,
    queue: CommandQueue,
    templates: WorkerTemplateCache,
    completed: Vec<CommandId>,
    compute_micros: u64,
}

impl JobRuntime {
    fn new(job: JobId) -> Self {
        Self {
            job,
            store: DataStore::new(),
            queue: CommandQueue::new(),
            templates: WorkerTemplateCache::new(),
            completed: Vec::new(),
            compute_micros: 0,
        }
    }
}

/// A Nimbus worker node, generic over the transport connecting it to the
/// cluster (in-process [`Endpoint`] by default, or a TCP endpoint).
pub struct Worker<E: TransportEndpoint = Endpoint> {
    id: WorkerId,
    endpoint: E,
    /// Per-job runtimes, in admission order. Jobs are few per worker, so a
    /// linear scan beats a hash map on the hot path.
    jobs: Vec<JobRuntime>,
    /// Jobs whose `DropJob` already arrived. Tombstones keep a straggler —
    /// an in-flight data transfer or a stale redelivered batch racing the
    /// drop — from silently resurrecting an empty runtime that nothing
    /// would ever release again. Bounded: past [`MAX_TOMBSTONES`] the
    /// oldest (lowest, since the controller issues job ids monotonically)
    /// are evicted — stragglers arrive within moments of the drop, so an
    /// ancient tombstone protects nothing.
    dropped_jobs: std::collections::BTreeSet<JobId>,
    /// Round-robin cursor over `jobs` for ready-command execution.
    rr: usize,
    executor: Executor,
    factories: Arc<DataFactoryRegistry>,
    vault: Arc<ObjectVault>,
    stats: WorkerStats,
    completion_batch: usize,
    running: bool,
    kill_switch: Option<Arc<AtomicBool>>,
    killed: bool,
}

impl<E: TransportEndpoint> Worker<E> {
    /// Creates a worker bound to a transport endpoint.
    pub fn new(config: WorkerConfig, endpoint: E) -> Self {
        let mut executor = Executor::new(config.id, Arc::clone(&config.functions));
        executor.spin_wait = config.spin_wait;
        executor.clock = config.clock;
        Self {
            id: config.id,
            endpoint,
            jobs: Vec::new(),
            dropped_jobs: std::collections::BTreeSet::new(),
            rr: 0,
            executor,
            factories: config.factories,
            vault: config.vault,
            stats: WorkerStats::new(),
            completion_batch: config.completion_batch.max(1),
            running: true,
            kill_switch: config.kill_switch,
            killed: false,
        }
    }

    /// This worker's identifier.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// Read-only access to the execution statistics.
    pub fn stats(&self) -> &WorkerStats {
        &self.stats
    }

    /// Number of jobs with live runtimes on this worker.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// The runtime of `job`, created on first contact. Returns `None` for a
    /// job whose `DropJob` already arrived: its messages are stragglers and
    /// must not re-create state.
    fn runtime(&mut self, job: JobId) -> Option<&mut JobRuntime> {
        if self.dropped_jobs.contains(&job) {
            return None;
        }
        if let Some(i) = self.jobs.iter().position(|j| j.job == job) {
            return Some(&mut self.jobs[i]);
        }
        self.jobs.push(JobRuntime::new(job));
        Some(self.jobs.last_mut().expect("just pushed"))
    }

    fn runtime_index(&self, job: JobId) -> Option<usize> {
        self.jobs.iter().position(|j| j.job == job)
    }

    /// Runs until a `Shutdown` message arrives. Returns the final statistics.
    ///
    /// The first act of a running worker is to `Register` with the
    /// controller: for workers of the initial allocation this is an
    /// idempotent hello, while a restarted or late-added worker uses it to
    /// open the rejoin handshake (the controller answers with
    /// `RejoinAccepted`, reinstalls the worker's patched templates per job,
    /// and migrates partitions to it through template edits).
    pub fn run(mut self) -> WorkerStats {
        // Not routed through `send_to_controller`: on the in-process fabric
        // a worker thread may start before the controller registers its
        // endpoint, and that benign startup race must not count as a
        // failure. The hello is advisory — the initial allocation works
        // without it.
        let _ = self.endpoint.send(
            NodeId::Controller,
            Message::FromWorker(WorkerToController::Register { worker: self.id }),
        );
        while self.running {
            self.step(Duration::from_millis(5));
        }
        if self.killed {
            // Abrupt death: vanish without a final report, like a killed
            // process would.
            return self.stats;
        }
        // Final flush so the controller sees everything.
        self.flush_all_completions(true);
        self.stats
    }

    /// Processes at most one blocking receive (bounded by `idle_wait`), then
    /// drains any further queued messages and executes runnable commands.
    /// Exposed for deterministic single-threaded tests.
    pub fn step(&mut self, idle_wait: Duration) {
        if let Some(kill) = &self.kill_switch {
            if kill.load(Ordering::Relaxed) {
                self.running = false;
                self.killed = true;
                return;
            }
        }
        if !self.jobs.iter().any(|j| j.queue.ready_len() > 0) {
            match self.endpoint.recv_timeout(idle_wait) {
                Ok(envelope) => self.handle(envelope),
                Err(nimbus_net::NetError::Timeout) => {}
                Err(_) => {
                    self.running = false;
                    return;
                }
            }
        }
        // Drain whatever else arrived without blocking.
        while let Ok(envelope) = self.endpoint.try_recv() {
            self.handle(envelope);
        }
        // Execute a bounded burst of ready commands — rotating across jobs so
        // a shared worker advances every job — then yield back to message
        // processing so data transfers keep flowing.
        let mut executed = 0usize;
        while executed < 64 {
            let Some(job_index) = self.next_ready_job() else {
                break;
            };
            let command = self.jobs[job_index].queue.pop_ready().expect("has ready");
            self.execute(job_index, command);
            executed += 1;
        }
        let idle = self.jobs.iter().all(|j| j.queue.is_idle());
        self.flush_all_completions(idle);
    }

    /// Picks the next job with a runnable command, continuing round-robin
    /// from where the previous pick left off.
    fn next_ready_job(&mut self) -> Option<usize> {
        let n = self.jobs.len();
        for k in 0..n {
            let i = (self.rr + k) % n;
            if self.jobs[i].queue.ready_len() > 0 {
                self.rr = (i + 1) % n;
                return Some(i);
            }
        }
        None
    }

    fn handle(&mut self, envelope: Envelope) {
        match envelope.message {
            Message::ToWorker(msg) => self.handle_control(msg),
            Message::Data(transfer) => self.handle_data(transfer),
            Message::Transport(TransportEvent::PeerDisconnected(NodeId::Controller)) => {
                // An orphaned worker cannot make progress; exit instead of
                // lingering as a zombie process.
                self.running = false;
            }
            Message::Transport(TransportEvent::PeerDisconnected(_)) => {
                // A peer worker (or one driver of many) vanished: the
                // controller notices through its own connection and drives
                // recovery; nothing to do locally.
            }
            Message::Transport(TransportEvent::PeerReconnected(_)) => {
                // A peer (or the controller) came back; data transfers to it
                // recover through the supervised transport automatically.
            }
            other => {
                self.stats.record_failure(format!(
                    "unexpected message {:?} at worker {}",
                    other.tag(),
                    self.id
                ));
            }
        }
    }

    fn handle_control(&mut self, msg: ControllerToWorker) {
        match msg {
            ControllerToWorker::ExecuteCommands { job, commands } => {
                let Some(rt) = self.runtime(job) else { return };
                let ignored = rt.queue.add_commands(commands);
                self.stats.duplicate_commands_ignored += ignored;
            }
            ControllerToWorker::InstallTemplate { job, template } => {
                let id = template.id;
                let Some(rt) = self.runtime(job) else { return };
                rt.templates.install(template);
                self.stats.templates_installed += 1;
                self.send_to_controller(WorkerToController::TemplateInstalled {
                    job,
                    worker: self.id,
                    template: id,
                });
            }
            ControllerToWorker::InstantiateTemplate { job, inst } => {
                let Some(rt) = self.runtime(job) else { return };
                let result: WorkerResult<Vec<Command>> = (|| {
                    let template = rt.templates.get_mut(inst.template)?;
                    if !inst.edits.is_empty() {
                        template.apply_edits(&inst.edits)?;
                    }
                    Ok(template.instantiate(&inst)?)
                })();
                match result {
                    Ok(commands) => {
                        let ignored = rt.queue.add_commands(commands);
                        self.stats.template_instantiations += 1;
                        self.stats.edits_applied += inst.edits.len() as u64;
                        self.stats.duplicate_commands_ignored += ignored;
                    }
                    Err(e) => self.stats.record_failure(format!(
                        "instantiation of template {} failed: {e}",
                        inst.template
                    )),
                }
            }
            ControllerToWorker::FetchValue { job, object } => {
                let Some(rt) = self.runtime(job) else { return };
                let value = rt
                    .store
                    .get(object)
                    .ok()
                    .and_then(extract_scalar)
                    .unwrap_or(f64::NAN);
                self.send_to_controller(WorkerToController::ValueFetched {
                    job,
                    worker: self.id,
                    object,
                    value,
                });
            }
            ControllerToWorker::Halt { job } => {
                // Recovery of ONE job: flush that job's queue and pending
                // completions; every other job on this worker keeps running
                // untouched. A worker that never hosted the job still
                // acknowledges (the controller halts every survivor of the
                // shared allocation and awaits each acknowledgement) but
                // does not create a runtime for it.
                if let Some(i) = self.runtime_index(job) {
                    let rt = &mut self.jobs[i];
                    rt.queue.flush();
                    rt.completed.clear();
                    rt.compute_micros = 0;
                }
                // Recovery may be readmitting a restarted peer: an old
                // outbound connection to its previous incarnation would
                // swallow post-recovery data transfers into a half-open
                // socket. Re-dial worker peers lazily instead.
                self.endpoint.reset_worker_peers();
                self.send_to_controller(WorkerToController::Halted {
                    job,
                    worker: self.id,
                });
            }
            ControllerToWorker::DropJob { job } => {
                // The job ended: release its runtime wholesale (objects,
                // queue, templates) and tombstone the id so in-flight
                // stragglers cannot resurrect it. Unreported completions
                // die with it — the controller has already forgotten the
                // job.
                if let Some(i) = self.runtime_index(job) {
                    self.jobs.remove(i);
                    if self.rr > i {
                        self.rr -= 1;
                    }
                }
                self.dropped_jobs.insert(job);
                while self.dropped_jobs.len() > MAX_TOMBSTONES {
                    self.dropped_jobs.pop_first();
                }
            }
            ControllerToWorker::RejoinAccepted { jobs } => {
                // The handshake reply: the controller admitted this worker
                // and shared its current per-job version maps. The worker
                // keeps no version bookkeeping of its own (the controller
                // owns data placement), so this is acknowledgement plus
                // observability.
                self.stats.rejoin_acks += 1;
                let _ = jobs;
            }
            ControllerToWorker::Shutdown => {
                self.running = false;
            }
        }
    }

    fn handle_data(&mut self, transfer: DataTransfer) {
        self.stats.bytes_received += transfer.payload.size() as u64;
        // A transfer may legitimately precede its job's first control
        // message (the fabric's channels are independent), so an unknown
        // job gets a runtime to buffer into — but a *dropped* job's
        // straggler is discarded.
        if let Some(rt) = self.runtime(transfer.job) {
            rt.queue.data_arrived(transfer.transfer, transfer.payload);
        }
    }

    fn execute(&mut self, job_index: usize, command: Command) {
        let id = command.id;
        if let Err(e) = self.execute_inner(job_index, &command) {
            self.stats.record_failure(format!(
                "worker {}: command {id} ({}) failed: {e}",
                self.id,
                command.kind.tag()
            ));
        }
        self.stats.commands_executed += 1;
        let rt = &mut self.jobs[job_index];
        rt.queue.complete(id);
        rt.completed.push(id);
        if rt.completed.len() >= self.completion_batch {
            self.flush_completions(job_index, false);
        }
    }

    fn execute_inner(&mut self, job_index: usize, command: &Command) -> WorkerResult<()> {
        let rt = &mut self.jobs[job_index];
        match &command.kind {
            CommandKind::CreateData { object, logical } => {
                if !rt.store.contains(*object) {
                    let data = self.factories.create(*logical)?;
                    rt.store.create(*object, *logical, data);
                }
                self.stats.creates += 1;
                Ok(())
            }
            CommandKind::DestroyData { object } => {
                rt.store.destroy(*object)?;
                Ok(())
            }
            CommandKind::LocalCopy { from, to } => {
                let data = rt.store.clone_data(*from)?;
                if rt.store.contains(*to) {
                    rt.store.replace(*to, data)?;
                } else {
                    let logical = rt.store.logical_of(*from)?;
                    rt.store.create(*to, logical, data);
                }
                self.stats.local_copies += 1;
                Ok(())
            }
            CommandKind::SendCopy {
                from,
                to_worker,
                transfer,
            } => {
                let data = rt.store.clone_data(*from)?;
                let payload = DataPayload::Object(data);
                self.stats.bytes_sent += payload.size() as u64;
                self.stats.sends += 1;
                let job = rt.job;
                self.endpoint
                    .send(
                        NodeId::Worker(*to_worker),
                        Message::Data(DataTransfer {
                            job,
                            transfer: *transfer,
                            from_worker: self.id,
                            payload,
                        }),
                    )
                    .map_err(|e| WorkerError::Net(e.to_string()))
            }
            CommandKind::ReceiveCopy { to, transfer, .. } => {
                let payload = rt
                    .queue
                    .take_payload(*transfer)
                    .ok_or(WorkerError::MissingTransfer(*transfer))?;
                if !rt.store.contains(*to) {
                    // The controller creates objects before copying into them.
                    return Err(WorkerError::UnknownObject(*to));
                }
                match payload {
                    // In-process transfer: the object itself was handed over.
                    DataPayload::Object(data) => rt.store.replace(*to, data)?,
                    // Cross-process transfer: decode the serialized contents
                    // into the already-created destination object, whose
                    // concrete type knows its own wire format.
                    DataPayload::Bytes(bytes) => {
                        rt.store
                            .get_mut(*to)?
                            .decode_wire(bytes.as_slice())
                            .map_err(WorkerError::Net)?;
                    }
                }
                self.stats.receives += 1;
                Ok(())
            }
            CommandKind::LoadData { object, key } => {
                if let Some(data) = self.vault.get(key) {
                    rt.store.replace(*object, data)?;
                } else if let Some(bytes) = self.vault.get_bytes(key) {
                    // Saved by another (possibly dead) process into the
                    // shared file-backed vault: decode the wire bytes into
                    // the already-created destination object, whose concrete
                    // type knows its own format — the same path rejoining
                    // workers use for migrated partitions.
                    rt.store
                        .get_mut(*object)?
                        .decode_wire(&bytes)
                        .map_err(WorkerError::Net)?;
                } else {
                    return Err(WorkerError::Net(format!("missing vault key {key}")));
                }
                self.stats.loads += 1;
                Ok(())
            }
            CommandKind::SaveData { object, key } => {
                let data = rt.store.clone_data(*object)?;
                self.vault.put(key, data);
                self.stats.saves += 1;
                Ok(())
            }
            CommandKind::RunTask { .. } => {
                let elapsed = self.executor.run_task(command, &mut rt.store)?;
                self.stats.tasks_executed += 1;
                self.stats.compute_time += elapsed;
                rt.compute_micros += elapsed.as_micros() as u64;
                Ok(())
            }
        }
    }

    fn flush_all_completions(&mut self, force: bool) {
        for i in 0..self.jobs.len() {
            self.flush_completions(i, force);
        }
    }

    fn flush_completions(&mut self, job_index: usize, force: bool) {
        let rt = &mut self.jobs[job_index];
        if rt.completed.is_empty() {
            return;
        }
        if !force && rt.completed.len() < self.completion_batch {
            return;
        }
        let job = rt.job;
        let commands = std::mem::take(&mut rt.completed);
        let compute_micros = std::mem::take(&mut rt.compute_micros);
        self.send_to_controller(WorkerToController::CommandsCompleted {
            job,
            worker: self.id,
            commands,
            compute_micros,
        });
    }

    fn send_to_controller(&mut self, msg: WorkerToController) {
        if let Err(e) = self
            .endpoint
            .send(NodeId::Controller, Message::FromWorker(msg))
        {
            self.stats
                .record_failure(format!("send to controller failed: {e}"));
        }
    }
}

/// Extracts a scalar value from a data object for `FetchValue` requests.
/// Delegates to [`AppData::scalar_value`], so any type overriding it (and
/// marked `ScalarReadable` for the driver-side gate) is fetchable.
pub fn extract_scalar(data: &dyn AppData) -> Option<f64> {
    data.scalar_value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::appdata::{downcast_ref, Scalar, VecF64};
    use nimbus_core::ids::{
        FunctionId, LogicalObjectId, LogicalPartition, PartitionIndex, PhysicalObjectId, TaskId,
        TemplateId, TransferId,
    };
    use nimbus_core::template::{SkeletonEntry, SkeletonKind, WorkerInstantiation, WorkerTemplate};
    use nimbus_core::TaskParams;
    use nimbus_net::{LatencyModel, Network};

    const JOB: JobId = JobId(1);
    const OTHER_JOB: JobId = JobId(2);

    fn lp(o: u64, p: u32) -> LogicalPartition {
        LogicalPartition::new(LogicalObjectId(o), PartitionIndex(p))
    }

    fn setup() -> (Network, Endpoint, Worker) {
        let net = Network::new(LatencyModel::None);
        let controller = net.register(NodeId::Controller);
        let endpoint = net.register(NodeId::Worker(WorkerId(0)));
        let mut functions = FunctionRegistry::new();
        functions.register(FunctionId(1), "add_one", |ctx| {
            let v = ctx.write::<VecF64>(0)?;
            for x in v.values.iter_mut() {
                *x += 1.0;
            }
            Ok(())
        });
        let mut factories = DataFactoryRegistry::new();
        factories.register(LogicalObjectId(1), Box::new(|_| Box::new(VecF64::zeros(3))));
        factories.register(LogicalObjectId(2), Box::new(|_| Box::new(Scalar::new(0.0))));
        let config = WorkerConfig::new(
            WorkerId(0),
            Arc::new(functions),
            Arc::new(factories),
            Arc::new(ObjectVault::new()),
        );
        let worker = Worker::new(config, endpoint);
        (net, controller, worker)
    }

    fn create_cmd(id: u64, object: u64, dataset: u64, part: u32) -> Command {
        Command::new(
            CommandId(id),
            CommandKind::CreateData {
                object: PhysicalObjectId(object),
                logical: lp(dataset, part),
            },
        )
    }

    fn task_cmd(id: u64, object: u64, before: Vec<u64>) -> Command {
        Command::new(
            CommandId(id),
            CommandKind::RunTask {
                function: FunctionId(1),
                task: TaskId(id),
            },
        )
        .with_writes(vec![PhysicalObjectId(object)])
        .with_before(before.into_iter().map(CommandId).collect())
    }

    fn exec(job: JobId, commands: Vec<Command>) -> Message {
        Message::ToWorker(ControllerToWorker::ExecuteCommands { job, commands })
    }

    fn drive(worker: &mut Worker, steps: usize) {
        for _ in 0..steps {
            worker.step(Duration::from_millis(1));
        }
    }

    fn store_value(worker: &Worker, job: JobId, object: u64) -> Vec<f64> {
        let rt = worker
            .jobs
            .iter()
            .find(|j| j.job == job)
            .expect("job runtime exists");
        downcast_ref::<VecF64>(rt.store.get(PhysicalObjectId(object)).unwrap())
            .unwrap()
            .values
            .clone()
    }

    #[test]
    fn executes_commands_and_reports_completions() {
        let (_net, controller, mut worker) = setup();
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                exec(JOB, vec![create_cmd(1, 10, 1, 0), task_cmd(2, 10, vec![1])]),
            )
            .unwrap();
        drive(&mut worker, 4);
        assert_eq!(worker.stats().tasks_executed, 1);
        assert_eq!(worker.stats().creates, 1);
        // The controller got a completion report covering both commands,
        // tagged with the owning job.
        let mut completed = Vec::new();
        while let Ok(env) = controller.try_recv() {
            if let Message::FromWorker(WorkerToController::CommandsCompleted {
                job,
                commands,
                ..
            }) = env.message
            {
                assert_eq!(job, JOB);
                completed.extend(commands);
            }
        }
        assert!(completed.contains(&CommandId(1)));
        assert!(completed.contains(&CommandId(2)));
    }

    /// Two jobs using the SAME physical object and command identifiers on
    /// one worker never collide: each job's commands run against its own
    /// store, and each job's completions are reported under its own id.
    #[test]
    fn jobs_are_isolated_on_one_worker() {
        let (_net, controller, mut worker) = setup();
        // Both jobs use object id 10 and command ids 1/2 — deliberately
        // identical — but job B runs the add twice.
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                exec(JOB, vec![create_cmd(1, 10, 1, 0), task_cmd(2, 10, vec![1])]),
            )
            .unwrap();
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                exec(
                    OTHER_JOB,
                    vec![
                        create_cmd(1, 10, 1, 0),
                        task_cmd(2, 10, vec![1]),
                        task_cmd(3, 10, vec![2]),
                    ],
                ),
            )
            .unwrap();
        drive(&mut worker, 6);
        assert_eq!(worker.job_count(), 2);
        assert_eq!(store_value(&worker, JOB, 10), vec![1.0, 1.0, 1.0]);
        assert_eq!(store_value(&worker, OTHER_JOB, 10), vec![2.0, 2.0, 2.0]);
        // Completions arrive per job; job A's command 2 and job B's command 2
        // are different commands.
        let mut per_job = std::collections::HashMap::new();
        while let Ok(env) = controller.try_recv() {
            if let Message::FromWorker(WorkerToController::CommandsCompleted {
                job,
                commands,
                ..
            }) = env.message
            {
                per_job.entry(job).or_insert_with(Vec::new).extend(commands);
            }
        }
        assert_eq!(per_job.get(&JOB).map(Vec::len), Some(2));
        assert_eq!(per_job.get(&OTHER_JOB).map(Vec::len), Some(3));
    }

    /// Halting one job flushes only that job's queue; the other job's
    /// blocked work survives and completes.
    #[test]
    fn halt_is_scoped_to_one_job() {
        let (_net, controller, mut worker) = setup();
        // Job A: blocked forever on a missing dependency.
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                exec(JOB, vec![task_cmd(5, 99, vec![4])]),
            )
            .unwrap();
        // Job B: object created, its add blocked on a command (id 2) that
        // will only arrive after the halt.
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                exec(
                    OTHER_JOB,
                    vec![create_cmd(1, 10, 1, 0), task_cmd(3, 10, vec![1, 2])],
                ),
            )
            .unwrap();
        drive(&mut worker, 2);
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                Message::ToWorker(ControllerToWorker::Halt { job: JOB }),
            )
            .unwrap();
        drive(&mut worker, 2);
        let mut halted_job = None;
        while let Ok(env) = controller.try_recv() {
            if let Message::FromWorker(WorkerToController::Halted { job, .. }) = env.message {
                halted_job = Some(job);
            }
        }
        assert_eq!(halted_job, Some(JOB));
        // Job B's pending command is still there and completes once its
        // remaining dependency (a command on an unrelated object) lands.
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                exec(OTHER_JOB, vec![create_cmd(2, 20, 2, 0)]),
            )
            .unwrap();
        drive(&mut worker, 4);
        assert_eq!(store_value(&worker, OTHER_JOB, 10), vec![1.0, 1.0, 1.0]);
    }

    /// Dropping a job releases its runtime (store, queue, templates) without
    /// touching other jobs.
    #[test]
    fn drop_job_releases_runtime() {
        let (_net, controller, mut worker) = setup();
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                exec(JOB, vec![create_cmd(1, 10, 1, 0)]),
            )
            .unwrap();
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                exec(OTHER_JOB, vec![create_cmd(1, 10, 1, 0)]),
            )
            .unwrap();
        drive(&mut worker, 4);
        assert_eq!(worker.job_count(), 2);
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                Message::ToWorker(ControllerToWorker::DropJob { job: JOB }),
            )
            .unwrap();
        drive(&mut worker, 2);
        assert_eq!(worker.job_count(), 1);
        assert_eq!(store_value(&worker, OTHER_JOB, 10), vec![0.0, 0.0, 0.0]);
    }

    /// A dropped job is tombstoned: stragglers racing the `DropJob` — a
    /// late data transfer, a stale redelivered batch — are discarded
    /// instead of resurrecting an empty runtime nothing would ever release.
    #[test]
    fn dropped_job_stragglers_do_not_resurrect_the_runtime() {
        let (net, controller, mut worker) = setup();
        let peer = net.register(NodeId::Worker(WorkerId(1)));
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                exec(JOB, vec![create_cmd(1, 10, 1, 0)]),
            )
            .unwrap();
        drive(&mut worker, 3);
        assert_eq!(worker.job_count(), 1);
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                Message::ToWorker(ControllerToWorker::DropJob { job: JOB }),
            )
            .unwrap();
        drive(&mut worker, 2);
        assert_eq!(worker.job_count(), 0);
        // Stragglers: a data transfer and a redelivered batch for the
        // dropped job.
        peer.send(
            NodeId::Worker(WorkerId(0)),
            Message::Data(DataTransfer {
                job: JOB,
                transfer: TransferId(9),
                from_worker: WorkerId(1),
                payload: DataPayload::Object(Box::new(VecF64::new(vec![1.0]))),
            }),
        )
        .unwrap();
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                exec(JOB, vec![create_cmd(2, 11, 1, 1)]),
            )
            .unwrap();
        drive(&mut worker, 3);
        assert_eq!(worker.job_count(), 0, "straggler resurrected the job");
        // A different job still works normally.
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                exec(OTHER_JOB, vec![create_cmd(1, 10, 1, 0)]),
            )
            .unwrap();
        drive(&mut worker, 3);
        assert_eq!(worker.job_count(), 1);
    }

    #[test]
    fn install_and_instantiate_template() {
        let (_net, controller, mut worker) = setup();
        let entries = vec![
            SkeletonEntry::new(SkeletonKind::CreateData {
                object: PhysicalObjectId(10),
                logical: lp(1, 0),
            }),
            SkeletonEntry::new(SkeletonKind::RunTask {
                function: FunctionId(1),
                task_slot: 0,
            })
            .with_writes(vec![PhysicalObjectId(10)])
            .with_before(vec![0])
            .with_param_slot(0),
        ];
        let template =
            WorkerTemplate::new(TemplateId(5), TemplateId(1), WorkerId(0), entries).unwrap();
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                Message::ToWorker(ControllerToWorker::InstallTemplate { job: JOB, template }),
            )
            .unwrap();
        drive(&mut worker, 2);
        assert_eq!(worker.stats().templates_installed, 1);

        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                Message::ToWorker(ControllerToWorker::InstantiateTemplate {
                    job: JOB,
                    inst: WorkerInstantiation {
                        template: TemplateId(5),
                        base_command_id: 100,
                        base_transfer_id: 0,
                        task_ids: vec![TaskId(1)],
                        params: vec![TaskParams::empty()],
                        edits: vec![],
                    },
                }),
            )
            .unwrap();
        drive(&mut worker, 4);
        assert_eq!(worker.stats().template_instantiations, 1);
        assert_eq!(worker.stats().tasks_executed, 1);
    }

    #[test]
    fn data_transfer_feeds_receive_command() {
        let (net, controller, mut worker) = setup();
        let peer = net.register(NodeId::Worker(WorkerId(1)));
        // Create the destination object, then receive into it.
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                exec(
                    JOB,
                    vec![
                        create_cmd(1, 10, 1, 0),
                        Command::new(
                            CommandId(2),
                            CommandKind::ReceiveCopy {
                                to: PhysicalObjectId(10),
                                from_worker: WorkerId(1),
                                transfer: TransferId(7),
                            },
                        )
                        .with_before(vec![CommandId(1)]),
                    ],
                ),
            )
            .unwrap();
        drive(&mut worker, 3);
        assert_eq!(worker.stats().receives, 0, "blocked on data");
        // A transfer with the same id but a DIFFERENT job must not satisfy
        // job A's receive.
        peer.send(
            NodeId::Worker(WorkerId(0)),
            Message::Data(DataTransfer {
                job: OTHER_JOB,
                transfer: TransferId(7),
                from_worker: WorkerId(1),
                payload: DataPayload::Object(Box::new(VecF64::new(vec![5.0, 5.0, 5.0]))),
            }),
        )
        .unwrap();
        drive(&mut worker, 3);
        assert_eq!(worker.stats().receives, 0, "foreign job's transfer held");
        peer.send(
            NodeId::Worker(WorkerId(0)),
            Message::Data(DataTransfer {
                job: JOB,
                transfer: TransferId(7),
                from_worker: WorkerId(1),
                payload: DataPayload::Object(Box::new(VecF64::new(vec![9.0, 9.0, 9.0]))),
            }),
        )
        .unwrap();
        drive(&mut worker, 3);
        assert_eq!(worker.stats().receives, 1);
        assert_eq!(store_value(&worker, JOB, 10), vec![9.0, 9.0, 9.0]);
    }

    #[test]
    fn fetch_value_returns_scalar() {
        let (_net, controller, mut worker) = setup();
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                exec(JOB, vec![create_cmd(1, 20, 2, 0)]),
            )
            .unwrap();
        drive(&mut worker, 3);
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                Message::ToWorker(ControllerToWorker::FetchValue {
                    job: JOB,
                    object: PhysicalObjectId(20),
                }),
            )
            .unwrap();
        drive(&mut worker, 2);
        let mut fetched = None;
        while let Ok(env) = controller.try_recv() {
            if let Message::FromWorker(WorkerToController::ValueFetched { job, value, .. }) =
                env.message
            {
                assert_eq!(job, JOB);
                fetched = Some(value);
            }
        }
        assert_eq!(fetched, Some(0.0));
    }

    #[test]
    fn save_and_load_round_trip_through_vault() {
        let (_net, controller, mut worker) = setup();
        let commands = vec![
            create_cmd(1, 10, 1, 0),
            task_cmd(2, 10, vec![1]),
            Command::new(
                CommandId(3),
                CommandKind::SaveData {
                    object: PhysicalObjectId(10),
                    key: "job1/ckpt/10".to_string(),
                },
            )
            .with_before(vec![CommandId(2)]),
            task_cmd(4, 10, vec![3]),
            Command::new(
                CommandId(5),
                CommandKind::LoadData {
                    object: PhysicalObjectId(10),
                    key: "job1/ckpt/10".to_string(),
                },
            )
            .with_before(vec![CommandId(4)]),
        ];
        controller
            .send(NodeId::Worker(WorkerId(0)), exec(JOB, commands))
            .unwrap();
        drive(&mut worker, 6);
        assert_eq!(worker.stats().saves, 1);
        assert_eq!(worker.stats().loads, 1);
        // After load, the value reverts to the checkpointed state (one add_one applied).
        assert_eq!(store_value(&worker, JOB, 10), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn extract_scalar_variants() {
        assert_eq!(extract_scalar(&Scalar::new(2.5)), Some(2.5));
        assert_eq!(extract_scalar(&VecF64::new(vec![7.0, 8.0])), Some(7.0));
        assert_eq!(extract_scalar(&VecF64::new(vec![])), None);
    }
}
