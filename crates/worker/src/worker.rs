//! The worker event loop.
//!
//! A worker owns a command queue, a data store, a template cache, and an
//! executor. It receives control messages from the controller and data
//! transfers from peer workers, locally resolves dependencies, executes
//! runnable commands, and reports completions back to the controller in
//! batches.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nimbus_core::appdata::AppData;
use nimbus_core::ids::{CommandId, WorkerId};
use nimbus_core::template::cache::WorkerTemplateCache;
use nimbus_core::{Command, CommandKind};
use nimbus_net::{
    ControllerToWorker, DataPayload, DataTransfer, Endpoint, Envelope, Message, NodeId,
    TransportEndpoint, TransportEvent, WorkerToController,
};

use crate::data_store::{DataFactoryRegistry, DataStore};
use crate::error::{WorkerError, WorkerResult};
use crate::executor::{Executor, FunctionRegistry};
use crate::queue::CommandQueue;
use crate::stats::WorkerStats;
use crate::vault::ObjectVault;

/// Static configuration of a worker.
pub struct WorkerConfig {
    /// This worker's identifier.
    pub id: WorkerId,
    /// Registered application functions.
    pub functions: Arc<FunctionRegistry>,
    /// Registered dataset factories (initial partition contents).
    pub factories: Arc<DataFactoryRegistry>,
    /// Shared durable-storage emulation for file commands and checkpoints.
    pub vault: Arc<ObjectVault>,
    /// Optional artificial per-task duration (spin wait), matching how the
    /// paper equalizes task durations across frameworks.
    pub spin_wait: Option<Duration>,
    /// How many completions to accumulate before reporting to the controller.
    pub completion_batch: usize,
    /// Abrupt-death switch for fault-injection tests: when it flips to true
    /// the worker stops immediately — no final completion flush, no goodbye
    /// to the controller — emulating a killed process in thread-based
    /// clusters (the dropped endpoint is what the controller observes).
    pub kill_switch: Option<Arc<AtomicBool>>,
}

impl WorkerConfig {
    /// Creates a configuration with default batching and no spin wait.
    pub fn new(
        id: WorkerId,
        functions: Arc<FunctionRegistry>,
        factories: Arc<DataFactoryRegistry>,
        vault: Arc<ObjectVault>,
    ) -> Self {
        Self {
            id,
            functions,
            factories,
            vault,
            spin_wait: None,
            completion_batch: 64,
            kill_switch: None,
        }
    }
}

/// A Nimbus worker node, generic over the transport connecting it to the
/// cluster (in-process [`Endpoint`] by default, or a TCP endpoint).
pub struct Worker<E: TransportEndpoint = Endpoint> {
    id: WorkerId,
    endpoint: E,
    store: DataStore,
    queue: CommandQueue,
    templates: WorkerTemplateCache,
    executor: Executor,
    factories: Arc<DataFactoryRegistry>,
    vault: Arc<ObjectVault>,
    stats: WorkerStats,
    completion_batch: usize,
    completed: Vec<CommandId>,
    compute_micros: u64,
    running: bool,
    kill_switch: Option<Arc<AtomicBool>>,
    killed: bool,
}

impl<E: TransportEndpoint> Worker<E> {
    /// Creates a worker bound to a transport endpoint.
    pub fn new(config: WorkerConfig, endpoint: E) -> Self {
        let mut executor = Executor::new(config.id, Arc::clone(&config.functions));
        executor.spin_wait = config.spin_wait;
        Self {
            id: config.id,
            endpoint,
            store: DataStore::new(),
            queue: CommandQueue::new(),
            templates: WorkerTemplateCache::new(),
            executor,
            factories: config.factories,
            vault: config.vault,
            stats: WorkerStats::new(),
            completion_batch: config.completion_batch.max(1),
            completed: Vec::new(),
            compute_micros: 0,
            running: true,
            kill_switch: config.kill_switch,
            killed: false,
        }
    }

    /// This worker's identifier.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// Read-only access to the execution statistics.
    pub fn stats(&self) -> &WorkerStats {
        &self.stats
    }

    /// Runs until a `Shutdown` message arrives. Returns the final statistics.
    ///
    /// The first act of a running worker is to `Register` with the
    /// controller: for workers of the initial allocation this is an
    /// idempotent hello, while a restarted or late-added worker uses it to
    /// open the rejoin handshake (the controller answers with
    /// `RejoinAccepted`, reinstalls the worker's patched templates, and
    /// migrates partitions to it through template edits).
    pub fn run(mut self) -> WorkerStats {
        // Not routed through `send_to_controller`: on the in-process fabric
        // a worker thread may start before the controller registers its
        // endpoint, and that benign startup race must not count as a
        // failure. The hello is advisory — the initial allocation works
        // without it.
        let _ = self.endpoint.send(
            NodeId::Controller,
            Message::FromWorker(WorkerToController::Register { worker: self.id }),
        );
        while self.running {
            self.step(Duration::from_millis(5));
        }
        if self.killed {
            // Abrupt death: vanish without a final report, like a killed
            // process would.
            return self.stats;
        }
        // Final flush so the controller sees everything.
        self.flush_completions(true);
        self.stats
    }

    /// Processes at most one blocking receive (bounded by `idle_wait`), then
    /// drains any further queued messages and executes runnable commands.
    /// Exposed for deterministic single-threaded tests.
    pub fn step(&mut self, idle_wait: Duration) {
        if let Some(kill) = &self.kill_switch {
            if kill.load(Ordering::Relaxed) {
                self.running = false;
                self.killed = true;
                return;
            }
        }
        if self.queue.ready_len() == 0 {
            match self.endpoint.recv_timeout(idle_wait) {
                Ok(envelope) => self.handle(envelope),
                Err(nimbus_net::NetError::Timeout) => {}
                Err(_) => {
                    self.running = false;
                    return;
                }
            }
        }
        // Drain whatever else arrived without blocking.
        while let Ok(envelope) = self.endpoint.try_recv() {
            self.handle(envelope);
        }
        // Execute a bounded burst of ready commands, then yield back to
        // message processing so data transfers keep flowing.
        let mut executed = 0usize;
        while executed < 64 {
            let Some(command) = self.queue.pop_ready() else {
                break;
            };
            self.execute(command);
            executed += 1;
        }
        let idle = self.queue.is_idle();
        self.flush_completions(idle);
    }

    fn handle(&mut self, envelope: Envelope) {
        match envelope.message {
            Message::ToWorker(msg) => self.handle_control(msg),
            Message::Data(transfer) => self.handle_data(transfer),
            Message::Transport(TransportEvent::PeerDisconnected(NodeId::Controller)) => {
                // An orphaned worker cannot make progress; exit instead of
                // lingering as a zombie process.
                self.running = false;
            }
            Message::Transport(TransportEvent::PeerDisconnected(_)) => {
                // A peer worker vanished: the controller notices through its
                // own connection and drives recovery; nothing to do locally.
            }
            Message::Transport(TransportEvent::PeerReconnected(_)) => {
                // A peer (or the controller) came back; data transfers to it
                // recover through the supervised transport automatically.
            }
            other => {
                self.stats.record_failure(format!(
                    "unexpected message {:?} at worker {}",
                    other.tag(),
                    self.id
                ));
            }
        }
    }

    fn handle_control(&mut self, msg: ControllerToWorker) {
        match msg {
            ControllerToWorker::ExecuteCommands { commands } => {
                self.stats.duplicate_commands_ignored += self.queue.add_commands(commands);
            }
            ControllerToWorker::InstallTemplate { template } => {
                let id = template.id;
                self.templates.install(template);
                self.stats.templates_installed += 1;
                self.send_to_controller(WorkerToController::TemplateInstalled {
                    worker: self.id,
                    template: id,
                });
            }
            ControllerToWorker::InstantiateTemplate(inst) => {
                let result: WorkerResult<Vec<Command>> = (|| {
                    let template = self.templates.get_mut(inst.template)?;
                    if !inst.edits.is_empty() {
                        template.apply_edits(&inst.edits)?;
                    }
                    Ok(template.instantiate(&inst)?)
                })();
                match result {
                    Ok(commands) => {
                        self.stats.template_instantiations += 1;
                        self.stats.edits_applied += inst.edits.len() as u64;
                        self.stats.duplicate_commands_ignored += self.queue.add_commands(commands);
                    }
                    Err(e) => self.stats.record_failure(format!(
                        "instantiation of template {} failed: {e}",
                        inst.template
                    )),
                }
            }
            ControllerToWorker::FetchValue { object } => {
                let value = self
                    .store
                    .get(object)
                    .ok()
                    .and_then(extract_scalar)
                    .unwrap_or(f64::NAN);
                self.send_to_controller(WorkerToController::ValueFetched {
                    worker: self.id,
                    object,
                    value,
                });
            }
            ControllerToWorker::Halt => {
                self.queue.flush();
                self.completed.clear();
                self.compute_micros = 0;
                // Recovery may be readmitting a restarted peer: an old
                // outbound connection to its previous incarnation would
                // swallow post-recovery data transfers into a half-open
                // socket. Re-dial worker peers lazily instead.
                self.endpoint.reset_worker_peers();
                self.send_to_controller(WorkerToController::Halted { worker: self.id });
            }
            ControllerToWorker::RejoinAccepted { versions } => {
                // The handshake reply: the controller admitted this worker
                // and shared its current version map. The worker keeps no
                // version bookkeeping of its own (the controller owns data
                // placement), so this is acknowledgement plus observability.
                self.stats.rejoin_acks += 1;
                let _ = versions;
            }
            ControllerToWorker::Shutdown => {
                self.running = false;
            }
        }
    }

    fn handle_data(&mut self, transfer: DataTransfer) {
        self.stats.bytes_received += transfer.payload.size() as u64;
        self.queue.data_arrived(transfer.transfer, transfer.payload);
    }

    fn execute(&mut self, command: Command) {
        let id = command.id;
        if let Err(e) = self.execute_inner(&command) {
            self.stats
                .record_failure(format!("command {id} ({}) failed: {e}", command.kind.tag()));
        }
        self.stats.commands_executed += 1;
        self.queue.complete(id);
        self.completed.push(id);
        if self.completed.len() >= self.completion_batch {
            self.flush_completions(false);
        }
    }

    fn execute_inner(&mut self, command: &Command) -> WorkerResult<()> {
        match &command.kind {
            CommandKind::CreateData { object, logical } => {
                if !self.store.contains(*object) {
                    let data = self.factories.create(*logical)?;
                    self.store.create(*object, *logical, data);
                }
                self.stats.creates += 1;
                Ok(())
            }
            CommandKind::DestroyData { object } => {
                self.store.destroy(*object)?;
                Ok(())
            }
            CommandKind::LocalCopy { from, to } => {
                let data = self.store.clone_data(*from)?;
                if self.store.contains(*to) {
                    self.store.replace(*to, data)?;
                } else {
                    let logical = self.store.logical_of(*from)?;
                    self.store.create(*to, logical, data);
                }
                self.stats.local_copies += 1;
                Ok(())
            }
            CommandKind::SendCopy {
                from,
                to_worker,
                transfer,
            } => {
                let data = self.store.clone_data(*from)?;
                let payload = DataPayload::Object(data);
                self.stats.bytes_sent += payload.size() as u64;
                self.stats.sends += 1;
                self.endpoint
                    .send(
                        NodeId::Worker(*to_worker),
                        Message::Data(DataTransfer {
                            transfer: *transfer,
                            from_worker: self.id,
                            payload,
                        }),
                    )
                    .map_err(|e| WorkerError::Net(e.to_string()))
            }
            CommandKind::ReceiveCopy { to, transfer, .. } => {
                let payload = self
                    .queue
                    .take_payload(*transfer)
                    .ok_or(WorkerError::MissingTransfer(*transfer))?;
                if !self.store.contains(*to) {
                    // The controller creates objects before copying into them.
                    return Err(WorkerError::UnknownObject(*to));
                }
                match payload {
                    // In-process transfer: the object itself was handed over.
                    DataPayload::Object(data) => self.store.replace(*to, data)?,
                    // Cross-process transfer: decode the serialized contents
                    // into the already-created destination object, whose
                    // concrete type knows its own wire format.
                    DataPayload::Bytes(bytes) => {
                        self.store
                            .get_mut(*to)?
                            .decode_wire(bytes.as_slice())
                            .map_err(WorkerError::Net)?;
                    }
                }
                self.stats.receives += 1;
                Ok(())
            }
            CommandKind::LoadData { object, key } => {
                if let Some(data) = self.vault.get(key) {
                    self.store.replace(*object, data)?;
                } else if let Some(bytes) = self.vault.get_bytes(key) {
                    // Saved by another (possibly dead) process into the
                    // shared file-backed vault: decode the wire bytes into
                    // the already-created destination object, whose concrete
                    // type knows its own format — the same path rejoining
                    // workers use for migrated partitions.
                    self.store
                        .get_mut(*object)?
                        .decode_wire(&bytes)
                        .map_err(WorkerError::Net)?;
                } else {
                    return Err(WorkerError::Net(format!("missing vault key {key}")));
                }
                self.stats.loads += 1;
                Ok(())
            }
            CommandKind::SaveData { object, key } => {
                let data = self.store.clone_data(*object)?;
                self.vault.put(key, data);
                self.stats.saves += 1;
                Ok(())
            }
            CommandKind::RunTask { .. } => {
                let elapsed = self.executor.run_task(command, &mut self.store)?;
                self.stats.tasks_executed += 1;
                self.stats.compute_time += elapsed;
                self.compute_micros += elapsed.as_micros() as u64;
                Ok(())
            }
        }
    }

    fn flush_completions(&mut self, force: bool) {
        if self.completed.is_empty() {
            return;
        }
        if !force && self.completed.len() < self.completion_batch {
            return;
        }
        let commands = std::mem::take(&mut self.completed);
        let compute_micros = std::mem::take(&mut self.compute_micros);
        self.send_to_controller(WorkerToController::CommandsCompleted {
            worker: self.id,
            commands,
            compute_micros,
        });
    }

    fn send_to_controller(&mut self, msg: WorkerToController) {
        if let Err(e) = self
            .endpoint
            .send(NodeId::Controller, Message::FromWorker(msg))
        {
            self.stats
                .record_failure(format!("send to controller failed: {e}"));
        }
    }
}

/// Extracts a scalar value from a data object for `FetchValue` requests.
/// Delegates to [`AppData::scalar_value`], so any type overriding it (and
/// marked `ScalarReadable` for the driver-side gate) is fetchable.
pub fn extract_scalar(data: &dyn AppData) -> Option<f64> {
    data.scalar_value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::appdata::{downcast_ref, Scalar, VecF64};
    use nimbus_core::ids::{
        FunctionId, LogicalObjectId, LogicalPartition, PartitionIndex, PhysicalObjectId, TaskId,
        TemplateId, TransferId,
    };
    use nimbus_core::template::{SkeletonEntry, SkeletonKind, WorkerInstantiation, WorkerTemplate};
    use nimbus_core::TaskParams;
    use nimbus_net::{LatencyModel, Network};

    fn lp(o: u64, p: u32) -> LogicalPartition {
        LogicalPartition::new(LogicalObjectId(o), PartitionIndex(p))
    }

    fn setup() -> (Network, Endpoint, Worker) {
        let net = Network::new(LatencyModel::None);
        let controller = net.register(NodeId::Controller);
        let endpoint = net.register(NodeId::Worker(WorkerId(0)));
        let mut functions = FunctionRegistry::new();
        functions.register(FunctionId(1), "add_one", |ctx| {
            let v = ctx.write::<VecF64>(0)?;
            for x in v.values.iter_mut() {
                *x += 1.0;
            }
            Ok(())
        });
        let mut factories = DataFactoryRegistry::new();
        factories.register(LogicalObjectId(1), Box::new(|_| Box::new(VecF64::zeros(3))));
        factories.register(LogicalObjectId(2), Box::new(|_| Box::new(Scalar::new(0.0))));
        let config = WorkerConfig::new(
            WorkerId(0),
            Arc::new(functions),
            Arc::new(factories),
            Arc::new(ObjectVault::new()),
        );
        let worker = Worker::new(config, endpoint);
        (net, controller, worker)
    }

    fn create_cmd(id: u64, object: u64, dataset: u64, part: u32) -> Command {
        Command::new(
            CommandId(id),
            CommandKind::CreateData {
                object: PhysicalObjectId(object),
                logical: lp(dataset, part),
            },
        )
    }

    fn task_cmd(id: u64, object: u64, before: Vec<u64>) -> Command {
        Command::new(
            CommandId(id),
            CommandKind::RunTask {
                function: FunctionId(1),
                task: TaskId(id),
            },
        )
        .with_writes(vec![PhysicalObjectId(object)])
        .with_before(before.into_iter().map(CommandId).collect())
    }

    fn drive(worker: &mut Worker, steps: usize) {
        for _ in 0..steps {
            worker.step(Duration::from_millis(1));
        }
    }

    #[test]
    fn executes_commands_and_reports_completions() {
        let (_net, controller, mut worker) = setup();
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                Message::ToWorker(ControllerToWorker::ExecuteCommands {
                    commands: vec![create_cmd(1, 10, 1, 0), task_cmd(2, 10, vec![1])],
                }),
            )
            .unwrap();
        drive(&mut worker, 4);
        assert_eq!(worker.stats().tasks_executed, 1);
        assert_eq!(worker.stats().creates, 1);
        // The controller got a completion report covering both commands.
        let mut completed = Vec::new();
        while let Ok(env) = controller.try_recv() {
            if let Message::FromWorker(WorkerToController::CommandsCompleted { commands, .. }) =
                env.message
            {
                completed.extend(commands);
            }
        }
        assert!(completed.contains(&CommandId(1)));
        assert!(completed.contains(&CommandId(2)));
    }

    #[test]
    fn install_and_instantiate_template() {
        let (_net, controller, mut worker) = setup();
        let entries = vec![
            SkeletonEntry::new(SkeletonKind::CreateData {
                object: PhysicalObjectId(10),
                logical: lp(1, 0),
            }),
            SkeletonEntry::new(SkeletonKind::RunTask {
                function: FunctionId(1),
                task_slot: 0,
            })
            .with_writes(vec![PhysicalObjectId(10)])
            .with_before(vec![0])
            .with_param_slot(0),
        ];
        let template =
            WorkerTemplate::new(TemplateId(5), TemplateId(1), WorkerId(0), entries).unwrap();
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                Message::ToWorker(ControllerToWorker::InstallTemplate { template }),
            )
            .unwrap();
        drive(&mut worker, 2);
        assert_eq!(worker.stats().templates_installed, 1);

        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                Message::ToWorker(ControllerToWorker::InstantiateTemplate(
                    WorkerInstantiation {
                        template: TemplateId(5),
                        base_command_id: 100,
                        base_transfer_id: 0,
                        task_ids: vec![TaskId(1)],
                        params: vec![TaskParams::empty()],
                        edits: vec![],
                    },
                )),
            )
            .unwrap();
        drive(&mut worker, 4);
        assert_eq!(worker.stats().template_instantiations, 1);
        assert_eq!(worker.stats().tasks_executed, 1);
    }

    #[test]
    fn data_transfer_feeds_receive_command() {
        let (net, controller, mut worker) = setup();
        let peer = net.register(NodeId::Worker(WorkerId(1)));
        // Create the destination object, then receive into it.
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                Message::ToWorker(ControllerToWorker::ExecuteCommands {
                    commands: vec![
                        create_cmd(1, 10, 1, 0),
                        Command::new(
                            CommandId(2),
                            CommandKind::ReceiveCopy {
                                to: PhysicalObjectId(10),
                                from_worker: WorkerId(1),
                                transfer: TransferId(7),
                            },
                        )
                        .with_before(vec![CommandId(1)]),
                    ],
                }),
            )
            .unwrap();
        drive(&mut worker, 3);
        assert_eq!(worker.stats().receives, 0, "blocked on data");
        peer.send(
            NodeId::Worker(WorkerId(0)),
            Message::Data(DataTransfer {
                transfer: TransferId(7),
                from_worker: WorkerId(1),
                payload: DataPayload::Object(Box::new(VecF64::new(vec![9.0, 9.0, 9.0]))),
            }),
        )
        .unwrap();
        drive(&mut worker, 3);
        assert_eq!(worker.stats().receives, 1);
        let v = downcast_ref::<VecF64>(worker.store.get(PhysicalObjectId(10)).unwrap()).unwrap();
        assert_eq!(v.values, vec![9.0, 9.0, 9.0]);
    }

    #[test]
    fn fetch_value_returns_scalar() {
        let (_net, controller, mut worker) = setup();
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                Message::ToWorker(ControllerToWorker::ExecuteCommands {
                    commands: vec![create_cmd(1, 20, 2, 0)],
                }),
            )
            .unwrap();
        drive(&mut worker, 3);
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                Message::ToWorker(ControllerToWorker::FetchValue {
                    object: PhysicalObjectId(20),
                }),
            )
            .unwrap();
        drive(&mut worker, 2);
        let mut fetched = None;
        while let Ok(env) = controller.try_recv() {
            if let Message::FromWorker(WorkerToController::ValueFetched { value, .. }) = env.message
            {
                fetched = Some(value);
            }
        }
        assert_eq!(fetched, Some(0.0));
    }

    #[test]
    fn halt_flushes_queue_and_acknowledges() {
        let (_net, controller, mut worker) = setup();
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                Message::ToWorker(ControllerToWorker::ExecuteCommands {
                    commands: vec![task_cmd(5, 99, vec![4])],
                }),
            )
            .unwrap();
        drive(&mut worker, 2);
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                Message::ToWorker(ControllerToWorker::Halt),
            )
            .unwrap();
        drive(&mut worker, 2);
        let mut halted = false;
        while let Ok(env) = controller.try_recv() {
            if matches!(
                env.message,
                Message::FromWorker(WorkerToController::Halted { .. })
            ) {
                halted = true;
            }
        }
        assert!(halted);
        assert!(worker.queue.is_idle());
    }

    #[test]
    fn save_and_load_round_trip_through_vault() {
        let (_net, controller, mut worker) = setup();
        let commands = vec![
            create_cmd(1, 10, 1, 0),
            task_cmd(2, 10, vec![1]),
            Command::new(
                CommandId(3),
                CommandKind::SaveData {
                    object: PhysicalObjectId(10),
                    key: "ckpt/10".to_string(),
                },
            )
            .with_before(vec![CommandId(2)]),
            task_cmd(4, 10, vec![3]),
            Command::new(
                CommandId(5),
                CommandKind::LoadData {
                    object: PhysicalObjectId(10),
                    key: "ckpt/10".to_string(),
                },
            )
            .with_before(vec![CommandId(4)]),
        ];
        controller
            .send(
                NodeId::Worker(WorkerId(0)),
                Message::ToWorker(ControllerToWorker::ExecuteCommands { commands }),
            )
            .unwrap();
        drive(&mut worker, 6);
        assert_eq!(worker.stats().saves, 1);
        assert_eq!(worker.stats().loads, 1);
        // After load, the value reverts to the checkpointed state (one add_one applied).
        let v = downcast_ref::<VecF64>(worker.store.get(PhysicalObjectId(10)).unwrap()).unwrap();
        assert_eq!(v.values, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn extract_scalar_variants() {
        assert_eq!(extract_scalar(&Scalar::new(2.5)), Some(2.5));
        assert_eq!(extract_scalar(&VecF64::new(vec![7.0, 8.0])), Some(7.0));
        assert_eq!(extract_scalar(&VecF64::new(vec![])), None);
    }
}
