//! The worker's in-memory store of mutable data objects.
//!
//! Nimbus tasks operate on mutable data objects in place (Section 3.3): a
//! physical object is allocated once, then read and written by many tasks
//! across iterations. The store maps physical object identifiers to boxed
//! application data plus the logical partition they hold.

use std::collections::HashMap;

use nimbus_core::appdata::AppData;
use nimbus_core::ids::{LogicalObjectId, LogicalPartition, PhysicalObjectId};

use crate::error::{WorkerError, WorkerResult};

/// One stored object: its contents and the logical partition it holds.
pub struct StoredObject {
    /// The application data.
    pub data: Box<dyn AppData>,
    /// The logical partition this object is an instance of.
    pub logical: LogicalPartition,
}

/// Factory that creates the initial contents of a partition of a dataset.
pub type DataFactory = Box<dyn Fn(LogicalPartition) -> Box<dyn AppData> + Send + Sync>;

/// Registry of per-dataset data factories, consulted by `CreateData` commands.
#[derive(Default)]
pub struct DataFactoryRegistry {
    factories: HashMap<LogicalObjectId, DataFactory>,
}

impl DataFactoryRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the factory for a dataset.
    pub fn register(&mut self, object: LogicalObjectId, factory: DataFactory) {
        self.factories.insert(object, factory);
    }

    /// Creates the initial contents for a partition.
    pub fn create(&self, lp: LogicalPartition) -> WorkerResult<Box<dyn AppData>> {
        self.factories
            .get(&lp.object)
            .map(|f| f(lp))
            .ok_or(WorkerError::NoFactory(lp.object))
    }

    /// Returns true if a factory is registered for the dataset.
    pub fn contains(&self, object: LogicalObjectId) -> bool {
        self.factories.contains_key(&object)
    }

    /// Number of registered factories.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// Returns true if no factories are registered.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

/// The worker's object store.
#[derive(Default)]
pub struct DataStore {
    objects: HashMap<PhysicalObjectId, StoredObject>,
}

impl DataStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates an object with the given contents. Creating an object that
    /// already exists is idempotent and keeps the existing contents (the
    /// controller may replay create commands after recovery).
    pub fn create(
        &mut self,
        id: PhysicalObjectId,
        logical: LogicalPartition,
        data: Box<dyn AppData>,
    ) {
        self.objects
            .entry(id)
            .or_insert(StoredObject { data, logical });
    }

    /// Destroys an object, returning an error if it does not exist.
    pub fn destroy(&mut self, id: PhysicalObjectId) -> WorkerResult<()> {
        self.objects
            .remove(&id)
            .map(|_| ())
            .ok_or(WorkerError::UnknownObject(id))
    }

    /// Returns true if the object exists.
    pub fn contains(&self, id: PhysicalObjectId) -> bool {
        self.objects.contains_key(&id)
    }

    /// Immutable access to an object's data.
    pub fn get(&self, id: PhysicalObjectId) -> WorkerResult<&dyn AppData> {
        self.objects
            .get(&id)
            .map(|o| o.data.as_ref())
            .ok_or(WorkerError::UnknownObject(id))
    }

    /// Mutable access to an object's data.
    pub fn get_mut(&mut self, id: PhysicalObjectId) -> WorkerResult<&mut Box<dyn AppData>> {
        self.objects
            .get_mut(&id)
            .map(|o| &mut o.data)
            .ok_or(WorkerError::UnknownObject(id))
    }

    /// The logical partition an object holds.
    pub fn logical_of(&self, id: PhysicalObjectId) -> WorkerResult<LogicalPartition> {
        self.objects
            .get(&id)
            .map(|o| o.logical)
            .ok_or(WorkerError::UnknownObject(id))
    }

    /// Replaces an object's contents (receive-copy semantics: the new buffer
    /// becomes visible atomically from the task queue's point of view).
    pub fn replace(&mut self, id: PhysicalObjectId, data: Box<dyn AppData>) -> WorkerResult<()> {
        let obj = self
            .objects
            .get_mut(&id)
            .ok_or(WorkerError::UnknownObject(id))?;
        obj.data = data;
        Ok(())
    }

    /// Clones an object's contents (send/local copy source).
    pub fn clone_data(&self, id: PhysicalObjectId) -> WorkerResult<Box<dyn AppData>> {
        self.get(id).map(|d| d.clone_box())
    }

    /// Temporarily removes an object so the executor can hand out a mutable
    /// reference without aliasing the store; pair with [`DataStore::put_back`].
    pub fn take(&mut self, id: PhysicalObjectId) -> WorkerResult<StoredObject> {
        self.objects
            .remove(&id)
            .ok_or(WorkerError::UnknownObject(id))
    }

    /// Puts an object taken with [`DataStore::take`] back.
    pub fn put_back(&mut self, id: PhysicalObjectId, object: StoredObject) {
        self.objects.insert(id, object);
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns true if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterates over `(id, logical partition, approximate size)` of all
    /// objects — used by checkpointing to persist live state.
    pub fn manifest(&self) -> Vec<(PhysicalObjectId, LogicalPartition, usize)> {
        self.objects
            .iter()
            .map(|(id, o)| (*id, o.logical, o.data.approx_size()))
            .collect()
    }

    /// Total approximate bytes held by the store.
    pub fn resident_bytes(&self) -> usize {
        self.objects.values().map(|o| o.data.approx_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::appdata::{downcast_ref, VecF64};
    use nimbus_core::ids::PartitionIndex;

    fn lp(o: u64, p: u32) -> LogicalPartition {
        LogicalPartition::new(LogicalObjectId(o), PartitionIndex(p))
    }

    #[test]
    fn create_get_destroy() {
        let mut store = DataStore::new();
        store.create(PhysicalObjectId(1), lp(1, 0), Box::new(VecF64::zeros(4)));
        assert!(store.contains(PhysicalObjectId(1)));
        assert_eq!(store.len(), 1);
        assert_eq!(store.logical_of(PhysicalObjectId(1)).unwrap(), lp(1, 0));
        let data = store.get(PhysicalObjectId(1)).unwrap();
        assert_eq!(downcast_ref::<VecF64>(data).unwrap().values.len(), 4);
        store.destroy(PhysicalObjectId(1)).unwrap();
        assert!(store.is_empty());
        assert!(store.destroy(PhysicalObjectId(1)).is_err());
    }

    #[test]
    fn create_is_idempotent() {
        let mut store = DataStore::new();
        store.create(
            PhysicalObjectId(1),
            lp(1, 0),
            Box::new(VecF64::new(vec![7.0])),
        );
        store.create(PhysicalObjectId(1), lp(1, 0), Box::new(VecF64::zeros(10)));
        let data = store.get(PhysicalObjectId(1)).unwrap();
        assert_eq!(downcast_ref::<VecF64>(data).unwrap().values, vec![7.0]);
    }

    #[test]
    fn replace_and_clone() {
        let mut store = DataStore::new();
        store.create(PhysicalObjectId(1), lp(1, 0), Box::new(VecF64::zeros(2)));
        store
            .replace(PhysicalObjectId(1), Box::new(VecF64::new(vec![1.0, 2.0])))
            .unwrap();
        let cloned = store.clone_data(PhysicalObjectId(1)).unwrap();
        assert_eq!(
            downcast_ref::<VecF64>(cloned.as_ref()).unwrap().values,
            vec![1.0, 2.0]
        );
        assert!(store
            .replace(PhysicalObjectId(2), Box::new(VecF64::zeros(1)))
            .is_err());
    }

    #[test]
    fn take_and_put_back() {
        let mut store = DataStore::new();
        store.create(PhysicalObjectId(1), lp(1, 0), Box::new(VecF64::zeros(2)));
        let obj = store.take(PhysicalObjectId(1)).unwrap();
        assert!(!store.contains(PhysicalObjectId(1)));
        store.put_back(PhysicalObjectId(1), obj);
        assert!(store.contains(PhysicalObjectId(1)));
    }

    #[test]
    fn factory_registry() {
        let mut reg = DataFactoryRegistry::new();
        assert!(reg.is_empty());
        reg.register(
            LogicalObjectId(1),
            Box::new(|lp| Box::new(VecF64::new(vec![lp.partition.raw() as f64]))),
        );
        assert!(reg.contains(LogicalObjectId(1)));
        assert_eq!(reg.len(), 1);
        let data = reg.create(lp(1, 3)).unwrap();
        assert_eq!(
            downcast_ref::<VecF64>(data.as_ref()).unwrap().values,
            vec![3.0]
        );
        assert!(reg.create(lp(2, 0)).is_err());
    }

    #[test]
    fn manifest_and_resident_bytes() {
        let mut store = DataStore::new();
        store.create(PhysicalObjectId(1), lp(1, 0), Box::new(VecF64::zeros(100)));
        store.create(PhysicalObjectId(2), lp(1, 1), Box::new(VecF64::zeros(100)));
        assert_eq!(store.manifest().len(), 2);
        assert!(store.resident_bytes() >= 1600);
    }
}
