//! Worker-side error types.

use std::fmt;

use nimbus_core::ids::{CommandId, FunctionId, LogicalObjectId, PhysicalObjectId, TransferId};
use nimbus_core::CoreError;

/// Errors produced by the worker runtime.
#[derive(Debug)]
pub enum WorkerError {
    /// A command referenced a physical object not present in the store.
    UnknownObject(PhysicalObjectId),
    /// No data factory is registered for a dataset.
    NoFactory(LogicalObjectId),
    /// A task referenced a function not present in the registry.
    UnknownFunction(FunctionId),
    /// An application task returned an error.
    TaskFailed {
        /// The failing command.
        command: CommandId,
        /// The application's error message.
        message: String,
    },
    /// A receive command completed but no payload had arrived for it.
    MissingTransfer(TransferId),
    /// The object's concrete type did not match what the task expected.
    TypeMismatch {
        /// What the task expected.
        expected: &'static str,
        /// What the store held.
        actual: &'static str,
    },
    /// An index into a task's read or write set was out of range.
    AccessOutOfRange {
        /// The requested index.
        index: usize,
        /// The set length.
        len: usize,
    },
    /// An error bubbled up from the core data structures.
    Core(CoreError),
    /// The transport failed.
    Net(String),
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::UnknownObject(id) => write!(f, "unknown physical object {id}"),
            WorkerError::NoFactory(obj) => {
                write!(f, "no data factory registered for dataset {obj}")
            }
            WorkerError::UnknownFunction(id) => write!(f, "unknown function {id}"),
            WorkerError::TaskFailed { command, message } => {
                write!(f, "task command {command} failed: {message}")
            }
            WorkerError::MissingTransfer(t) => write!(f, "no payload arrived for transfer {t}"),
            WorkerError::TypeMismatch { expected, actual } => {
                write!(f, "data type mismatch: expected {expected}, found {actual}")
            }
            WorkerError::AccessOutOfRange { index, len } => {
                write!(
                    f,
                    "data access index {index} out of range (set has {len} objects)"
                )
            }
            WorkerError::Core(e) => write!(f, "core error: {e}"),
            WorkerError::Net(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<CoreError> for WorkerError {
    fn from(e: CoreError) -> Self {
        WorkerError::Core(e)
    }
}

/// Result alias for worker operations.
pub type WorkerResult<T> = Result<T, WorkerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = WorkerError::TaskFailed {
            command: CommandId(3),
            message: "division by zero".to_string(),
        };
        assert!(e.to_string().contains("division by zero"));
        let e: WorkerError = CoreError::EmptyTemplate.into();
        assert!(e.to_string().contains("core error"));
    }
}
