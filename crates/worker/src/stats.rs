//! Per-worker execution statistics.

use std::time::Duration;

/// Counters kept by each worker and reported to the evaluation harness.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerStats {
    /// Total commands executed (all kinds).
    pub commands_executed: u64,
    /// Application task commands executed.
    pub tasks_executed: u64,
    /// Data objects created.
    pub creates: u64,
    /// Local copies performed.
    pub local_copies: u64,
    /// Send-copy commands executed.
    pub sends: u64,
    /// Receive-copy commands executed.
    pub receives: u64,
    /// Load commands executed.
    pub loads: u64,
    /// Save commands executed.
    pub saves: u64,
    /// Worker templates installed.
    pub templates_installed: u64,
    /// Worker-template instantiations expanded.
    pub template_instantiations: u64,
    /// Template edits applied.
    pub edits_applied: u64,
    /// Duplicate or stale command dispatches ignored by the queue (possible
    /// during recovery replay and rejoin; must never kill the worker).
    pub duplicate_commands_ignored: u64,
    /// `RejoinAccepted` handshake replies received from the controller.
    pub rejoin_acks: u64,
    /// Total application compute time.
    pub compute_time: Duration,
    /// Data-plane bytes sent to other workers.
    pub bytes_sent: u64,
    /// Data-plane bytes received from other workers.
    pub bytes_received: u64,
    /// Commands that failed (with messages capped to keep memory bounded).
    pub failures: Vec<String>,
}

impl WorkerStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a failure message (keeps at most 64).
    pub fn record_failure(&mut self, message: String) {
        if nimbus_core::debug_recovery() {
            eprintln!("[worker-failure] {message}");
        }
        if self.failures.len() < 64 {
            self.failures.push(message);
        }
    }

    /// Merges another worker's counters into this one.
    pub fn merge(&mut self, other: &WorkerStats) {
        self.commands_executed += other.commands_executed;
        self.tasks_executed += other.tasks_executed;
        self.creates += other.creates;
        self.local_copies += other.local_copies;
        self.sends += other.sends;
        self.receives += other.receives;
        self.loads += other.loads;
        self.saves += other.saves;
        self.templates_installed += other.templates_installed;
        self.template_instantiations += other.template_instantiations;
        self.edits_applied += other.edits_applied;
        self.duplicate_commands_ignored += other.duplicate_commands_ignored;
        self.rejoin_acks += other.rejoin_acks;
        self.compute_time += other.compute_time;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        for f in &other.failures {
            self.record_failure(f.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums() {
        let mut a = WorkerStats::new();
        a.tasks_executed = 3;
        a.compute_time = Duration::from_millis(5);
        let mut b = WorkerStats::new();
        b.tasks_executed = 4;
        b.compute_time = Duration::from_millis(10);
        b.record_failure("x".to_string());
        a.merge(&b);
        assert_eq!(a.tasks_executed, 7);
        assert_eq!(a.compute_time, Duration::from_millis(15));
        assert_eq!(a.failures.len(), 1);
    }

    #[test]
    fn failure_cap() {
        let mut s = WorkerStats::new();
        for i in 0..100 {
            s.record_failure(format!("f{i}"));
        }
        assert_eq!(s.failures.len(), 64);
    }
}
