//! Shared object vault emulating durable storage.
//!
//! File commands (`LoadData`/`SaveData`) and checkpoints persist objects to
//! "durable storage". In this in-process reproduction that storage is a
//! process-wide key-value vault shared by every worker; a multi-machine
//! deployment would back the same interface with a distributed store. Values
//! are cloned application objects, so saving and loading does not require the
//! application to define a serialization format.

use std::collections::HashMap;

use parking_lot::Mutex;

use nimbus_core::appdata::AppData;

/// A process-wide store of named, cloned application objects.
#[derive(Default)]
pub struct ObjectVault {
    objects: Mutex<HashMap<String, Box<dyn AppData>>>,
}

impl ObjectVault {
    /// Creates an empty vault.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a clone of `data` under `key`, replacing any previous value.
    pub fn put(&self, key: &str, data: Box<dyn AppData>) {
        self.objects.lock().insert(key.to_string(), data);
    }

    /// Returns a clone of the object stored under `key`.
    pub fn get(&self, key: &str) -> Option<Box<dyn AppData>> {
        self.objects.lock().get(key).map(|d| d.clone_box())
    }

    /// Returns true if `key` exists.
    pub fn contains(&self, key: &str) -> bool {
        self.objects.lock().contains_key(key)
    }

    /// Removes a key.
    pub fn delete(&self, key: &str) {
        self.objects.lock().remove(key);
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.lock().len()
    }

    /// Returns true if the vault is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.lock().is_empty()
    }

    /// Total approximate bytes stored.
    pub fn resident_bytes(&self) -> usize {
        self.objects.lock().values().map(|d| d.approx_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::appdata::{downcast_ref, VecF64};

    #[test]
    fn put_get_delete() {
        let vault = ObjectVault::new();
        assert!(vault.is_empty());
        vault.put("ckpt/1", Box::new(VecF64::new(vec![1.0, 2.0])));
        assert!(vault.contains("ckpt/1"));
        assert_eq!(vault.len(), 1);
        let data = vault.get("ckpt/1").unwrap();
        assert_eq!(
            downcast_ref::<VecF64>(data.as_ref()).unwrap().values,
            vec![1.0, 2.0]
        );
        assert!(vault.get("missing").is_none());
        vault.delete("ckpt/1");
        assert!(vault.is_empty());
    }

    #[test]
    fn get_returns_an_independent_clone() {
        let vault = ObjectVault::new();
        vault.put("k", Box::new(VecF64::new(vec![1.0])));
        let mut copy = vault.get("k").unwrap();
        nimbus_core::downcast_mut::<VecF64>(copy.as_mut())
            .unwrap()
            .values[0] = 9.0;
        let original = vault.get("k").unwrap();
        assert_eq!(
            downcast_ref::<VecF64>(original.as_ref()).unwrap().values,
            vec![1.0]
        );
    }

    #[test]
    fn resident_bytes_accounts_contents() {
        let vault = ObjectVault::new();
        vault.put("a", Box::new(VecF64::zeros(1000)));
        assert!(vault.resident_bytes() >= 8000);
    }
}
