//! Shared object vault emulating durable storage.
//!
//! File commands (`LoadData`/`SaveData`) and checkpoints persist objects to
//! "durable storage". In the in-process reproduction that storage is a
//! process-wide key-value vault shared by every worker; a multi-machine
//! deployment would back the same interface with a distributed store.
//! Values are cloned application objects, so saving and loading does not
//! require the application to define a serialization format.
//!
//! For *multi-process* clusters the in-memory map dies with its process,
//! which would make every checkpoint entry saved by a killed worker
//! unrecoverable. [`ObjectVault::file_backed`] therefore additionally
//! persists each saved object's wire encoding
//! ([`AppData::to_wire`]/[`AppData::decode_wire`]) into a shared directory:
//! point every worker process at the same directory and a rejoining worker
//! can reload the checkpoints its previous incarnation saved.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use nimbus_core::appdata::AppData;

/// A process-wide store of named, cloned application objects, optionally
/// mirrored to a directory of wire-encoded files.
#[derive(Default)]
pub struct ObjectVault {
    objects: Mutex<HashMap<String, Box<dyn AppData>>>,
    dir: Option<PathBuf>,
}

impl ObjectVault {
    /// Creates an empty, purely in-memory vault.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a vault that additionally mirrors every saved object's wire
    /// encoding into `dir` (created if missing). Multiple processes may
    /// share the directory; keys map to stable file names.
    pub fn file_backed(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            objects: Mutex::new(HashMap::new()),
            dir: Some(dir),
        })
    }

    /// The backing directory, if this vault is file-backed.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn file_for(&self, key: &str) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        // Keys like `ckpt/3/lo1/p0` become flat, filesystem-safe names.
        let name: String = key
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        Some(dir.join(name))
    }

    /// Stores a clone of `data` under `key`, replacing any previous value.
    /// File-backed vaults also persist the object's wire encoding (objects
    /// without one stay memory-only).
    pub fn put(&self, key: &str, data: Box<dyn AppData>) {
        if let (Some(path), Some(bytes)) = (self.file_for(key), data.to_wire()) {
            // Write-then-rename so a concurrent reader in another process
            // never observes a torn file.
            let tmp = path.with_extension("tmp");
            if std::fs::write(&tmp, &bytes).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
        self.objects.lock().insert(key.to_string(), data);
    }

    /// Returns a clone of the object stored under `key` in this process's
    /// memory. Cross-process reads go through [`ObjectVault::get_bytes`].
    pub fn get(&self, key: &str) -> Option<Box<dyn AppData>> {
        self.objects.lock().get(key).map(|d| d.clone_box())
    }

    /// Returns the wire encoding stored under `key`: from the in-memory
    /// object if present, otherwise from the backing directory (an object
    /// saved by another — possibly dead — process).
    pub fn get_bytes(&self, key: &str) -> Option<Vec<u8>> {
        if let Some(data) = self.objects.lock().get(key) {
            if let Some(bytes) = data.to_wire() {
                return Some(bytes);
            }
        }
        std::fs::read(self.file_for(key)?).ok()
    }

    /// Returns true if `key` exists in memory or in the backing directory.
    pub fn contains(&self, key: &str) -> bool {
        self.objects.lock().contains_key(key)
            || self.file_for(key).map(|p| p.exists()).unwrap_or(false)
    }

    /// Removes a key (memory and backing file).
    pub fn delete(&self, key: &str) {
        self.objects.lock().remove(key);
        if let Some(path) = self.file_for(key) {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Number of objects stored in this process's memory.
    pub fn len(&self) -> usize {
        self.objects.lock().len()
    }

    /// Returns true if the in-memory vault is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.lock().is_empty()
    }

    /// Total approximate bytes stored in memory.
    pub fn resident_bytes(&self) -> usize {
        self.objects.lock().values().map(|d| d.approx_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::appdata::{downcast_ref, VecF64};

    #[test]
    fn put_get_delete() {
        let vault = ObjectVault::new();
        assert!(vault.is_empty());
        vault.put("ckpt/1", Box::new(VecF64::new(vec![1.0, 2.0])));
        assert!(vault.contains("ckpt/1"));
        assert_eq!(vault.len(), 1);
        let data = vault.get("ckpt/1").unwrap();
        assert_eq!(
            downcast_ref::<VecF64>(data.as_ref()).unwrap().values,
            vec![1.0, 2.0]
        );
        assert!(vault.get("missing").is_none());
        vault.delete("ckpt/1");
        assert!(vault.is_empty());
    }

    #[test]
    fn get_returns_an_independent_clone() {
        let vault = ObjectVault::new();
        vault.put("k", Box::new(VecF64::new(vec![1.0])));
        let mut copy = vault.get("k").unwrap();
        nimbus_core::downcast_mut::<VecF64>(copy.as_mut())
            .unwrap()
            .values[0] = 9.0;
        let original = vault.get("k").unwrap();
        assert_eq!(
            downcast_ref::<VecF64>(original.as_ref()).unwrap().values,
            vec![1.0]
        );
    }

    #[test]
    fn resident_bytes_accounts_contents() {
        let vault = ObjectVault::new();
        vault.put("a", Box::new(VecF64::zeros(1000)));
        assert!(vault.resident_bytes() >= 8000);
    }

    /// The cross-process story: a save in one vault instance is readable as
    /// wire bytes from a *different* vault instance sharing the directory —
    /// exactly what a rejoining worker process does with checkpoints saved
    /// by its previous incarnation.
    #[test]
    fn file_backed_vault_survives_the_writing_instance() {
        // Unique per process and per call without reading the wall clock
        // (the clock lint bans `SystemTime::now` outside the Clock module).
        static UNIQUE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "nimbus-vault-test-{}-{}",
            std::process::id(),
            UNIQUE.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        // A recycled pid could collide with a crashed run's leftovers.
        std::fs::remove_dir_all(&dir).ok();
        {
            let vault = ObjectVault::file_backed(&dir).unwrap();
            vault.put("ckpt/1/lo1/p0", Box::new(VecF64::new(vec![3.0, -4.5])));
        } // The writing "process" dies here.
        let fresh = ObjectVault::file_backed(&dir).unwrap();
        assert!(fresh.get("ckpt/1/lo1/p0").is_none(), "memory died with it");
        assert!(fresh.contains("ckpt/1/lo1/p0"), "the file survived");
        let bytes = fresh.get_bytes("ckpt/1/lo1/p0").unwrap();
        let mut decoded = VecF64::default();
        AppData::decode_wire(&mut decoded, &bytes).unwrap();
        assert_eq!(decoded.values, vec![3.0, -4.5]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
