//! The worker's command queue with local dependency resolution.
//!
//! Requirement 1 of Section 3.1: workers maintain a queue of tasks and
//! locally determine when tasks are runnable, without consulting the
//! controller. A command becomes runnable when every command in its before
//! set has completed on this worker and — for receive-copy commands — its
//! data transfer has arrived.

use std::collections::{HashMap, HashSet, VecDeque};

use nimbus_core::ids::{CommandId, PhysicalObjectId, TransferId};
use nimbus_core::{Command, CommandKind};
use nimbus_net::DataPayload;

/// Local data-dependency tracker.
///
/// Commands arrive at a worker in program order but their before sets only
/// cover dependencies *within* one dispatch (a template instantiation or one
/// `ExecuteCommands` batch). The tracker augments each enqueued command with
/// dependencies on earlier commands that touch the same physical objects, so
/// successive instantiations of a template (and patches injected between
/// them) are ordered correctly without any controller involvement.
#[derive(Default)]
struct ObjectDeps {
    last_writer: HashMap<PhysicalObjectId, CommandId>,
    readers_since_write: HashMap<PhysicalObjectId, Vec<CommandId>>,
}

impl ObjectDeps {
    /// Computes extra dependencies for a command and updates the tracker.
    fn augment(&mut self, command: &Command) -> Vec<CommandId> {
        let mut extra = Vec::new();
        let (reads, writes) = command_accesses(command);
        for obj in &reads {
            if let Some(w) = self.last_writer.get(obj) {
                extra.push(*w);
            }
        }
        for obj in &writes {
            if let Some(w) = self.last_writer.get(obj) {
                extra.push(*w);
            }
            if let Some(rs) = self.readers_since_write.get(obj) {
                extra.extend(rs.iter().copied());
            }
        }
        for obj in reads {
            self.readers_since_write
                .entry(obj)
                .or_default()
                .push(command.id);
        }
        for obj in writes {
            self.last_writer.insert(obj, command.id);
            self.readers_since_write.insert(obj, Vec::new());
        }
        extra.retain(|c| *c != command.id);
        extra.sort_unstable();
        extra.dedup();
        extra
    }

    fn clear(&mut self) {
        self.last_writer.clear();
        self.readers_since_write.clear();
    }
}

/// Returns the physical objects a command reads and writes, including the
/// implicit accesses of copy, load, and save commands.
fn command_accesses(command: &Command) -> (Vec<PhysicalObjectId>, Vec<PhysicalObjectId>) {
    let mut reads = command.read_set.clone();
    let mut writes = command.write_set.clone();
    match &command.kind {
        CommandKind::LocalCopy { from, to } => {
            reads.push(*from);
            writes.push(*to);
        }
        CommandKind::SendCopy { from, .. } => reads.push(*from),
        CommandKind::ReceiveCopy { to, .. } => writes.push(*to),
        CommandKind::LoadData { object, .. } => writes.push(*object),
        CommandKind::SaveData { object, .. } => reads.push(*object),
        CommandKind::CreateData { object, .. } => writes.push(*object),
        CommandKind::DestroyData { object } => writes.push(*object),
        CommandKind::RunTask { .. } => {}
    }
    reads.sort_unstable();
    reads.dedup();
    writes.sort_unstable();
    writes.dedup();
    // An object both read and written counts as a write for ordering.
    reads.retain(|r| !writes.contains(r));
    (reads, writes)
}

/// Tracks pending, ready, and completed commands on one worker.
#[derive(Default)]
pub struct CommandQueue {
    /// Commands whose dependencies are not yet satisfied.
    pending: HashMap<CommandId, PendingCommand>,
    /// Reverse dependency index: completed command -> commands waiting on it.
    dependents: HashMap<CommandId, Vec<CommandId>>,
    /// Commands ready to execute, in arrival order.
    ready: VecDeque<Command>,
    /// Commands that have completed on this worker.
    completed: HashSet<CommandId>,
    /// Every command id currently enqueued (pending, ready, or popped but
    /// not yet completed). Guards against duplicate or stale dispatches —
    /// possible during recovery replay and rejoin — re-entering the queue.
    enqueued: HashSet<CommandId>,
    /// Data that arrived before its receive command was enqueued (or whose
    /// receive is still blocked on local dependencies).
    arrived: HashMap<TransferId, DataPayload>,
    /// Receive commands waiting for their transfer to arrive.
    waiting_for_data: HashMap<TransferId, CommandId>,
    /// Local data-dependency augmentation across dispatch batches.
    object_deps: ObjectDeps,
}

struct PendingCommand {
    command: Command,
    unmet_deps: usize,
    needs_data: Option<TransferId>,
}

impl CommandQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a batch of commands — the shape every dispatch arrives in,
    /// whether as one `ExecuteCommands` or expanded from a batched wire
    /// frame. Bookkeeping capacity is reserved once per batch (not grown
    /// command by command), and the duplicate/stale-id guard applies to each
    /// command exactly as in the singleton path. Returns the number of
    /// duplicate or stale dispatches that were ignored.
    pub fn add_commands(&mut self, commands: Vec<Command>) -> u64 {
        self.enqueued.reserve(commands.len());
        self.ready.reserve(commands.len());
        let mut ignored = 0;
        for command in commands {
            if !self.add_command(command) {
                ignored += 1;
            }
        }
        ignored
    }

    /// Enqueues a single command, augmenting its before set with locally
    /// tracked data dependencies on earlier commands touching the same
    /// objects.
    ///
    /// A command whose id is already queued, executing, or completed is a
    /// duplicate or stale dispatch (recovery replay and rejoin can produce
    /// these); it is ignored and `false` is returned — it must never panic
    /// the worker or corrupt the dependency bookkeeping by double-counting.
    pub fn add_command(&mut self, command: Command) -> bool {
        if self.enqueued.contains(&command.id) || self.completed.contains(&command.id) {
            return false;
        }
        self.enqueued.insert(command.id);
        let extra = self.object_deps.augment(&command);
        let unmet: Vec<CommandId> = command
            .before
            .iter()
            .chain(extra.iter())
            .filter(|dep| !self.completed.contains(*dep) && **dep != command.id)
            .copied()
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        let needs_data = match &command.kind {
            CommandKind::ReceiveCopy { transfer, .. } if !self.arrived.contains_key(transfer) => {
                Some(*transfer)
            }
            _ => None,
        };
        if unmet.is_empty() && needs_data.is_none() {
            self.ready.push_back(command);
            return true;
        }
        let id = command.id;
        for dep in &unmet {
            self.dependents.entry(*dep).or_default().push(id);
        }
        if let Some(t) = needs_data {
            self.waiting_for_data.insert(t, id);
        }
        self.pending.insert(
            id,
            PendingCommand {
                command,
                unmet_deps: unmet.len(),
                needs_data,
            },
        );
        true
    }

    /// Moves a pending command to the ready queue if both its dependency
    /// count and its data requirement are satisfied. A waiter that is no
    /// longer pending (released through another path) is ignored rather
    /// than treated as an invariant violation.
    fn promote_if_runnable(&mut self, id: CommandId) {
        let runnable = match self.pending.get(&id) {
            Some(p) => p.unmet_deps == 0 && p.needs_data.is_none(),
            None => false,
        };
        if runnable {
            if let Some(p) = self.pending.remove(&id) {
                self.ready.push_back(p.command);
            }
        }
    }

    /// Records the arrival of a data transfer. The payload is retained until
    /// the matching receive command executes and claims it.
    pub fn data_arrived(&mut self, transfer: TransferId, payload: DataPayload) {
        self.arrived.insert(transfer, payload);
        if let Some(id) = self.waiting_for_data.remove(&transfer) {
            if let Some(p) = self.pending.get_mut(&id) {
                p.needs_data = None;
            }
            self.promote_if_runnable(id);
        }
    }

    /// Claims the payload for a transfer (called when the receive executes).
    pub fn take_payload(&mut self, transfer: TransferId) -> Option<DataPayload> {
        self.arrived.remove(&transfer)
    }

    /// Marks a command as completed, releasing its dependents.
    pub fn complete(&mut self, id: CommandId) {
        self.completed.insert(id);
        self.enqueued.remove(&id);
        let Some(waiters) = self.dependents.remove(&id) else {
            return;
        };
        for waiter in waiters {
            if let Some(p) = self.pending.get_mut(&waiter) {
                p.unmet_deps = p.unmet_deps.saturating_sub(1);
            }
            self.promote_if_runnable(waiter);
        }
    }

    /// Pops the next runnable command, if any.
    pub fn pop_ready(&mut self) -> Option<Command> {
        self.ready.pop_front()
    }

    /// Number of commands ready to run.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Number of commands blocked on dependencies or data.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of completed commands retained for dependency resolution.
    pub fn completed_len(&self) -> usize {
        self.completed.len()
    }

    /// Returns true if no work is queued (pending or ready).
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.ready.is_empty()
    }

    /// Discards all queued work (used by the `Halt` fault-recovery command)
    /// and returns how many commands were dropped.
    pub fn flush(&mut self) -> usize {
        let dropped = self.pending.len() + self.ready.len();
        self.pending.clear();
        self.dependents.clear();
        self.ready.clear();
        self.enqueued.clear();
        self.waiting_for_data.clear();
        self.arrived.clear();
        self.object_deps.clear();
        dropped
    }

    /// Drops completion records older than the current job phase. The
    /// controller guarantees dependencies never span a checkpoint, so this
    /// keeps memory bounded on long runs.
    pub fn prune_completed(&mut self) {
        self.completed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use nimbus_core::ids::{FunctionId, PhysicalObjectId, TaskId, WorkerId};

    fn task(id: u64, before: Vec<u64>) -> Command {
        Command::new(
            CommandId(id),
            CommandKind::RunTask {
                function: FunctionId(1),
                task: TaskId(id),
            },
        )
        .with_before(before.into_iter().map(CommandId).collect())
    }

    fn receive(id: u64, transfer: u64, before: Vec<u64>) -> Command {
        Command::new(
            CommandId(id),
            CommandKind::ReceiveCopy {
                to: PhysicalObjectId(1),
                from_worker: WorkerId(1),
                transfer: TransferId(transfer),
            },
        )
        .with_before(before.into_iter().map(CommandId).collect())
    }

    fn payload() -> DataPayload {
        DataPayload::Bytes(Bytes::from_static(&[1, 2, 3]))
    }

    #[test]
    fn independent_commands_are_immediately_ready() {
        let mut q = CommandQueue::new();
        q.add_commands(vec![task(1, vec![]), task(2, vec![])]);
        assert_eq!(q.ready_len(), 2);
        assert_eq!(q.pending_len(), 0);
        assert!(q.pop_ready().is_some());
        assert!(q.pop_ready().is_some());
        assert!(q.pop_ready().is_none());
    }

    #[test]
    fn dependencies_gate_readiness() {
        let mut q = CommandQueue::new();
        q.add_commands(vec![task(1, vec![]), task(2, vec![1]), task(3, vec![1, 2])]);
        assert_eq!(q.ready_len(), 1);
        let first = q.pop_ready().unwrap();
        assert_eq!(first.id, CommandId(1));
        q.complete(CommandId(1));
        assert_eq!(q.ready_len(), 1);
        let second = q.pop_ready().unwrap();
        assert_eq!(second.id, CommandId(2));
        q.complete(CommandId(2));
        assert_eq!(q.pop_ready().unwrap().id, CommandId(3));
        q.complete(CommandId(3));
        assert!(q.is_idle());
        assert_eq!(q.completed_len(), 3);
    }

    #[test]
    fn dependency_on_already_completed_command_is_satisfied() {
        let mut q = CommandQueue::new();
        q.add_command(task(1, vec![]));
        q.pop_ready().unwrap();
        q.complete(CommandId(1));
        q.add_command(task(2, vec![1]));
        assert_eq!(q.ready_len(), 1);
    }

    #[test]
    fn receive_waits_for_both_deps_and_data() {
        let mut q = CommandQueue::new();
        q.add_commands(vec![task(1, vec![]), receive(2, 7, vec![1])]);
        q.pop_ready().unwrap();
        q.complete(CommandId(1));
        // Dependency met but no data yet.
        assert_eq!(q.ready_len(), 0);
        q.data_arrived(TransferId(7), payload());
        assert_eq!(q.ready_len(), 1);
        assert!(q.take_payload(TransferId(7)).is_some());
        assert!(q.take_payload(TransferId(7)).is_none());
    }

    #[test]
    fn data_arriving_before_receive_is_buffered() {
        let mut q = CommandQueue::new();
        q.data_arrived(TransferId(7), payload());
        q.add_command(receive(2, 7, vec![]));
        assert_eq!(q.ready_len(), 1);
    }

    #[test]
    fn data_arriving_before_deps_met_does_not_unblock_early() {
        let mut q = CommandQueue::new();
        q.add_commands(vec![task(1, vec![]), receive(2, 7, vec![1])]);
        q.data_arrived(TransferId(7), payload());
        assert_eq!(q.ready_len(), 1, "only the task is ready");
        q.pop_ready().unwrap();
        q.complete(CommandId(1));
        assert_eq!(
            q.ready_len(),
            1,
            "receive unblocks after dependency completes"
        );
    }

    #[test]
    fn flush_discards_everything() {
        let mut q = CommandQueue::new();
        q.add_commands(vec![
            task(1, vec![]),
            task(2, vec![1]),
            receive(3, 9, vec![]),
        ]);
        let dropped = q.flush();
        assert_eq!(dropped, 3);
        assert!(q.is_idle());
    }

    /// Regression: a duplicate dispatch of a command id — while it is
    /// pending, ready, or already completed — must be ignored, not panic the
    /// worker thread or double-release dependents.
    #[test]
    fn double_dispatched_command_id_is_ignored_everywhere() {
        let mut q = CommandQueue::new();
        // Duplicate while pending (blocked on a dependency).
        assert_eq!(
            q.add_commands(vec![task(1, vec![]), task(2, vec![1])]),
            0,
            "fresh ids must not count as duplicates"
        );
        assert!(!q.add_command(task(2, vec![1])), "pending duplicate");
        // Duplicate while ready.
        assert!(!q.add_command(task(1, vec![])), "ready duplicate");
        assert_eq!(q.ready_len(), 1);
        // Duplicate while popped but not yet completed.
        let first = q.pop_ready().unwrap();
        assert_eq!(first.id, CommandId(1));
        assert!(!q.add_command(task(1, vec![])), "executing duplicate");
        q.complete(CommandId(1));
        // The dependent becomes ready exactly once.
        assert_eq!(q.ready_len(), 1);
        q.pop_ready().unwrap();
        q.complete(CommandId(2));
        // Duplicate after completion (a stale re-dispatch).
        assert!(!q.add_command(task(2, vec![1])), "stale duplicate");
        assert!(q.is_idle());
        assert_eq!(q.completed_len(), 2);
    }

    /// Regression: a duplicate receive for a transfer whose payload already
    /// arrived must not panic or consume the payload twice.
    #[test]
    fn double_dispatched_receive_is_ignored() {
        let mut q = CommandQueue::new();
        q.data_arrived(TransferId(7), payload());
        assert!(q.add_command(receive(2, 7, vec![])));
        assert!(!q.add_command(receive(2, 7, vec![])));
        assert_eq!(q.ready_len(), 1);
        q.pop_ready().unwrap();
        assert!(q.take_payload(TransferId(7)).is_some());
        q.complete(CommandId(2));
        assert!(q.is_idle());
    }

    /// Batched dispatch semantics: several batches drained back to back
    /// behave exactly like their singleton expansion — per-batch order is
    /// kept, cross-batch object dependencies are augmented, and duplicate
    /// ids arriving in a *later* batch (a redelivered batch frame) are
    /// ignored without double-releasing dependents.
    #[test]
    fn batched_dispatches_preserve_order_and_duplicate_guards() {
        let mut q = CommandQueue::new();
        let write = |id: u64, object: u64, before: Vec<u64>| {
            Command::new(
                CommandId(id),
                CommandKind::RunTask {
                    function: FunctionId(1),
                    task: TaskId(id),
                },
            )
            .with_writes(vec![PhysicalObjectId(object)])
            .with_before(before.into_iter().map(CommandId).collect())
        };
        // Batch 1: two writers of object 9, ordered by their before set.
        assert_eq!(
            q.add_commands(vec![write(1, 9, vec![]), write(2, 9, vec![1])]),
            0
        );
        // Batch 2: redelivers batch 1 (duplicates) plus a fresh dependent.
        assert_eq!(
            q.add_commands(vec![
                write(1, 9, vec![]),
                write(2, 9, vec![1]),
                write(3, 9, vec![])
            ]),
            2,
            "redelivered commands are ignored, fresh ones accepted"
        );
        let mut order = Vec::new();
        while let Some(c) = q.pop_ready() {
            order.push(c.id.raw());
            q.complete(c.id);
        }
        assert_eq!(order, vec![1, 2, 3], "object deps serialize across batches");
        assert!(q.is_idle());
    }

    #[test]
    fn prune_completed_clears_history() {
        let mut q = CommandQueue::new();
        q.add_command(task(1, vec![]));
        q.pop_ready().unwrap();
        q.complete(CommandId(1));
        assert_eq!(q.completed_len(), 1);
        q.prune_completed();
        assert_eq!(q.completed_len(), 0);
    }
}
