//! Command graphs: the controller's working representation of a basic block.
//!
//! While recording a basic block (between the driver's template-start and
//! template-finish messages), the controller keeps the expanded commands in a
//! [`CommandGraph`]: every command is tagged with its assigned worker and the
//! graph knows how to validate before-sets, detect cycles, and produce
//! per-worker topological orders. Once the block finishes, the graph is
//! post-processed into the table-based template structures
//! ([`crate::template`]) used for cheap re-instantiation.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::command::{Command, CommandKind};
use crate::error::{CoreError, CoreResult};
use crate::ids::{CommandId, WorkerId};

/// A command together with the worker it is assigned to.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AssignedCommand {
    /// The command itself.
    pub command: Command,
    /// The worker that will execute it.
    pub worker: WorkerId,
}

/// A directed acyclic graph of assigned commands.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CommandGraph {
    commands: Vec<AssignedCommand>,
    index: HashMap<CommandId, usize>,
}

impl CommandGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a command assigned to a worker. Returns an error if the command id
    /// is already present.
    pub fn add(&mut self, command: Command, worker: WorkerId) -> CoreResult<()> {
        if self.index.contains_key(&command.id) {
            return Err(CoreError::Invariant(format!(
                "command {} added twice to graph",
                command.id
            )));
        }
        self.index.insert(command.id, self.commands.len());
        self.commands.push(AssignedCommand { command, worker });
        Ok(())
    }

    /// Number of commands in the graph.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Returns true if the graph has no commands.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Number of application task commands in the graph.
    pub fn task_count(&self) -> usize {
        self.commands
            .iter()
            .filter(|c| c.command.kind.is_task())
            .count()
    }

    /// Looks up a command by id.
    pub fn get(&self, id: CommandId) -> Option<&AssignedCommand> {
        self.index.get(&id).map(|i| &self.commands[*i])
    }

    /// Returns the worker a command is assigned to.
    pub fn worker_of(&self, id: CommandId) -> Option<WorkerId> {
        self.get(id).map(|c| c.worker)
    }

    /// Iterates over all assigned commands in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &AssignedCommand> {
        self.commands.iter()
    }

    /// Groups commands by worker, preserving insertion order within a worker.
    pub fn per_worker(&self) -> HashMap<WorkerId, Vec<&AssignedCommand>> {
        let mut map: HashMap<WorkerId, Vec<&AssignedCommand>> = HashMap::new();
        for c in &self.commands {
            map.entry(c.worker).or_default().push(c);
        }
        map
    }

    /// Returns the set of workers that appear in the graph.
    pub fn workers(&self) -> Vec<WorkerId> {
        let mut ws: Vec<WorkerId> = self.commands.iter().map(|c| c.worker).collect();
        ws.sort_unstable();
        ws.dedup();
        ws
    }

    /// Validates structural invariants:
    ///
    /// * every before-set entry references a command present in the graph,
    /// * before-sets only reference commands on the same worker (cross-worker
    ///   dependencies must be expressed as send/receive copy pairs), and
    /// * the dependency relation is acyclic.
    pub fn validate(&self) -> CoreResult<()> {
        for c in &self.commands {
            for dep in &c.command.before {
                let dep_cmd = self.get(*dep).ok_or(CoreError::UnknownCommand(*dep))?;
                if dep_cmd.worker != c.worker {
                    return Err(CoreError::Invariant(format!(
                        "command {} on worker {} depends on command {} on worker {}; \
                         cross-worker dependencies must use copy commands",
                        c.command.id, c.worker, dep, dep_cmd.worker
                    )));
                }
            }
        }
        self.topological_order().map(|_| ())
    }

    /// Returns a topological order of command ids, or a cycle error.
    pub fn topological_order(&self) -> CoreResult<Vec<CommandId>> {
        let mut in_degree: HashMap<CommandId, usize> = HashMap::with_capacity(self.commands.len());
        let mut dependents: HashMap<CommandId, Vec<CommandId>> = HashMap::new();
        for c in &self.commands {
            in_degree.entry(c.command.id).or_insert(0);
            for dep in &c.command.before {
                if !self.index.contains_key(dep) {
                    return Err(CoreError::UnknownCommand(*dep));
                }
                *in_degree.entry(c.command.id).or_insert(0) += 1;
                dependents.entry(*dep).or_default().push(c.command.id);
            }
        }
        let mut queue: VecDeque<CommandId> = self
            .commands
            .iter()
            .map(|c| c.command.id)
            .filter(|id| in_degree[id] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.commands.len());
        while let Some(id) = queue.pop_front() {
            order.push(id);
            if let Some(deps) = dependents.get(&id) {
                for d in deps {
                    let deg = in_degree.get_mut(d).expect("dependent has in-degree");
                    *deg -= 1;
                    if *deg == 0 {
                        queue.push_back(*d);
                    }
                }
            }
        }
        if order.len() != self.commands.len() {
            let involved = self
                .commands
                .iter()
                .map(|c| c.command.id)
                .filter(|id| !order.contains(id))
                .collect();
            return Err(CoreError::DependencyCycle { involved });
        }
        Ok(order)
    }

    /// Returns the commands with an empty before set (the roots).
    pub fn roots(&self) -> Vec<CommandId> {
        self.commands
            .iter()
            .filter(|c| c.command.before.is_empty())
            .map(|c| c.command.id)
            .collect()
    }

    /// Total estimated wire size of all commands, in bytes.
    pub fn wire_size(&self) -> usize {
        self.commands.iter().map(|c| c.command.wire_size()).sum()
    }

    /// Counts commands per kind tag (for statistics).
    pub fn kind_histogram(&self) -> HashMap<&'static str, usize> {
        let mut h = HashMap::new();
        for c in &self.commands {
            *h.entry(c.command.kind.tag()).or_insert(0) += 1;
        }
        h
    }

    /// Consumes the graph and returns the commands in insertion order.
    pub fn into_commands(self) -> Vec<AssignedCommand> {
        self.commands
    }

    /// Returns the number of commands whose kind matches `pred`.
    pub fn count_matching(&self, pred: impl Fn(&CommandKind) -> bool) -> usize {
        self.commands
            .iter()
            .filter(|c| pred(&c.command.kind))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FunctionId, PhysicalObjectId, TaskId, TransferId};

    fn task(id: u64, before: Vec<u64>) -> Command {
        Command::new(
            CommandId(id),
            CommandKind::RunTask {
                function: FunctionId(1),
                task: TaskId(id),
            },
        )
        .with_before(before.into_iter().map(CommandId).collect())
    }

    #[test]
    fn add_and_lookup() {
        let mut g = CommandGraph::new();
        g.add(task(1, vec![]), WorkerId(0)).unwrap();
        g.add(task(2, vec![1]), WorkerId(0)).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g.task_count(), 2);
        assert_eq!(g.worker_of(CommandId(2)), Some(WorkerId(0)));
        assert_eq!(g.roots(), vec![CommandId(1)]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn duplicate_command_rejected() {
        let mut g = CommandGraph::new();
        g.add(task(1, vec![]), WorkerId(0)).unwrap();
        assert!(g.add(task(1, vec![]), WorkerId(0)).is_err());
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let mut g = CommandGraph::new();
        g.add(task(3, vec![1, 2]), WorkerId(0)).unwrap();
        g.add(task(1, vec![]), WorkerId(0)).unwrap();
        g.add(task(2, vec![1]), WorkerId(0)).unwrap();
        let order = g.topological_order().unwrap();
        let pos = |id: u64| order.iter().position(|x| *x == CommandId(id)).unwrap();
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
        assert!(pos(1) < pos(3));
    }

    #[test]
    fn cycle_detected() {
        let mut g = CommandGraph::new();
        g.add(task(1, vec![2]), WorkerId(0)).unwrap();
        g.add(task(2, vec![1]), WorkerId(0)).unwrap();
        assert!(matches!(
            g.topological_order(),
            Err(CoreError::DependencyCycle { .. })
        ));
    }

    #[test]
    fn dangling_dependency_detected() {
        let mut g = CommandGraph::new();
        g.add(task(1, vec![42]), WorkerId(0)).unwrap();
        assert!(matches!(
            g.validate(),
            Err(CoreError::UnknownCommand(CommandId(42)))
        ));
    }

    #[test]
    fn cross_worker_dependency_rejected() {
        let mut g = CommandGraph::new();
        g.add(task(1, vec![]), WorkerId(0)).unwrap();
        g.add(task(2, vec![1]), WorkerId(1)).unwrap();
        assert!(g.validate().is_err());
    }

    #[test]
    fn cross_worker_via_copies_is_valid() {
        let mut g = CommandGraph::new();
        g.add(task(1, vec![]), WorkerId(0)).unwrap();
        g.add(
            Command::new(
                CommandId(2),
                CommandKind::SendCopy {
                    from: PhysicalObjectId(1),
                    to_worker: WorkerId(1),
                    transfer: TransferId(7),
                },
            )
            .with_before(vec![CommandId(1)]),
            WorkerId(0),
        )
        .unwrap();
        g.add(
            Command::new(
                CommandId(3),
                CommandKind::ReceiveCopy {
                    to: PhysicalObjectId(2),
                    from_worker: WorkerId(0),
                    transfer: TransferId(7),
                },
            ),
            WorkerId(1),
        )
        .unwrap();
        g.add(task(4, vec![3]), WorkerId(1)).unwrap();
        assert!(g.validate().is_ok());
        assert_eq!(g.workers(), vec![WorkerId(0), WorkerId(1)]);
        assert_eq!(g.count_matching(|k| k.is_network_copy()), 2);
        let hist = g.kind_histogram();
        assert_eq!(hist["task"], 2);
        assert_eq!(hist["send"], 1);
    }

    #[test]
    fn per_worker_grouping_preserves_order() {
        let mut g = CommandGraph::new();
        g.add(task(1, vec![]), WorkerId(0)).unwrap();
        g.add(task(2, vec![]), WorkerId(1)).unwrap();
        g.add(task(3, vec![1]), WorkerId(0)).unwrap();
        let per = g.per_worker();
        assert_eq!(per[&WorkerId(0)].len(), 2);
        assert_eq!(per[&WorkerId(0)][0].command.id, CommandId(1));
        assert_eq!(per[&WorkerId(0)][1].command.id, CommandId(3));
        assert_eq!(per[&WorkerId(1)].len(), 1);
    }
}
