//! Logical datasets and physical data object instances.
//!
//! Nimbus data objects are mutable (Section 3.3): each logical partition can
//! have several physical instances spread over workers, each holding some
//! version of the partition. The controller tracks which instance holds the
//! latest version so tasks always read up-to-date values; stale instances are
//! refreshed through copy commands.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::ids::{
    LogicalObjectId, LogicalPartition, PartitionIndex, PhysicalObjectId, Version, WorkerId,
};

/// Definition of a logical dataset as declared by the driver program.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetDef {
    /// The logical object identifier.
    pub id: LogicalObjectId,
    /// Human-readable dataset name (unique within a job).
    pub name: String,
    /// Number of partitions the dataset is split into.
    pub partitions: u32,
}

impl DatasetDef {
    /// Creates a dataset definition.
    pub fn new(id: LogicalObjectId, name: impl Into<String>, partitions: u32) -> Self {
        Self {
            id,
            name: name.into(),
            partitions,
        }
    }

    /// Iterates over the logical partitions of this dataset.
    pub fn logical_partitions(&self) -> impl Iterator<Item = LogicalPartition> + '_ {
        let id = self.id;
        (0..self.partitions).map(move |p| LogicalPartition::new(id, PartitionIndex(p)))
    }

    /// Returns the logical partition at the given index.
    pub fn partition(&self, index: u32) -> LogicalPartition {
        LogicalPartition::new(self.id, PartitionIndex(index))
    }
}

/// A physical instance of a logical partition living on a worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysicalInstance {
    /// The physical object identifier (unique across the cluster).
    pub id: PhysicalObjectId,
    /// The logical partition this instance holds.
    pub logical: LogicalPartition,
    /// The worker whose memory holds the instance.
    pub worker: WorkerId,
    /// The version of the logical partition currently held.
    pub version: Version,
}

impl PhysicalInstance {
    /// Creates an instance at version zero.
    pub fn new(id: PhysicalObjectId, logical: LogicalPartition, worker: WorkerId) -> Self {
        Self {
            id,
            logical,
            worker,
            version: Version::ZERO,
        }
    }
}

/// Registry of dataset definitions, addressable by id or name.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DatasetRegistry {
    by_id: HashMap<LogicalObjectId, DatasetDef>,
    by_name: HashMap<String, LogicalObjectId>,
}

impl DatasetRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a dataset definition. Re-registering the same id replaces it.
    pub fn register(&mut self, def: DatasetDef) {
        self.by_name.insert(def.name.clone(), def.id);
        self.by_id.insert(def.id, def);
    }

    /// Looks up a dataset by id.
    pub fn get(&self, id: LogicalObjectId) -> Option<&DatasetDef> {
        self.by_id.get(&id)
    }

    /// Looks up a dataset by name.
    pub fn get_by_name(&self, name: &str) -> Option<&DatasetDef> {
        self.by_name.get(name).and_then(|id| self.by_id.get(id))
    }

    /// Returns the number of registered datasets.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Returns true if no datasets are registered.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterates over all registered datasets.
    pub fn iter(&self) -> impl Iterator<Item = &DatasetDef> {
        self.by_id.values()
    }

    /// Total number of logical partitions across all datasets.
    pub fn total_partitions(&self) -> u64 {
        self.by_id.values().map(|d| d.partitions as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_partition_iteration() {
        let d = DatasetDef::new(LogicalObjectId(1), "tdata", 4);
        let parts: Vec<_> = d.logical_partitions().collect();
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[2], d.partition(2));
        assert_eq!(parts[2].partition.raw(), 2);
    }

    #[test]
    fn registry_lookup_by_id_and_name() {
        let mut reg = DatasetRegistry::new();
        reg.register(DatasetDef::new(LogicalObjectId(1), "tdata", 8));
        reg.register(DatasetDef::new(LogicalObjectId(2), "coeff", 8));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get(LogicalObjectId(2)).unwrap().name, "coeff");
        assert_eq!(reg.get_by_name("tdata").unwrap().id, LogicalObjectId(1));
        assert!(reg.get_by_name("missing").is_none());
        assert_eq!(reg.total_partitions(), 16);
    }

    #[test]
    fn registry_replaces_on_reregister() {
        let mut reg = DatasetRegistry::new();
        reg.register(DatasetDef::new(LogicalObjectId(1), "a", 2));
        reg.register(DatasetDef::new(LogicalObjectId(1), "a", 4));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get(LogicalObjectId(1)).unwrap().partitions, 4);
    }

    #[test]
    fn physical_instance_starts_at_version_zero() {
        let inst = PhysicalInstance::new(
            PhysicalObjectId(9),
            LogicalPartition::new(LogicalObjectId(1), PartitionIndex(0)),
            WorkerId(3),
        );
        assert_eq!(inst.version, Version::ZERO);
    }
}
