//! Control-plane commands (Section 3.4 of the paper).
//!
//! The Nimbus control plane has four major command families: data commands
//! create and destroy data objects on workers, copy commands move data
//! between objects (locally or over the network), file commands load and save
//! objects from durable storage, and task commands run application functions.
//!
//! Every command has five fields: a unique identifier, a read set, a write
//! set, a *before set* of commands that must complete first, and an opaque
//! parameter block. Task commands additionally name the application function
//! to run. A before set only ever references commands on the **same worker**;
//! cross-worker dependencies are expressed through send/receive copy pairs.

use serde::{Deserialize, Serialize};

use crate::ids::{
    CommandId, FunctionId, LogicalPartition, PhysicalObjectId, TaskId, TransferId, WorkerId,
};
use crate::params::TaskParams;

/// The operation a command performs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommandKind {
    /// Allocate a physical data object on the worker for a logical partition.
    CreateData {
        /// The physical object to allocate.
        object: PhysicalObjectId,
        /// The logical partition the object will hold.
        logical: LogicalPartition,
    },
    /// Free a physical data object on the worker.
    DestroyData {
        /// The physical object to free.
        object: PhysicalObjectId,
    },
    /// Copy one physical object into another on the same worker.
    LocalCopy {
        /// Source object.
        from: PhysicalObjectId,
        /// Destination object.
        to: PhysicalObjectId,
    },
    /// Send the contents of a physical object to another worker.
    ///
    /// Send commands follow a push model: the sender starts transmitting as
    /// soon as the before set is satisfied, without waiting for the receiver.
    SendCopy {
        /// Source object on this worker.
        from: PhysicalObjectId,
        /// Worker that will receive the data.
        to_worker: WorkerId,
        /// Transfer identifier matching the receiver's `ReceiveCopy`.
        transfer: TransferId,
    },
    /// Receive data from another worker into a local physical object.
    ///
    /// The command completes once the matching transfer has arrived *and* its
    /// before set is satisfied; only then does the worker flip the object's
    /// buffer pointer so the new value becomes visible.
    ReceiveCopy {
        /// Destination object on this worker.
        to: PhysicalObjectId,
        /// Worker the data is coming from.
        from_worker: WorkerId,
        /// Transfer identifier matching the sender's `SendCopy`.
        transfer: TransferId,
    },
    /// Load a physical object from durable storage.
    LoadData {
        /// Destination object.
        object: PhysicalObjectId,
        /// Storage key to read.
        key: String,
    },
    /// Save a physical object to durable storage.
    SaveData {
        /// Source object.
        object: PhysicalObjectId,
        /// Storage key to write.
        key: String,
    },
    /// Execute an application function over the read and write sets.
    RunTask {
        /// The application function to execute.
        function: FunctionId,
        /// The driver-level task this command realizes.
        task: TaskId,
    },
}

impl CommandKind {
    /// Returns a short human-readable tag for statistics and tracing.
    pub fn tag(&self) -> &'static str {
        match self {
            CommandKind::CreateData { .. } => "create",
            CommandKind::DestroyData { .. } => "destroy",
            CommandKind::LocalCopy { .. } => "local_copy",
            CommandKind::SendCopy { .. } => "send",
            CommandKind::ReceiveCopy { .. } => "receive",
            CommandKind::LoadData { .. } => "load",
            CommandKind::SaveData { .. } => "save",
            CommandKind::RunTask { .. } => "task",
        }
    }

    /// Returns true if this is an application task command.
    pub fn is_task(&self) -> bool {
        matches!(self, CommandKind::RunTask { .. })
    }

    /// Returns true if this command moves data between workers.
    pub fn is_network_copy(&self) -> bool {
        matches!(
            self,
            CommandKind::SendCopy { .. } | CommandKind::ReceiveCopy { .. }
        )
    }
}

/// A fully specified control-plane command addressed to a single worker.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Command {
    /// Unique identifier of this command.
    pub id: CommandId,
    /// The operation to perform.
    pub kind: CommandKind,
    /// Physical objects read by the command.
    pub read_set: Vec<PhysicalObjectId>,
    /// Physical objects written by the command.
    pub write_set: Vec<PhysicalObjectId>,
    /// Commands on the same worker that must complete before this one runs.
    pub before: Vec<CommandId>,
    /// Opaque parameters passed to the command (task arguments, constants).
    pub params: TaskParams,
}

impl Command {
    /// Creates a command with empty read/write/before sets.
    pub fn new(id: CommandId, kind: CommandKind) -> Self {
        Self {
            id,
            kind,
            read_set: Vec::new(),
            write_set: Vec::new(),
            before: Vec::new(),
            params: TaskParams::empty(),
        }
    }

    /// Builder-style setter for the read set.
    pub fn with_reads(mut self, reads: Vec<PhysicalObjectId>) -> Self {
        self.read_set = reads;
        self
    }

    /// Builder-style setter for the write set.
    pub fn with_writes(mut self, writes: Vec<PhysicalObjectId>) -> Self {
        self.write_set = writes;
        self
    }

    /// Builder-style setter for the before set.
    pub fn with_before(mut self, before: Vec<CommandId>) -> Self {
        self.before = before;
        self
    }

    /// Builder-style setter for the parameter block.
    pub fn with_params(mut self, params: TaskParams) -> Self {
        self.params = params;
        self
    }

    /// Returns the task id if this command runs an application task.
    pub fn task_id(&self) -> Option<TaskId> {
        match self.kind {
            CommandKind::RunTask { task, .. } => Some(task),
            _ => None,
        }
    }

    /// Returns the function id if this command runs an application task.
    pub fn function_id(&self) -> Option<FunctionId> {
        match self.kind {
            CommandKind::RunTask { function, .. } => Some(function),
            _ => None,
        }
    }

    /// Returns every physical object touched by this command.
    pub fn touched_objects(&self) -> impl Iterator<Item = PhysicalObjectId> + '_ {
        self.read_set.iter().chain(self.write_set.iter()).copied()
    }

    /// Rough estimate of the wire size of this command in bytes, used for
    /// control-plane traffic accounting.
    pub fn wire_size(&self) -> usize {
        let fixed = 8 + 16; // id + kind discriminant and payload
        fixed
            + self.read_set.len() * 8
            + self.write_set.len() * 8
            + self.before.len() * 8
            + self.params.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LogicalObjectId, PartitionIndex};

    fn sample_task() -> Command {
        Command::new(
            CommandId(1),
            CommandKind::RunTask {
                function: FunctionId(3),
                task: TaskId(10),
            },
        )
        .with_reads(vec![PhysicalObjectId(1), PhysicalObjectId(2)])
        .with_writes(vec![PhysicalObjectId(3)])
        .with_before(vec![CommandId(0)])
        .with_params(TaskParams::from_scalar(1.5))
    }

    #[test]
    fn task_accessors() {
        let c = sample_task();
        assert_eq!(c.task_id(), Some(TaskId(10)));
        assert_eq!(c.function_id(), Some(FunctionId(3)));
        assert!(c.kind.is_task());
        assert_eq!(c.kind.tag(), "task");
        assert_eq!(c.touched_objects().count(), 3);
    }

    #[test]
    fn non_task_accessors() {
        let c = Command::new(
            CommandId(2),
            CommandKind::CreateData {
                object: PhysicalObjectId(5),
                logical: LogicalPartition::new(LogicalObjectId(1), PartitionIndex(0)),
            },
        );
        assert_eq!(c.task_id(), None);
        assert_eq!(c.function_id(), None);
        assert!(!c.kind.is_task());
        assert!(!c.kind.is_network_copy());
    }

    #[test]
    fn network_copy_detection() {
        let send = CommandKind::SendCopy {
            from: PhysicalObjectId(1),
            to_worker: WorkerId(2),
            transfer: TransferId(9),
        };
        let recv = CommandKind::ReceiveCopy {
            to: PhysicalObjectId(1),
            from_worker: WorkerId(2),
            transfer: TransferId(9),
        };
        assert!(send.is_network_copy());
        assert!(recv.is_network_copy());
        assert_eq!(send.tag(), "send");
        assert_eq!(recv.tag(), "receive");
    }

    #[test]
    fn wire_size_scales_with_sets() {
        let small = Command::new(
            CommandId(1),
            CommandKind::DestroyData {
                object: PhysicalObjectId(1),
            },
        );
        let big = sample_task();
        assert!(big.wire_size() > small.wire_size());
    }
}
