//! Data lineage bookkeeping.
//!
//! The controller records, for every version of every logical partition, the
//! task that produced it. For iterative jobs with frequent global
//! synchronization points lineage-based recovery degenerates to checkpointing
//! (Section 4.4), but the lineage log is still used for bookkeeping, for
//! deciding which objects a checkpoint must persist, and for debugging.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::ids::{LogicalPartition, StageId, TaskId, Version};

/// One lineage record: `task` (in `stage`) produced `version` of `partition`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineageRecord {
    /// The partition written.
    pub partition: LogicalPartition,
    /// The version produced.
    pub version: Version,
    /// The task that produced it.
    pub task: TaskId,
    /// The stage the task belonged to.
    pub stage: StageId,
}

/// Append-only log of lineage records with per-partition indexing.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LineageLog {
    records: Vec<LineageRecord>,
    by_partition: HashMap<LogicalPartition, Vec<usize>>,
}

impl LineageLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn record(&mut self, record: LineageRecord) {
        self.by_partition
            .entry(record.partition)
            .or_default()
            .push(self.records.len());
        self.records.push(record);
    }

    /// Returns the producer of a specific version of a partition, if known.
    pub fn producer(
        &self,
        partition: LogicalPartition,
        version: Version,
    ) -> Option<&LineageRecord> {
        self.by_partition.get(&partition).and_then(|idxs| {
            idxs.iter()
                .rev()
                .map(|i| &self.records[*i])
                .find(|r| r.version == version)
        })
    }

    /// Returns the full history of a partition, oldest first.
    pub fn history(&self, partition: LogicalPartition) -> Vec<&LineageRecord> {
        self.by_partition
            .get(&partition)
            .map(|idxs| idxs.iter().map(|i| &self.records[*i]).collect())
            .unwrap_or_default()
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns true if no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drops every record at or below `version` for all partitions. Called
    /// after a checkpoint commits: history the checkpoint already covers is
    /// no longer needed for recovery.
    pub fn truncate_through(&mut self, cutoff: &HashMap<LogicalPartition, Version>) {
        let records = std::mem::take(&mut self.records);
        self.by_partition.clear();
        for r in records {
            let keep = match cutoff.get(&r.partition) {
                Some(v) => r.version > *v,
                None => true,
            };
            if keep {
                self.record(r);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LogicalObjectId, PartitionIndex};

    fn lp(o: u64, p: u32) -> LogicalPartition {
        LogicalPartition::new(LogicalObjectId(o), PartitionIndex(p))
    }

    fn rec(o: u64, p: u32, v: u64, t: u64) -> LineageRecord {
        LineageRecord {
            partition: lp(o, p),
            version: Version(v),
            task: TaskId(t),
            stage: StageId(1),
        }
    }

    #[test]
    fn record_and_query_producer() {
        let mut log = LineageLog::new();
        log.record(rec(1, 0, 1, 10));
        log.record(rec(1, 0, 2, 20));
        log.record(rec(1, 1, 1, 30));
        assert_eq!(log.len(), 3);
        assert_eq!(log.producer(lp(1, 0), Version(2)).unwrap().task, TaskId(20));
        assert_eq!(log.producer(lp(1, 0), Version(1)).unwrap().task, TaskId(10));
        assert!(log.producer(lp(1, 0), Version(3)).is_none());
        assert_eq!(log.history(lp(1, 0)).len(), 2);
        assert!(log.history(lp(9, 9)).is_empty());
    }

    #[test]
    fn truncate_after_checkpoint() {
        let mut log = LineageLog::new();
        log.record(rec(1, 0, 1, 10));
        log.record(rec(1, 0, 2, 20));
        log.record(rec(1, 1, 1, 30));
        let mut cutoff = HashMap::new();
        cutoff.insert(lp(1, 0), Version(1));
        log.truncate_through(&cutoff);
        assert_eq!(log.len(), 2);
        assert!(log.producer(lp(1, 0), Version(1)).is_none());
        assert!(log.producer(lp(1, 0), Version(2)).is_some());
        assert!(log.producer(lp(1, 1), Version(1)).is_some());
    }
}
