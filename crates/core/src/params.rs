//! Task parameter blobs.
//!
//! Every command carries an opaque binary parameter block (Section 3.4 of the
//! paper). Parameters are the *variable* part of an execution template: the
//! task structure is cached, while parameters (model coefficients, iteration
//! counters, thresholds) are passed at every instantiation.
//!
//! The encoding is a tiny, self-describing little-endian layout so the
//! control plane does not depend on a heavyweight serialization framework for
//! its hot path.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::error::{CoreError, CoreResult};

/// An opaque, cheaply-cloneable parameter block attached to a task or command.
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TaskParams {
    bytes: Bytes,
}

impl std::fmt::Debug for TaskParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TaskParams({} bytes)", self.bytes.len())
    }
}

impl TaskParams {
    /// An empty parameter block.
    pub fn empty() -> Self {
        Self {
            bytes: Bytes::new(),
        }
    }

    /// Wraps raw bytes as a parameter block.
    pub fn from_bytes(bytes: impl Into<Bytes>) -> Self {
        Self {
            bytes: bytes.into(),
        }
    }

    /// Encodes a slice of `f64` values.
    pub fn from_f64s(values: &[f64]) -> Self {
        let mut buf = BytesMut::with_capacity(8 + values.len() * 8);
        buf.put_u64_le(values.len() as u64);
        for v in values {
            buf.put_f64_le(*v);
        }
        Self {
            bytes: buf.freeze(),
        }
    }

    /// Encodes a slice of `u64` values.
    pub fn from_u64s(values: &[u64]) -> Self {
        let mut buf = BytesMut::with_capacity(8 + values.len() * 8);
        buf.put_u64_le(values.len() as u64);
        for v in values {
            buf.put_u64_le(*v);
        }
        Self {
            bytes: buf.freeze(),
        }
    }

    /// Encodes a single scalar.
    pub fn from_scalar(value: f64) -> Self {
        Self::from_f64s(&[value])
    }

    /// Decodes the block as a vector of `f64` values.
    pub fn as_f64s(&self) -> CoreResult<Vec<f64>> {
        let mut buf = self.bytes.clone();
        if buf.remaining() < 8 {
            return Err(CoreError::MalformedParams(
                "missing length prefix".to_string(),
            ));
        }
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len * 8 {
            return Err(CoreError::MalformedParams(format!(
                "expected {} f64 values, only {} bytes remain",
                len,
                buf.remaining()
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(buf.get_f64_le());
        }
        Ok(out)
    }

    /// Decodes the block as a vector of `u64` values.
    pub fn as_u64s(&self) -> CoreResult<Vec<u64>> {
        let mut buf = self.bytes.clone();
        if buf.remaining() < 8 {
            return Err(CoreError::MalformedParams(
                "missing length prefix".to_string(),
            ));
        }
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len * 8 {
            return Err(CoreError::MalformedParams(format!(
                "expected {} u64 values, only {} bytes remain",
                len,
                buf.remaining()
            )));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(buf.get_u64_le());
        }
        Ok(out)
    }

    /// Decodes the block as a single scalar.
    pub fn as_scalar(&self) -> CoreResult<f64> {
        let v = self.as_f64s()?;
        v.first().copied().ok_or_else(|| {
            CoreError::MalformedParams("expected at least one scalar value".to_string())
        })
    }

    /// Returns the raw bytes.
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Returns the size in bytes (used for control-plane traffic accounting).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns true if the parameter block is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl From<Vec<u8>> for TaskParams {
    fn from(bytes: Vec<u8>) -> Self {
        Self::from_bytes(bytes)
    }
}

impl From<&[f64]> for TaskParams {
    fn from(values: &[f64]) -> Self {
        Self::from_f64s(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trip() {
        let p = TaskParams::from_f64s(&[1.0, -2.5, 3.25]);
        assert_eq!(p.as_f64s().unwrap(), vec![1.0, -2.5, 3.25]);
    }

    #[test]
    fn u64_round_trip() {
        let p = TaskParams::from_u64s(&[7, 8, 9]);
        assert_eq!(p.as_u64s().unwrap(), vec![7, 8, 9]);
    }

    #[test]
    fn scalar_round_trip() {
        let p = TaskParams::from_scalar(0.125);
        assert_eq!(p.as_scalar().unwrap(), 0.125);
    }

    #[test]
    fn empty_params_reject_decoding() {
        let p = TaskParams::empty();
        assert!(p.is_empty());
        assert!(p.as_f64s().is_err());
        assert!(p.as_scalar().is_err());
    }

    #[test]
    fn truncated_params_are_rejected() {
        let good = TaskParams::from_f64s(&[1.0, 2.0]);
        let truncated = TaskParams::from_bytes(good.bytes().slice(0..12));
        assert!(truncated.as_f64s().is_err());
    }

    #[test]
    fn len_accounts_for_header() {
        let p = TaskParams::from_f64s(&[1.0, 2.0]);
        assert_eq!(p.len(), 8 + 16);
        assert!(!p.is_empty());
    }
}
