//! # nimbus-core
//!
//! Core control-plane abstractions for a Rust reproduction of **Nimbus** and
//! its *execution templates* (Mashayekhi et al., "Execution Templates:
//! Caching Control Plane Decisions for Strong Scaling of Data Analytics",
//! USENIX ATC 2017).
//!
//! Execution templates let a centralized controller schedule at per-task
//! granularity while sustaining the task throughput of distributed dataflow
//! systems. They cache the fixed structure of a basic block of the driver
//! program — tasks, dependencies, data accesses, worker assignment — so that
//! repeating the block costs a single small message per node instead of one
//! message per task. Small scheduling changes are expressed as [`template::edit`]s
//! applied in place; dynamic control flow is handled by [`template::patch`]es
//! that move data to satisfy a template's preconditions.
//!
//! This crate holds the pure data structures and algorithms:
//!
//! * [`ids`] — strongly typed identifiers and id generators;
//! * [`params`] — opaque task parameter blocks;
//! * [`command`] — the four control-plane command families;
//! * [`task`] — logical tasks as submitted by the driver;
//! * [`data`] / [`versioning`] — mutable, versioned data objects;
//! * [`graph`] — command graphs with dependency validation;
//! * [`template`] — controller templates, worker templates, edits, patches;
//! * [`lineage`] / [`checkpoint`] — fault-tolerance bookkeeping;
//! * [`stats`] — control-plane statistics used by the evaluation harness.
//!
//! The controller and worker runtimes that *use* these structures live in the
//! `nimbus-controller` and `nimbus-worker` crates; the in-process cluster in
//! `nimbus-runtime`; the evaluation harness in `nimbus-bench`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod appdata;
pub mod checkpoint;
pub mod clock;
pub mod command;
pub mod data;
pub mod error;
pub mod graph;
pub mod ids;
pub mod lineage;
pub mod params;
pub mod stats;
pub mod task;
pub mod template;
pub mod versioning;

pub use appdata::{downcast_mut, downcast_ref, AppData, Scalar, ScalarReadable, VecF64};
pub use clock::{Clock, VirtualClock};
pub use command::{Command, CommandKind};
pub use data::{DatasetDef, DatasetRegistry, PhysicalInstance};
pub use error::{CoreError, CoreResult};
pub use graph::{AssignedCommand, CommandGraph};
pub use ids::{
    CheckpointId, CommandId, FunctionId, IdGenerator, JobId, LogicalObjectId, LogicalPartition,
    PartitionIndex, PhysicalObjectId, StageId, TaskId, TemplateId, TransferId, Version, WorkerId,
};
pub use params::TaskParams;
pub use stats::ControlPlaneStats;
pub use task::{TaskSignature, TaskSpec};
pub use template::{
    compute_patch, validate_preconditions, ControllerTaskEntry, ControllerTemplate,
    InstantiationParams, Patch, PatchCache, PatchDirective, Precondition, SkeletonEntry,
    SkeletonKind, TemplateEdit, TemplateRegistry, WorkerInstantiation, WorkerTemplate,
    WorkerTemplateGroup,
};
pub use versioning::{InstanceMap, VersionMap};

/// Cached `NIMBUS_DEBUG_RECOVERY` check (one atomic load per call), shared
/// by the controller's and the workers' opt-in recovery tracing so the two
/// halves of the system can never diverge on how the flag is read — and so
/// the tracing perturbs timing as little as possible when disabled.
#[doc(hidden)]
pub fn debug_recovery() -> bool {
    use std::sync::OnceLock;
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| std::env::var("NIMBUS_DEBUG_RECOVERY").is_ok())
}
