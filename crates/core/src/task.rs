//! Logical tasks as submitted by the driver program.
//!
//! A driver program describes computation in terms of *stages* over logical
//! data objects; each stage expands into one task per partition. Tasks are
//! logical: they reference `(object, partition)` pairs, not physical memory.
//! The controller turns logical tasks into concrete [`crate::command::Command`]s
//! by assigning partitions to workers, resolving versions, and inserting copy
//! commands for remote reads.

use serde::{Deserialize, Serialize};

use crate::ids::{FunctionId, LogicalPartition, StageId, TaskId, WorkerId};
use crate::params::TaskParams;

/// A logical task produced by expanding one stage over one partition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Unique identifier assigned by the driver (or by template instantiation).
    pub id: TaskId,
    /// The stage this task belongs to.
    pub stage: StageId,
    /// The application function to execute.
    pub function: FunctionId,
    /// Logical partitions read by the task.
    pub reads: Vec<LogicalPartition>,
    /// Logical partitions written by the task.
    pub writes: Vec<LogicalPartition>,
    /// Runtime parameters for this execution.
    pub params: TaskParams,
    /// Optional placement hint; the controller may override it.
    pub preferred_worker: Option<WorkerId>,
}

impl TaskSpec {
    /// Creates a task with empty read and write sets.
    pub fn new(id: TaskId, stage: StageId, function: FunctionId) -> Self {
        Self {
            id,
            stage,
            function,
            reads: Vec::new(),
            writes: Vec::new(),
            params: TaskParams::empty(),
            preferred_worker: None,
        }
    }

    /// Builder-style setter for the read set.
    pub fn with_reads(mut self, reads: Vec<LogicalPartition>) -> Self {
        self.reads = reads;
        self
    }

    /// Builder-style setter for the write set.
    pub fn with_writes(mut self, writes: Vec<LogicalPartition>) -> Self {
        self.writes = writes;
        self
    }

    /// Builder-style setter for the parameter block.
    pub fn with_params(mut self, params: TaskParams) -> Self {
        self.params = params;
        self
    }

    /// Builder-style setter for the placement hint.
    pub fn with_preferred_worker(mut self, worker: WorkerId) -> Self {
        self.preferred_worker = Some(worker);
        self
    }

    /// Returns every logical partition this task touches (reads then writes).
    pub fn touched_partitions(&self) -> impl Iterator<Item = LogicalPartition> + '_ {
        self.reads.iter().chain(self.writes.iter()).copied()
    }

    /// Returns true if the task writes the given partition.
    pub fn writes_partition(&self, lp: LogicalPartition) -> bool {
        self.writes.contains(&lp)
    }

    /// Returns true if the task reads the given partition.
    pub fn reads_partition(&self, lp: LogicalPartition) -> bool {
        self.reads.contains(&lp)
    }
}

/// The structural signature of a task: everything except its identifier and
/// parameters. Two tasks with equal signatures occupy the same slot in a
/// template across iterations.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaskSignature {
    /// The stage the task belongs to.
    pub stage: StageId,
    /// The function the task runs.
    pub function: FunctionId,
    /// Ordered read set.
    pub reads: Vec<LogicalPartition>,
    /// Ordered write set.
    pub writes: Vec<LogicalPartition>,
}

impl From<&TaskSpec> for TaskSignature {
    fn from(spec: &TaskSpec) -> Self {
        Self {
            stage: spec.stage,
            function: spec.function,
            reads: spec.reads.clone(),
            writes: spec.writes.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LogicalObjectId, PartitionIndex};

    fn lp(o: u64, p: u32) -> LogicalPartition {
        LogicalPartition::new(LogicalObjectId(o), PartitionIndex(p))
    }

    #[test]
    fn builder_round_trip() {
        let t = TaskSpec::new(TaskId(1), StageId(2), FunctionId(3))
            .with_reads(vec![lp(1, 0), lp(2, 0)])
            .with_writes(vec![lp(3, 0)])
            .with_params(TaskParams::from_scalar(2.0))
            .with_preferred_worker(WorkerId(7));
        assert_eq!(t.reads.len(), 2);
        assert!(t.reads_partition(lp(1, 0)));
        assert!(t.writes_partition(lp(3, 0)));
        assert!(!t.writes_partition(lp(1, 0)));
        assert_eq!(t.preferred_worker, Some(WorkerId(7)));
        assert_eq!(t.touched_partitions().count(), 3);
    }

    #[test]
    fn signature_ignores_id_and_params() {
        let a = TaskSpec::new(TaskId(1), StageId(2), FunctionId(3))
            .with_reads(vec![lp(1, 0)])
            .with_params(TaskParams::from_scalar(1.0));
        let b = TaskSpec::new(TaskId(99), StageId(2), FunctionId(3))
            .with_reads(vec![lp(1, 0)])
            .with_params(TaskParams::from_scalar(42.0));
        assert_eq!(TaskSignature::from(&a), TaskSignature::from(&b));
    }

    #[test]
    fn signature_distinguishes_structure() {
        let a = TaskSpec::new(TaskId(1), StageId(2), FunctionId(3)).with_reads(vec![lp(1, 0)]);
        let b = TaskSpec::new(TaskId(1), StageId(2), FunctionId(3)).with_reads(vec![lp(1, 1)]);
        assert_ne!(TaskSignature::from(&a), TaskSignature::from(&b));
    }
}
