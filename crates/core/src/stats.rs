//! Control-plane statistics.
//!
//! Every layer of the control plane (driver, controller, workers) keeps a
//! [`ControlPlaneStats`] counter block. The evaluation harness reads these to
//! attribute time and traffic to the control plane versus computation, which
//! is exactly the breakdown the paper's figures report.

use std::collections::HashMap;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Counters describing control-plane activity.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ControlPlaneStats {
    /// Tasks scheduled individually (the non-template path).
    pub tasks_scheduled_directly: u64,
    /// Tasks scheduled through template instantiation.
    pub tasks_from_templates: u64,
    /// Controller templates installed.
    pub controller_templates_installed: u64,
    /// Worker-template groups generated on the controller.
    pub worker_template_groups_generated: u64,
    /// Worker templates installed on workers.
    pub worker_templates_installed: u64,
    /// Controller-template instantiation requests received from the driver.
    pub controller_template_instantiations: u64,
    /// Worker-template instantiation messages sent.
    pub worker_template_instantiations: u64,
    /// Instantiations that validated automatically (no precondition check).
    pub auto_validations: u64,
    /// Instantiations that required a full validation pass.
    pub full_validations: u64,
    /// Patches applied (cache hits + computed).
    pub patches_applied: u64,
    /// Patch cache hits.
    pub patch_cache_hits: u64,
    /// Patch cache misses (patch had to be computed).
    pub patch_cache_misses: u64,
    /// Template edits applied.
    pub edits_applied: u64,
    /// Control-plane messages sent, by message tag.
    pub messages_by_tag: HashMap<String, u64>,
    /// Control-plane bytes sent.
    pub control_bytes_sent: u64,
    /// Data-plane bytes moved between workers.
    pub data_bytes_sent: u64,
    /// Commands dispatched to workers (individual, non-template path).
    pub commands_dispatched: u64,
    /// Copy commands inserted by the controller.
    pub copies_inserted: u64,
    /// Checkpoints committed.
    pub checkpoints_committed: u64,
    /// Worker failures handled.
    pub failures_handled: u64,
    /// Workers admitted (back) into the allocation through the rejoin
    /// handshake — returning after a failure or joining a running job.
    pub rejoins_handled: u64,
    /// Template instantiations the controller re-ran on its own after a
    /// recovery to bring data back to the pre-failure state (no driver
    /// involvement, no re-recording).
    pub instantiations_replayed: u64,
    /// Wall-clock time attributed to control-plane work.
    #[serde(with = "duration_micros")]
    pub control_plane_time: Duration,
    /// Wall-clock time attributed to application computation.
    #[serde(with = "duration_micros")]
    pub computation_time: Duration,
}

mod duration_micros {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u64(d.as_micros() as u64)
    }

    // Referenced by `#[serde(with = "duration_micros")]` only when a real
    // deserializer drives it; the vendored shim never does, hence the allow.
    #[allow(dead_code)]
    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        let micros: u64 = serde::Deserialize::deserialize(d)?;
        Ok(Duration::from_micros(micros))
    }
}

impl ControlPlaneStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a message of the given tag and size.
    pub fn record_message(&mut self, tag: &str, bytes: usize) {
        *self.messages_by_tag.entry(tag.to_string()).or_insert(0) += 1;
        self.control_bytes_sent += bytes as u64;
    }

    /// Total number of control-plane messages.
    pub fn total_messages(&self) -> u64 {
        self.messages_by_tag.values().sum()
    }

    /// Total tasks scheduled through any path.
    pub fn total_tasks(&self) -> u64 {
        self.tasks_scheduled_directly + self.tasks_from_templates
    }

    /// Patch cache hit rate in `[0, 1]`, or `None` if no lookups happened.
    pub fn patch_cache_hit_rate(&self) -> Option<f64> {
        let total = self.patch_cache_hits + self.patch_cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.patch_cache_hits as f64 / total as f64)
        }
    }

    /// Merges another counter block into this one (summing counters).
    pub fn merge(&mut self, other: &ControlPlaneStats) {
        self.tasks_scheduled_directly += other.tasks_scheduled_directly;
        self.tasks_from_templates += other.tasks_from_templates;
        self.controller_templates_installed += other.controller_templates_installed;
        self.worker_template_groups_generated += other.worker_template_groups_generated;
        self.worker_templates_installed += other.worker_templates_installed;
        self.controller_template_instantiations += other.controller_template_instantiations;
        self.worker_template_instantiations += other.worker_template_instantiations;
        self.auto_validations += other.auto_validations;
        self.full_validations += other.full_validations;
        self.patches_applied += other.patches_applied;
        self.patch_cache_hits += other.patch_cache_hits;
        self.patch_cache_misses += other.patch_cache_misses;
        self.edits_applied += other.edits_applied;
        for (tag, count) in &other.messages_by_tag {
            *self.messages_by_tag.entry(tag.clone()).or_insert(0) += count;
        }
        self.control_bytes_sent += other.control_bytes_sent;
        self.data_bytes_sent += other.data_bytes_sent;
        self.commands_dispatched += other.commands_dispatched;
        self.copies_inserted += other.copies_inserted;
        self.checkpoints_committed += other.checkpoints_committed;
        self.failures_handled += other.failures_handled;
        self.rejoins_handled += other.rejoins_handled;
        self.instantiations_replayed += other.instantiations_replayed;
        self.control_plane_time += other.control_plane_time;
        self.computation_time += other.computation_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_accounting() {
        let mut s = ControlPlaneStats::new();
        s.record_message("task", 100);
        s.record_message("task", 50);
        s.record_message("instantiate", 64);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.messages_by_tag["task"], 2);
        assert_eq!(s.control_bytes_sent, 214);
    }

    #[test]
    fn hit_rate() {
        let mut s = ControlPlaneStats::new();
        assert!(s.patch_cache_hit_rate().is_none());
        s.patch_cache_hits = 9;
        s.patch_cache_misses = 1;
        assert!((s.patch_cache_hit_rate().unwrap() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = ControlPlaneStats::new();
        a.tasks_from_templates = 10;
        a.record_message("task", 10);
        a.control_plane_time = Duration::from_millis(5);
        let mut b = ControlPlaneStats::new();
        b.tasks_from_templates = 5;
        b.tasks_scheduled_directly = 2;
        b.record_message("task", 20);
        b.record_message("edit", 30);
        b.control_plane_time = Duration::from_millis(7);
        a.merge(&b);
        assert_eq!(a.total_tasks(), 17);
        assert_eq!(a.messages_by_tag["task"], 2);
        assert_eq!(a.messages_by_tag["edit"], 1);
        assert_eq!(a.control_bytes_sent, 60);
        assert_eq!(a.control_plane_time, Duration::from_millis(12));
    }
}
