//! Execution templates: parameterizable, cached lists of tasks.
//!
//! An execution template caches the *fixed* structure of a basic block — the
//! list of tasks, their functions, dependencies, relative ordering, and data
//! access references — while the *variable* part (task identifiers and
//! runtime parameters) is supplied at each instantiation (Section 2.1 of the
//! paper).
//!
//! There are two kinds of template, one per control-plane interface:
//!
//! * [`ControllerTemplate`] caches the driver→controller interface: the
//!   complete list of tasks in a basic block across all workers, together
//!   with the results of dependency analysis and partition assignment.
//! * [`WorkerTemplate`] caches the controller→worker interface: the portion
//!   of the block that runs on one worker, as a command skeleton the worker
//!   expands locally. The controller keeps the cluster-wide view of a block's
//!   worker templates in a [`WorkerTemplateGroup`], which also tracks the
//!   preconditions needed for validation and patching.
//!
//! Templates support two further operations: [`edit`](crate::template::edit)
//! (in-place modification for small scheduling changes) and
//! [`patch`](crate::template::patch) (data movement to satisfy preconditions
//! under dynamic control flow).

pub mod cache;
pub mod controller_template;
pub mod edit;
pub mod patch;
pub mod precondition;
pub mod worker_template;

pub use cache::{PatchCache, TemplateRegistry};
pub use controller_template::{ControllerTaskEntry, ControllerTemplate, InstantiationParams};
pub use edit::TemplateEdit;
pub use patch::{compute_patch, Patch, PatchDirective, PatchKey};
pub use precondition::{validate_preconditions, Precondition};
pub use worker_template::{
    SkeletonEntry, SkeletonKind, WorkerInstantiation, WorkerTemplate, WorkerTemplateGroup,
};
