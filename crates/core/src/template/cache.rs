//! Template registries and the patch cache.
//!
//! The controller keeps every installed controller template (indexed by name
//! and id) and every worker-template group (indexed by id and by the
//! controller template + worker-set it was generated for). Workers keep their
//! own much smaller cache of installed [`WorkerTemplate`]s. A shared
//! [`PatchCache`] wraps the patch lookup table from Section 4.2.

use std::collections::HashMap;

use crate::error::{CoreError, CoreResult};
use crate::ids::{TemplateId, WorkerId};
use crate::template::controller_template::ControllerTemplate;
use crate::template::patch::{Patch, PatchCacheInner, PatchKey};
use crate::template::worker_template::{WorkerTemplate, WorkerTemplateGroup};

/// Controller-side registry of installed templates.
#[derive(Clone, Debug, Default)]
pub struct TemplateRegistry {
    controller_templates: HashMap<TemplateId, ControllerTemplate>,
    by_name: HashMap<String, TemplateId>,
    groups: HashMap<TemplateId, WorkerTemplateGroup>,
    /// Groups generated for a given controller template, most recent last.
    groups_by_controller: HashMap<TemplateId, Vec<TemplateId>>,
}

impl TemplateRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) a controller template, indexing it by name.
    pub fn install_controller_template(&mut self, template: ControllerTemplate) {
        self.by_name.insert(template.name.clone(), template.id);
        self.controller_templates.insert(template.id, template);
    }

    /// Looks up a controller template by id.
    pub fn controller_template(&self, id: TemplateId) -> CoreResult<&ControllerTemplate> {
        self.controller_templates
            .get(&id)
            .ok_or(CoreError::UnknownTemplate(id))
    }

    /// Looks up a controller template by basic-block name.
    pub fn controller_template_by_name(&self, name: &str) -> Option<&ControllerTemplate> {
        self.by_name
            .get(name)
            .and_then(|id| self.controller_templates.get(id))
    }

    /// Returns true if a controller template with this name is installed.
    pub fn has_block(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Installs a worker-template group.
    pub fn install_group(&mut self, group: WorkerTemplateGroup) {
        self.groups_by_controller
            .entry(group.controller_template)
            .or_default()
            .push(group.id);
        self.groups.insert(group.id, group);
    }

    /// Looks up a worker-template group by id.
    pub fn group(&self, id: TemplateId) -> CoreResult<&WorkerTemplateGroup> {
        self.groups.get(&id).ok_or(CoreError::UnknownTemplate(id))
    }

    /// Mutable lookup of a worker-template group by id.
    pub fn group_mut(&mut self, id: TemplateId) -> CoreResult<&mut WorkerTemplateGroup> {
        self.groups
            .get_mut(&id)
            .ok_or(CoreError::UnknownTemplate(id))
    }

    /// Returns the most recently installed group for a controller template
    /// whose worker set is covered by the given allocation, if any. This is
    /// how the controller re-uses old worker templates when a revoked
    /// allocation is restored (Figure 9, iteration 30): a group built for a
    /// subset of the allocation is still executable; a group that references
    /// evicted workers is not.
    pub fn find_group_for_workers(
        &self,
        controller_template: TemplateId,
        workers: &[WorkerId],
    ) -> Option<&WorkerTemplateGroup> {
        let mut sorted: Vec<WorkerId> = workers.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        self.find_group_for_sorted_workers(controller_template, &sorted)
    }

    /// [`TemplateRegistry::find_group_for_workers`] for a caller that
    /// already holds the allocation sorted and deduplicated (the controller
    /// caches one). This is the steady-state instantiation path, so the
    /// lookup allocates nothing: membership is checked against the groups'
    /// key sets directly instead of materializing worker lists.
    pub fn find_group_for_sorted_workers(
        &self,
        controller_template: TemplateId,
        sorted: &[WorkerId],
    ) -> Option<&WorkerTemplateGroup> {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        let candidates = self.groups_by_controller.get(&controller_template)?;
        // Prefer an exact match (most recent first), then any group whose
        // workers are all still allocated.
        candidates
            .iter()
            .rev()
            .filter_map(|id| self.groups.get(id))
            .find(|g| {
                g.per_worker.len() == sorted.len()
                    && sorted.iter().all(|w| g.per_worker.contains_key(w))
            })
            .or_else(|| {
                candidates
                    .iter()
                    .rev()
                    .filter_map(|id| self.groups.get(id))
                    .find(|g| g.per_worker.keys().all(|w| sorted.binary_search(w).is_ok()))
            })
    }

    /// All groups generated for a controller template, oldest first.
    pub fn groups_for_controller(
        &self,
        controller_template: TemplateId,
    ) -> Vec<&WorkerTemplateGroup> {
        self.groups_by_controller
            .get(&controller_template)
            .map(|ids| ids.iter().filter_map(|id| self.groups.get(id)).collect())
            .unwrap_or_default()
    }

    /// Ids of every installed worker-template group, sorted for determinism.
    pub fn group_ids(&self) -> Vec<TemplateId> {
        let mut ids: Vec<TemplateId> = self.groups.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Removes every group that has a per-worker template for `worker`,
    /// returning how many were retired. Used when a worker rejoins after a
    /// permanent eviction: groups referencing its previous incarnation point
    /// at physical instances that died with it and can never validate again.
    pub fn remove_groups_with_worker(&mut self, worker: WorkerId) -> usize {
        let doomed: Vec<TemplateId> = self
            .groups
            .values()
            .filter(|g| g.per_worker.contains_key(&worker))
            .map(|g| g.id)
            .collect();
        for id in &doomed {
            if let Some(group) = self.groups.remove(id) {
                if let Some(ids) = self
                    .groups_by_controller
                    .get_mut(&group.controller_template)
                {
                    ids.retain(|x| x != id);
                }
            }
        }
        doomed.len()
    }

    /// Number of installed controller templates.
    pub fn controller_template_count(&self) -> usize {
        self.controller_templates.len()
    }

    /// Number of installed worker-template groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

/// Worker-side cache of installed worker templates.
#[derive(Clone, Debug, Default)]
pub struct WorkerTemplateCache {
    templates: HashMap<TemplateId, WorkerTemplate>,
}

impl WorkerTemplateCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) a worker template.
    pub fn install(&mut self, template: WorkerTemplate) {
        self.templates.insert(template.id, template);
    }

    /// Looks up an installed template.
    pub fn get(&self, id: TemplateId) -> CoreResult<&WorkerTemplate> {
        self.templates
            .get(&id)
            .ok_or(CoreError::UnknownTemplate(id))
    }

    /// Mutable lookup (needed to apply edits).
    pub fn get_mut(&mut self, id: TemplateId) -> CoreResult<&mut WorkerTemplate> {
        self.templates
            .get_mut(&id)
            .ok_or(CoreError::UnknownTemplate(id))
    }

    /// Removes a template from the cache.
    pub fn remove(&mut self, id: TemplateId) -> Option<WorkerTemplate> {
        self.templates.remove(&id)
    }

    /// Number of cached templates. Workers cache multiple templates so the
    /// controller can switch between schedules by invoking different ones.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Returns true if no templates are installed.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

/// Thin wrapper over the patch lookup table with hit/miss accounting.
#[derive(Clone, Debug, Default)]
pub struct PatchCache {
    inner: PatchCacheInner,
}

impl PatchCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a cached patch for `(previous, target)`.
    pub fn lookup(&mut self, previous: Option<TemplateId>, target: TemplateId) -> Option<Patch> {
        self.inner.lookup(PatchKey { previous, target })
    }

    /// Stores a patch for `(previous, target)`.
    pub fn store(&mut self, previous: Option<TemplateId>, target: TemplateId, patch: Patch) {
        self.inner.store(PatchKey { previous, target }, patch);
    }

    /// Invalidates every patch targeting a template.
    pub fn invalidate_target(&mut self, target: TemplateId) {
        self.inner.invalidate_target(target);
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        self.inner.stats()
    }

    /// Number of cached patches.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Returns true if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FunctionId, StageId};
    use crate::params::TaskParams;
    use crate::template::controller_template::ControllerTaskEntry;

    fn controller_template(id: u64, name: &str, worker: u32) -> ControllerTemplate {
        ControllerTemplate::new(
            TemplateId(id),
            name,
            vec![ControllerTaskEntry {
                index: 0,
                stage: StageId(1),
                function: FunctionId(1),
                reads: vec![],
                writes: vec![],
                before: vec![],
                assigned_worker: WorkerId(worker),
                default_params: TaskParams::empty(),
            }],
        )
        .unwrap()
    }

    fn group(id: u64, controller: u64, workers: &[u32]) -> WorkerTemplateGroup {
        let mut g = WorkerTemplateGroup {
            id: TemplateId(id),
            controller_template: TemplateId(controller),
            ..Default::default()
        };
        for w in workers {
            g.per_worker.insert(
                WorkerId(*w),
                WorkerTemplate::new(TemplateId(id), TemplateId(controller), WorkerId(*w), vec![])
                    .unwrap(),
            );
        }
        g
    }

    #[test]
    fn registry_name_and_id_lookup() {
        let mut reg = TemplateRegistry::new();
        reg.install_controller_template(controller_template(1, "inner", 0));
        assert!(reg.has_block("inner"));
        assert!(!reg.has_block("outer"));
        assert_eq!(
            reg.controller_template(TemplateId(1)).unwrap().name,
            "inner"
        );
        assert!(reg.controller_template(TemplateId(2)).is_err());
        assert_eq!(
            reg.controller_template_by_name("inner").unwrap().id,
            TemplateId(1)
        );
        assert_eq!(reg.controller_template_count(), 1);
    }

    #[test]
    fn group_lookup_by_worker_set() {
        let mut reg = TemplateRegistry::new();
        reg.install_controller_template(controller_template(1, "inner", 0));
        reg.install_group(group(10, 1, &[0, 1]));
        reg.install_group(group(11, 1, &[0]));
        assert_eq!(reg.group_count(), 2);
        let found = reg
            .find_group_for_workers(TemplateId(1), &[WorkerId(1), WorkerId(0)])
            .unwrap();
        assert_eq!(found.id, TemplateId(10));
        let found = reg
            .find_group_for_workers(TemplateId(1), &[WorkerId(0)])
            .unwrap();
        assert_eq!(found.id, TemplateId(11));
        assert!(reg
            .find_group_for_workers(TemplateId(1), &[WorkerId(2)])
            .is_none());
        assert_eq!(reg.groups_for_controller(TemplateId(1)).len(), 2);
    }

    #[test]
    fn most_recent_matching_group_wins() {
        let mut reg = TemplateRegistry::new();
        reg.install_group(group(10, 1, &[0, 1]));
        reg.install_group(group(12, 1, &[0, 1]));
        let found = reg
            .find_group_for_workers(TemplateId(1), &[WorkerId(0), WorkerId(1)])
            .unwrap();
        assert_eq!(found.id, TemplateId(12));
    }

    #[test]
    fn worker_cache_install_and_edit_access() {
        let mut cache = WorkerTemplateCache::new();
        assert!(cache.is_empty());
        cache.install(
            WorkerTemplate::new(TemplateId(1), TemplateId(1), WorkerId(0), vec![]).unwrap(),
        );
        assert_eq!(cache.len(), 1);
        assert!(cache.get(TemplateId(1)).is_ok());
        assert!(cache.get_mut(TemplateId(1)).is_ok());
        assert!(cache.get(TemplateId(2)).is_err());
        assert!(cache.remove(TemplateId(1)).is_some());
        assert!(cache.is_empty());
    }

    #[test]
    fn patch_cache_wrapper() {
        let mut cache = PatchCache::new();
        assert!(cache.lookup(None, TemplateId(1)).is_none());
        cache.store(
            None,
            TemplateId(1),
            Patch {
                target: TemplateId(1),
                directives: vec![],
            },
        );
        assert!(cache.lookup(None, TemplateId(1)).is_some());
        assert_eq!(cache.stats(), (1, 1));
        cache.invalidate_target(TemplateId(1));
        assert!(cache.is_empty());
    }
}
