//! Worker-template preconditions and their validation.
//!
//! Each worker template carries a list of preconditions: physical data
//! objects that must hold the latest version of their logical partition when
//! the template is instantiated (Section 2.4). Before instantiating a worker
//! template the controller validates these against its instance and version
//! maps; violations are repaired by a [`crate::template::patch::Patch`].

use serde::{Deserialize, Serialize};

use crate::ids::{LogicalPartition, PhysicalObjectId, WorkerId};
use crate::versioning::{InstanceMap, VersionMap};

/// A single precondition: `physical` on `worker` must hold the latest version
/// of `logical` when the template is instantiated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Precondition {
    /// The worker whose memory must hold the up-to-date object.
    pub worker: WorkerId,
    /// The physical object instance that must be up to date.
    pub physical: PhysicalObjectId,
    /// The logical partition whose latest version is required.
    pub logical: LogicalPartition,
}

impl Precondition {
    /// Creates a precondition.
    pub fn new(worker: WorkerId, physical: PhysicalObjectId, logical: LogicalPartition) -> Self {
        Self {
            worker,
            physical,
            logical,
        }
    }
}

/// Checks a list of preconditions against the controller's data state.
///
/// Returns the subset of preconditions that do **not** hold. An empty return
/// value means the template validates and can be instantiated directly.
pub fn validate_preconditions(
    preconditions: &[Precondition],
    instances: &InstanceMap,
    versions: &VersionMap,
) -> Vec<Precondition> {
    preconditions
        .iter()
        .filter(|p| !instances.is_up_to_date(p.physical, versions))
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::PhysicalInstance;
    use crate::ids::{LogicalObjectId, PartitionIndex, Version};

    fn lp(o: u64, p: u32) -> LogicalPartition {
        LogicalPartition::new(LogicalObjectId(o), PartitionIndex(p))
    }

    #[test]
    fn all_preconditions_hold_when_instances_are_fresh() {
        let mut instances = InstanceMap::new();
        let versions = VersionMap::new();
        instances.insert(PhysicalInstance::new(
            PhysicalObjectId(1),
            lp(1, 0),
            WorkerId(0),
        ));
        let pre = vec![Precondition::new(
            WorkerId(0),
            PhysicalObjectId(1),
            lp(1, 0),
        )];
        assert!(validate_preconditions(&pre, &instances, &versions).is_empty());
    }

    #[test]
    fn stale_instance_is_reported() {
        let mut instances = InstanceMap::new();
        let mut versions = VersionMap::new();
        instances.insert(PhysicalInstance::new(
            PhysicalObjectId(1),
            lp(1, 0),
            WorkerId(0),
        ));
        instances.insert(PhysicalInstance::new(
            PhysicalObjectId(2),
            lp(1, 0),
            WorkerId(1),
        ));
        // Worker 1 wrote the partition; worker 0's copy is now stale.
        let v1 = versions.bump(lp(1, 0));
        instances.set_version(PhysicalObjectId(2), v1).unwrap();

        let pre = vec![
            Precondition::new(WorkerId(0), PhysicalObjectId(1), lp(1, 0)),
            Precondition::new(WorkerId(1), PhysicalObjectId(2), lp(1, 0)),
        ];
        let violated = validate_preconditions(&pre, &instances, &versions);
        assert_eq!(violated.len(), 1);
        assert_eq!(violated[0].physical, PhysicalObjectId(1));
    }

    #[test]
    fn missing_instance_counts_as_violation() {
        let instances = InstanceMap::new();
        let versions = VersionMap::new();
        let pre = vec![Precondition::new(
            WorkerId(0),
            PhysicalObjectId(9),
            lp(1, 0),
        )];
        assert_eq!(validate_preconditions(&pre, &instances, &versions).len(), 1);
    }

    #[test]
    fn explicit_version_set_satisfies_precondition() {
        let mut instances = InstanceMap::new();
        let mut versions = VersionMap::new();
        instances.insert(PhysicalInstance::new(
            PhysicalObjectId(1),
            lp(1, 0),
            WorkerId(0),
        ));
        versions.set(lp(1, 0), Version(5));
        instances
            .set_version(PhysicalObjectId(1), Version(5))
            .unwrap();
        let pre = vec![Precondition::new(
            WorkerId(0),
            PhysicalObjectId(1),
            lp(1, 0),
        )];
        assert!(validate_preconditions(&pre, &instances, &versions).is_empty());
    }
}
