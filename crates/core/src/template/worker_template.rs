//! Worker templates: the controller→worker half of execution templates.
//!
//! A worker template caches the portion of a basic block that runs on one
//! worker as a *command skeleton*: the command kinds, physical read/write
//! sets, and index-based before-sets are fixed; command identifiers, task
//! identifiers, transfer identifiers, and parameters are filled in per
//! instantiation from a single message (Section 4.1).
//!
//! The controller keeps the cluster-wide view of a block in a
//! [`WorkerTemplateGroup`]: the per-worker skeletons plus the preconditions,
//! exit state, and slot bookkeeping needed for validation, patching, and
//! version-map updates.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use crate::command::{Command, CommandKind};
use crate::error::{CoreError, CoreResult};
use crate::ids::{
    CommandId, FunctionId, LogicalPartition, PhysicalObjectId, TaskId, TemplateId, TransferId,
    WorkerId,
};
use crate::params::TaskParams;
use crate::template::edit::TemplateEdit;
use crate::template::precondition::Precondition;

/// The cached kind of one skeleton entry. Mirrors [`CommandKind`] but uses
/// template-scoped *slots* for the values that change per instantiation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkeletonKind {
    /// Allocate a physical object for a logical partition.
    CreateData {
        /// The physical object to allocate.
        object: PhysicalObjectId,
        /// The logical partition it will hold.
        logical: LogicalPartition,
    },
    /// Free a physical object.
    DestroyData {
        /// The physical object to free.
        object: PhysicalObjectId,
    },
    /// Copy between two local physical objects.
    LocalCopy {
        /// Source object.
        from: PhysicalObjectId,
        /// Destination object.
        to: PhysicalObjectId,
    },
    /// Send a physical object to another worker. The concrete
    /// [`TransferId`] is `base_transfer_id + transfer_slot`.
    SendCopy {
        /// Source object.
        from: PhysicalObjectId,
        /// Destination worker.
        to_worker: WorkerId,
        /// Block-scoped transfer slot (shared with the matching receive).
        transfer_slot: usize,
    },
    /// Receive data from another worker into a local physical object.
    ReceiveCopy {
        /// Destination object.
        to: PhysicalObjectId,
        /// Source worker.
        from_worker: WorkerId,
        /// Block-scoped transfer slot (shared with the matching send).
        transfer_slot: usize,
    },
    /// Load a physical object from durable storage.
    LoadData {
        /// Destination object.
        object: PhysicalObjectId,
        /// Storage key.
        key: String,
    },
    /// Save a physical object to durable storage.
    SaveData {
        /// Source object.
        object: PhysicalObjectId,
        /// Storage key.
        key: String,
    },
    /// Run an application task. The concrete [`TaskId`] comes from the
    /// instantiation's task-id array at `task_slot`.
    RunTask {
        /// The application function to execute.
        function: FunctionId,
        /// Index into the instantiation's task-id array.
        task_slot: usize,
    },
    /// A removed entry. Kept so edits can delete a task without renumbering
    /// the surviving entries (Section 4.3); instantiates to no command.
    Nop,
}

impl SkeletonKind {
    /// Returns true if this entry runs an application task.
    pub fn is_task(&self) -> bool {
        matches!(self, SkeletonKind::RunTask { .. })
    }

    /// Returns true if this entry is a removed placeholder.
    pub fn is_nop(&self) -> bool {
        matches!(self, SkeletonKind::Nop)
    }
}

/// One cached entry of a worker template.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SkeletonEntry {
    /// The cached command kind.
    pub kind: SkeletonKind,
    /// Physical objects read.
    pub reads: Vec<PhysicalObjectId>,
    /// Physical objects written.
    pub writes: Vec<PhysicalObjectId>,
    /// Indices of entries in the same template that must complete first.
    pub before: Vec<usize>,
    /// Index into the instantiation's parameter array, if the entry takes
    /// fresh parameters every iteration; `None` reuses `default_params`.
    pub param_slot: Option<usize>,
    /// Parameters recorded at template creation.
    pub default_params: TaskParams,
}

impl SkeletonEntry {
    /// Creates an entry with empty sets and default parameters.
    pub fn new(kind: SkeletonKind) -> Self {
        Self {
            kind,
            reads: Vec::new(),
            writes: Vec::new(),
            before: Vec::new(),
            param_slot: None,
            default_params: TaskParams::empty(),
        }
    }

    /// Builder-style setter for the read set.
    pub fn with_reads(mut self, reads: Vec<PhysicalObjectId>) -> Self {
        self.reads = reads;
        self
    }

    /// Builder-style setter for the write set.
    pub fn with_writes(mut self, writes: Vec<PhysicalObjectId>) -> Self {
        self.writes = writes;
        self
    }

    /// Builder-style setter for the before set (entry indices).
    pub fn with_before(mut self, before: Vec<usize>) -> Self {
        self.before = before;
        self
    }

    /// Builder-style setter for the parameter slot.
    pub fn with_param_slot(mut self, slot: usize) -> Self {
        self.param_slot = Some(slot);
        self
    }

    /// Builder-style setter for the default parameters.
    pub fn with_default_params(mut self, params: TaskParams) -> Self {
        self.default_params = params;
        self
    }
}

/// The instantiation message for one worker template: everything the worker
/// needs to expand the cached skeleton into concrete, runnable commands.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkerInstantiation {
    /// The template to instantiate.
    pub template: TemplateId,
    /// Commands are numbered `base_command_id + entry_index`.
    pub base_command_id: u64,
    /// Transfers are numbered `base_transfer_id + transfer_slot`; the
    /// controller uses the same base for every worker in the block so send
    /// and receive halves match.
    pub base_transfer_id: u64,
    /// Fresh task identifiers, indexed by each entry's `task_slot`.
    pub task_ids: Vec<TaskId>,
    /// Fresh parameters, indexed by each entry's `param_slot`.
    pub params: Vec<TaskParams>,
    /// Edits to apply to the installed template before expanding it.
    pub edits: Vec<TemplateEdit>,
}

impl WorkerInstantiation {
    /// Estimated wire size of the instantiation message in bytes; this is
    /// what makes templates cheap — one small message instead of one message
    /// per task.
    pub fn wire_size(&self) -> usize {
        24 + self.task_ids.len() * 8
            + self.params.iter().map(|p| p.len() + 4).sum::<usize>()
            + self.edits.len() * 64
    }
}

/// The per-worker half of a worker template: the command skeleton installed
/// in a worker's template cache.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkerTemplate {
    /// Identifier of this worker template (unique per worker and block).
    pub id: TemplateId,
    /// The controller template (basic block) this worker template belongs to.
    pub controller_template: TemplateId,
    /// The worker the template is installed on.
    pub worker: WorkerId,
    /// Cached entries; entry index is the command slot.
    pub entries: Vec<SkeletonEntry>,
    /// Number of task slots referenced by the entries.
    pub task_slots: usize,
    /// Number of parameter slots referenced by the entries.
    pub param_slots: usize,
}

impl WorkerTemplate {
    /// Creates a worker template from entries, computing slot counts and
    /// validating index-based dependencies.
    pub fn new(
        id: TemplateId,
        controller_template: TemplateId,
        worker: WorkerId,
        entries: Vec<SkeletonEntry>,
    ) -> CoreResult<Self> {
        let mut task_slots = 0usize;
        let mut param_slots = 0usize;
        for (i, e) in entries.iter().enumerate() {
            for dep in &e.before {
                if *dep >= entries.len() {
                    return Err(CoreError::Invariant(format!(
                        "entry {i} depends on out-of-range entry {dep}"
                    )));
                }
                if *dep == i {
                    return Err(CoreError::Invariant(format!("entry {i} depends on itself")));
                }
            }
            if let SkeletonKind::RunTask { task_slot, .. } = &e.kind {
                task_slots = task_slots.max(task_slot + 1);
            }
            if let Some(slot) = e.param_slot {
                param_slots = param_slots.max(slot + 1);
            }
        }
        Ok(Self {
            id,
            controller_template,
            worker,
            entries,
            task_slots,
            param_slots,
        })
    }

    /// Number of entries (including nops).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if the template has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of application task entries.
    pub fn task_count(&self) -> usize {
        self.entries.iter().filter(|e| e.kind.is_task()).count()
    }

    /// Recomputes `task_slots` and `param_slots` after edits.
    pub fn recompute_slots(&mut self) {
        let mut task_slots = 0usize;
        let mut param_slots = 0usize;
        for e in &self.entries {
            if let SkeletonKind::RunTask { task_slot, .. } = &e.kind {
                task_slots = task_slots.max(task_slot + 1);
            }
            if let Some(slot) = e.param_slot {
                param_slots = param_slots.max(slot + 1);
            }
        }
        self.task_slots = task_slots;
        self.param_slots = param_slots;
    }

    /// Applies a list of edits in place (Section 4.3). Edits keep entry
    /// indices stable: removal replaces an entry with a nop, replacement
    /// swaps the entry at the same index, and additions append.
    pub fn apply_edits(&mut self, edits: &[TemplateEdit]) -> CoreResult<()> {
        for edit in edits {
            match edit {
                TemplateEdit::RemoveEntry { index } => {
                    let len = self.entries.len();
                    let e = self
                        .entries
                        .get_mut(*index)
                        .ok_or(CoreError::EditIndexOutOfBounds { index: *index, len })?;
                    e.kind = SkeletonKind::Nop;
                    e.reads.clear();
                    e.writes.clear();
                    e.param_slot = None;
                    e.default_params = TaskParams::empty();
                }
                TemplateEdit::ReplaceEntry { index, entry } => {
                    let len = self.entries.len();
                    for dep in &entry.before {
                        if *dep >= len {
                            return Err(CoreError::InvalidEdit(format!(
                                "replacement at {index} depends on out-of-range entry {dep}"
                            )));
                        }
                    }
                    let slot = self
                        .entries
                        .get_mut(*index)
                        .ok_or(CoreError::EditIndexOutOfBounds { index: *index, len })?;
                    *slot = entry.clone();
                }
                TemplateEdit::AddEntry { entry } => {
                    for dep in &entry.before {
                        if *dep > self.entries.len() {
                            return Err(CoreError::InvalidEdit(format!(
                                "added entry depends on out-of-range entry {dep}"
                            )));
                        }
                    }
                    self.entries.push(entry.clone());
                }
            }
        }
        self.recompute_slots();
        Ok(())
    }

    /// Expands the skeleton into concrete commands using the instantiation's
    /// identifier bases, task ids, and parameters. Nop entries produce no
    /// command but still consume their command-id slot so indices stay
    /// aligned across edits.
    pub fn instantiate(&self, inst: &WorkerInstantiation) -> CoreResult<Vec<Command>> {
        if inst.task_ids.len() < self.task_slots {
            return Err(CoreError::TaskIdArityMismatch {
                expected: self.task_slots,
                actual: inst.task_ids.len(),
            });
        }
        if inst.params.len() < self.param_slots {
            return Err(CoreError::ParamArityMismatch {
                expected: self.param_slots,
                actual: inst.params.len(),
            });
        }
        let command_id = |index: usize| CommandId(inst.base_command_id + index as u64);
        let mut out = Vec::with_capacity(self.entries.len());
        for (i, e) in self.entries.iter().enumerate() {
            let kind = match &e.kind {
                SkeletonKind::Nop => continue,
                SkeletonKind::CreateData { object, logical } => CommandKind::CreateData {
                    object: *object,
                    logical: *logical,
                },
                SkeletonKind::DestroyData { object } => {
                    CommandKind::DestroyData { object: *object }
                }
                SkeletonKind::LocalCopy { from, to } => CommandKind::LocalCopy {
                    from: *from,
                    to: *to,
                },
                SkeletonKind::SendCopy {
                    from,
                    to_worker,
                    transfer_slot,
                } => CommandKind::SendCopy {
                    from: *from,
                    to_worker: *to_worker,
                    transfer: TransferId(inst.base_transfer_id + *transfer_slot as u64),
                },
                SkeletonKind::ReceiveCopy {
                    to,
                    from_worker,
                    transfer_slot,
                } => CommandKind::ReceiveCopy {
                    to: *to,
                    from_worker: *from_worker,
                    transfer: TransferId(inst.base_transfer_id + *transfer_slot as u64),
                },
                SkeletonKind::LoadData { object, key } => CommandKind::LoadData {
                    object: *object,
                    key: key.clone(),
                },
                SkeletonKind::SaveData { object, key } => CommandKind::SaveData {
                    object: *object,
                    key: key.clone(),
                },
                SkeletonKind::RunTask {
                    function,
                    task_slot,
                } => CommandKind::RunTask {
                    function: *function,
                    task: inst.task_ids[*task_slot],
                },
            };
            let params = match e.param_slot {
                Some(slot) => inst.params[slot].clone(),
                None => e.default_params.clone(),
            };
            // Drop dependencies on nop entries: the command they named no
            // longer exists in this instantiation.
            let before = e
                .before
                .iter()
                .filter(|dep| !self.entries[**dep].kind.is_nop())
                .map(|dep| command_id(*dep))
                .collect();
            out.push(Command {
                id: command_id(i),
                kind,
                read_set: e.reads.clone(),
                write_set: e.writes.clone(),
                before,
                params,
            });
        }
        Ok(out)
    }
}

/// The controller-side view of a basic block's worker templates: one skeleton
/// per worker plus the metadata needed for validation, patching, and data
/// state updates.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WorkerTemplateGroup {
    /// Identifier of the group (shared by its per-worker templates).
    pub id: TemplateId,
    /// The controller template (basic block) this group realizes.
    pub controller_template: TemplateId,
    /// Per-worker command skeletons. Ordered so that every iteration —
    /// notably the install fan-out when a recording finishes — emits
    /// messages in the same worker order on every run.
    pub per_worker: BTreeMap<WorkerId, WorkerTemplate>,
    /// Objects that must be up to date when the group is instantiated.
    pub preconditions: Vec<Precondition>,
    /// Objects guaranteed to be up to date when the group finishes. Template
    /// generation appends end-of-block copies so that `postconditions ⊇
    /// preconditions`, which makes back-to-back instantiations of the same
    /// group validate automatically (Section 4.2).
    pub postconditions: Vec<Precondition>,
    /// Number of block-scoped transfer slots used by send/receive pairs.
    pub transfer_slots: usize,
    /// How many times each logical partition is written by one execution.
    pub write_totals: HashMap<LogicalPartition, u64>,
    /// Version offset (relative to block entry) each physical instance holds
    /// at block exit; used to update the instance map after instantiation.
    pub exit_offsets: HashMap<PhysicalObjectId, u64>,
    /// For each worker, the controller-template entry index that fills each
    /// of that worker's task slots. Slot `s` of worker `w` takes the task id
    /// generated for entry `task_slot_map[w][s]` of the controller template.
    pub task_slot_map: HashMap<WorkerId, Vec<usize>>,
}

impl WorkerTemplateGroup {
    /// Total number of task slots across all workers.
    pub fn total_task_slots(&self) -> usize {
        self.per_worker.values().map(|t| t.task_slots).sum()
    }

    /// Total number of entries across all workers.
    pub fn total_entries(&self) -> usize {
        self.per_worker.values().map(|t| t.len()).sum()
    }

    /// The workers this group spans.
    pub fn workers(&self) -> Vec<WorkerId> {
        let mut ws: Vec<WorkerId> = self.per_worker.keys().copied().collect();
        ws.sort_unstable();
        ws
    }

    /// Returns true if instantiating this group right after itself requires
    /// no validation: every precondition object is refreshed by the block
    /// itself (its postconditions cover its preconditions).
    pub fn is_self_validating(&self) -> bool {
        self.preconditions.iter().all(|p| {
            self.postconditions
                .iter()
                .any(|q| q.physical == p.physical && q.logical == p.logical)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LogicalObjectId, PartitionIndex};

    fn lp(o: u64, p: u32) -> LogicalPartition {
        LogicalPartition::new(LogicalObjectId(o), PartitionIndex(p))
    }

    fn po(i: u64) -> PhysicalObjectId {
        PhysicalObjectId(i)
    }

    fn simple_template() -> WorkerTemplate {
        // Entry 0: receive param into object 1.
        // Entry 1: task reading objects 1,2 writing 3 (depends on 0).
        // Entry 2: send object 3 to worker 1 (depends on 1).
        let entries = vec![
            SkeletonEntry::new(SkeletonKind::ReceiveCopy {
                to: po(1),
                from_worker: WorkerId(1),
                transfer_slot: 0,
            })
            .with_writes(vec![po(1)]),
            SkeletonEntry::new(SkeletonKind::RunTask {
                function: FunctionId(7),
                task_slot: 0,
            })
            .with_reads(vec![po(1), po(2)])
            .with_writes(vec![po(3)])
            .with_before(vec![0])
            .with_param_slot(0),
            SkeletonEntry::new(SkeletonKind::SendCopy {
                from: po(3),
                to_worker: WorkerId(1),
                transfer_slot: 1,
            })
            .with_reads(vec![po(3)])
            .with_before(vec![1]),
        ];
        WorkerTemplate::new(TemplateId(5), TemplateId(1), WorkerId(0), entries).unwrap()
    }

    fn instantiation() -> WorkerInstantiation {
        WorkerInstantiation {
            template: TemplateId(5),
            base_command_id: 1000,
            base_transfer_id: 500,
            task_ids: vec![TaskId(42)],
            params: vec![TaskParams::from_scalar(3.0)],
            edits: vec![],
        }
    }

    #[test]
    fn slot_counting() {
        let t = simple_template();
        assert_eq!(t.task_slots, 1);
        assert_eq!(t.param_slots, 1);
        assert_eq!(t.task_count(), 1);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn instantiation_produces_concrete_commands() {
        let t = simple_template();
        let cmds = t.instantiate(&instantiation()).unwrap();
        assert_eq!(cmds.len(), 3);
        assert_eq!(cmds[0].id, CommandId(1000));
        assert_eq!(cmds[1].id, CommandId(1001));
        assert_eq!(cmds[1].before, vec![CommandId(1000)]);
        assert_eq!(cmds[1].task_id(), Some(TaskId(42)));
        assert_eq!(cmds[1].params.as_scalar().unwrap(), 3.0);
        match &cmds[2].kind {
            CommandKind::SendCopy { transfer, .. } => assert_eq!(*transfer, TransferId(501)),
            other => panic!("unexpected kind {other:?}"),
        }
        match &cmds[0].kind {
            CommandKind::ReceiveCopy { transfer, .. } => assert_eq!(*transfer, TransferId(500)),
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn instantiation_arity_checks() {
        let t = simple_template();
        let mut inst = instantiation();
        inst.task_ids.clear();
        assert!(matches!(
            t.instantiate(&inst),
            Err(CoreError::TaskIdArityMismatch { .. })
        ));
        let mut inst = instantiation();
        inst.params.clear();
        assert!(matches!(
            t.instantiate(&inst),
            Err(CoreError::ParamArityMismatch { .. })
        ));
    }

    #[test]
    fn remove_edit_leaves_indices_stable() {
        let mut t = simple_template();
        t.apply_edits(&[TemplateEdit::RemoveEntry { index: 1 }])
            .unwrap();
        assert_eq!(t.len(), 3);
        assert!(t.entries[1].kind.is_nop());
        let cmds = t.instantiate(&instantiation()).unwrap();
        // The nop produces no command; the send no longer depends on it.
        assert_eq!(cmds.len(), 2);
        assert_eq!(cmds[1].id, CommandId(1002));
        assert!(cmds[1].before.is_empty());
    }

    #[test]
    fn replace_edit_swaps_in_place() {
        let mut t = simple_template();
        let replacement = SkeletonEntry::new(SkeletonKind::ReceiveCopy {
            to: po(3),
            from_worker: WorkerId(2),
            transfer_slot: 2,
        })
        .with_writes(vec![po(3)])
        .with_before(vec![0]);
        t.apply_edits(&[TemplateEdit::ReplaceEntry {
            index: 1,
            entry: replacement,
        }])
        .unwrap();
        assert_eq!(t.task_count(), 0);
        assert_eq!(t.task_slots, 0);
        let mut inst = instantiation();
        inst.task_ids.clear();
        inst.params.clear();
        let cmds = t.instantiate(&inst).unwrap();
        assert_eq!(cmds.len(), 3);
        assert_eq!(cmds[1].id, CommandId(1001));
    }

    #[test]
    fn add_edit_appends() {
        let mut t = simple_template();
        let added = SkeletonEntry::new(SkeletonKind::RunTask {
            function: FunctionId(9),
            task_slot: 1,
        })
        .with_before(vec![1]);
        t.apply_edits(&[TemplateEdit::AddEntry { entry: added }])
            .unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.task_slots, 2);
        let mut inst = instantiation();
        inst.task_ids.push(TaskId(43));
        let cmds = t.instantiate(&inst).unwrap();
        assert_eq!(cmds.len(), 4);
        assert_eq!(cmds[3].task_id(), Some(TaskId(43)));
    }

    #[test]
    fn edit_errors_are_reported() {
        let mut t = simple_template();
        assert!(matches!(
            t.apply_edits(&[TemplateEdit::RemoveEntry { index: 10 }]),
            Err(CoreError::EditIndexOutOfBounds { .. })
        ));
        let bad = SkeletonEntry::new(SkeletonKind::Nop).with_before(vec![99]);
        assert!(t
            .apply_edits(&[TemplateEdit::ReplaceEntry {
                index: 0,
                entry: bad
            }])
            .is_err());
    }

    #[test]
    fn self_loop_rejected() {
        let entries = vec![SkeletonEntry::new(SkeletonKind::Nop).with_before(vec![0])];
        assert!(WorkerTemplate::new(TemplateId(1), TemplateId(1), WorkerId(0), entries).is_err());
    }

    #[test]
    fn group_self_validation_detection() {
        let mut group = WorkerTemplateGroup {
            id: TemplateId(1),
            controller_template: TemplateId(1),
            ..Default::default()
        };
        let pre = Precondition::new(WorkerId(0), po(1), lp(1, 0));
        group.preconditions.push(pre);
        assert!(!group.is_self_validating());
        group.postconditions.push(pre);
        assert!(group.is_self_validating());
    }

    #[test]
    fn instantiation_wire_size_is_compact() {
        // A 80-task instantiation message should be a few KB, not the tens of
        // KB a full per-task command stream costs.
        let inst = WorkerInstantiation {
            template: TemplateId(1),
            base_command_id: 0,
            base_transfer_id: 0,
            task_ids: (0..80).map(TaskId).collect(),
            params: vec![TaskParams::from_scalar(1.0); 80],
            edits: vec![],
        };
        assert!(inst.wire_size() < 4096);
    }
}
