//! Controller templates: the driver→controller half of execution templates.
//!
//! A controller template caches the complete list of tasks in a basic block
//! across all workers: function identifiers, logical read/write sets, the
//! results of dependency analysis (before-sets as indices), and the partition
//! assignment decisions (Section 2.2). Instantiating a controller template
//! turns an array of fresh task identifiers and a parameter binding into the
//! same stream of [`TaskSpec`]s the driver would otherwise have sent task by
//! task — at a small fraction of the cost.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, CoreResult};
use crate::ids::{FunctionId, LogicalPartition, StageId, TaskId, TemplateId, WorkerId};
use crate::params::TaskParams;
use crate::task::TaskSpec;

/// One cached task slot within a controller template.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ControllerTaskEntry {
    /// Position of this entry within the template (also its task-id slot).
    pub index: usize,
    /// The stage the original task belonged to.
    pub stage: StageId,
    /// The application function to run.
    pub function: FunctionId,
    /// Logical partitions read by the task.
    pub reads: Vec<LogicalPartition>,
    /// Logical partitions written by the task.
    pub writes: Vec<LogicalPartition>,
    /// Indices of entries that must run before this one (task-level
    /// dependency analysis cached at template creation).
    pub before: Vec<usize>,
    /// The worker the task was assigned to when the template was created.
    pub assigned_worker: WorkerId,
    /// Parameters recorded at template creation, used when an instantiation
    /// does not override them.
    pub default_params: TaskParams,
}

/// Parameter binding supplied when instantiating a controller template.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum InstantiationParams {
    /// Reuse the parameters recorded when the template was created.
    #[default]
    Defaults,
    /// Supply one parameter block per task slot (same order as the entries).
    PerTask(Vec<TaskParams>),
    /// Supply one parameter block per stage; tasks of unlisted stages reuse
    /// their defaults.
    PerStage(HashMap<StageId, TaskParams>),
}

impl InstantiationParams {
    /// Resolves the parameters for the entry at `index`.
    fn resolve(&self, entry: &ControllerTaskEntry, index: usize) -> CoreResult<TaskParams> {
        match self {
            InstantiationParams::Defaults => Ok(entry.default_params.clone()),
            InstantiationParams::PerTask(all) => {
                all.get(index)
                    .cloned()
                    .ok_or(CoreError::ParamArityMismatch {
                        expected: index + 1,
                        actual: all.len(),
                    })
            }
            InstantiationParams::PerStage(by_stage) => Ok(by_stage
                .get(&entry.stage)
                .cloned()
                .unwrap_or_else(|| entry.default_params.clone())),
        }
    }
}

/// A controller template: the cached task stream of one basic block.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ControllerTemplate {
    /// Unique identifier of the template.
    pub id: TemplateId,
    /// The basic-block name the driver used when recording the template.
    pub name: String,
    /// Cached task entries in program order.
    pub entries: Vec<ControllerTaskEntry>,
    /// Stages appearing in this block, in first-appearance order.
    pub stages: Vec<StageId>,
}

impl ControllerTemplate {
    /// Creates a template from recorded entries.
    ///
    /// Returns an error if the block recorded no tasks or if any dependency
    /// index is out of range or non-causal (an entry may only depend on
    /// earlier entries).
    pub fn new(
        id: TemplateId,
        name: impl Into<String>,
        entries: Vec<ControllerTaskEntry>,
    ) -> CoreResult<Self> {
        if entries.is_empty() {
            return Err(CoreError::EmptyTemplate);
        }
        for (i, e) in entries.iter().enumerate() {
            if e.index != i {
                return Err(CoreError::Invariant(format!(
                    "entry index {} does not match position {}",
                    e.index, i
                )));
            }
            for dep in &e.before {
                if *dep >= i {
                    return Err(CoreError::Invariant(format!(
                        "entry {} depends on entry {} which does not precede it",
                        i, dep
                    )));
                }
            }
        }
        let mut stages = Vec::new();
        for e in &entries {
            if !stages.contains(&e.stage) {
                stages.push(e.stage);
            }
        }
        Ok(Self {
            id,
            name: name.into(),
            entries,
            stages,
        })
    }

    /// Number of task slots (the length of the task-id array an
    /// instantiation must supply).
    pub fn task_count(&self) -> usize {
        self.entries.len()
    }

    /// Returns the entries assigned to a given worker.
    pub fn entries_for_worker(&self, worker: WorkerId) -> Vec<&ControllerTaskEntry> {
        self.entries
            .iter()
            .filter(|e| e.assigned_worker == worker)
            .collect()
    }

    /// Returns the set of workers this template's tasks are assigned to.
    pub fn workers(&self) -> Vec<WorkerId> {
        let mut ws: Vec<WorkerId> = self.entries.iter().map(|e| e.assigned_worker).collect();
        ws.sort_unstable();
        ws.dedup();
        ws
    }

    /// Returns a copy of this template with a different worker assignment,
    /// produced when the controller re-plans a block for a new worker set.
    pub fn with_assignment(&self, id: TemplateId, assignment: &HashMap<usize, WorkerId>) -> Self {
        let mut clone = self.clone();
        clone.id = id;
        for e in &mut clone.entries {
            if let Some(w) = assignment.get(&e.index) {
                e.assigned_worker = *w;
            }
        }
        clone
    }

    /// Instantiates the template: fills in fresh task identifiers and the
    /// parameter binding and returns the resulting task stream.
    ///
    /// This is the cheap, table-driven path exercised on every iteration of a
    /// cached basic block (Table 2 of the paper reports ~0.2 µs per task).
    pub fn instantiate(
        &self,
        task_ids: &[TaskId],
        params: &InstantiationParams,
    ) -> CoreResult<Vec<TaskSpec>> {
        if task_ids.len() != self.entries.len() {
            return Err(CoreError::TaskIdArityMismatch {
                expected: self.entries.len(),
                actual: task_ids.len(),
            });
        }
        if let InstantiationParams::PerTask(p) = params {
            if p.len() != self.entries.len() {
                return Err(CoreError::ParamArityMismatch {
                    expected: self.entries.len(),
                    actual: p.len(),
                });
            }
        }
        let mut out = Vec::with_capacity(self.entries.len());
        for (i, entry) in self.entries.iter().enumerate() {
            let spec = TaskSpec {
                id: task_ids[i],
                stage: entry.stage,
                function: entry.function,
                reads: entry.reads.clone(),
                writes: entry.writes.clone(),
                params: params.resolve(entry, i)?,
                preferred_worker: Some(entry.assigned_worker),
            };
            out.push(spec);
        }
        Ok(out)
    }

    /// Resolves the per-entry parameter blocks for an instantiation without
    /// building the full task stream (the worker-template fast path only
    /// needs the parameters and fresh task identifiers).
    pub fn resolve_params(&self, params: &InstantiationParams) -> CoreResult<Vec<TaskParams>> {
        if let InstantiationParams::PerTask(p) = params {
            if p.len() != self.entries.len() {
                return Err(CoreError::ParamArityMismatch {
                    expected: self.entries.len(),
                    actual: p.len(),
                });
            }
        }
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| params.resolve(e, i))
            .collect()
    }

    /// Total logical partitions written by one execution of this block,
    /// counted with multiplicity (used to advance the version map).
    pub fn write_counts(&self) -> HashMap<LogicalPartition, u64> {
        let mut counts: HashMap<LogicalPartition, u64> = HashMap::new();
        for e in &self.entries {
            for w in &e.writes {
                *counts.entry(*w).or_insert(0) += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LogicalObjectId, PartitionIndex};

    fn lp(o: u64, p: u32) -> LogicalPartition {
        LogicalPartition::new(LogicalObjectId(o), PartitionIndex(p))
    }

    fn entry(index: usize, worker: u32, stage: u64, before: Vec<usize>) -> ControllerTaskEntry {
        ControllerTaskEntry {
            index,
            stage: StageId(stage),
            function: FunctionId(1),
            reads: vec![lp(1, index as u32)],
            writes: vec![lp(2, index as u32)],
            before,
            assigned_worker: WorkerId(worker),
            default_params: TaskParams::from_scalar(index as f64),
        }
    }

    fn sample() -> ControllerTemplate {
        ControllerTemplate::new(
            TemplateId(1),
            "inner",
            vec![
                entry(0, 0, 1, vec![]),
                entry(1, 1, 1, vec![]),
                entry(2, 0, 2, vec![0, 1]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn rejects_empty_block() {
        assert!(matches!(
            ControllerTemplate::new(TemplateId(1), "x", vec![]),
            Err(CoreError::EmptyTemplate)
        ));
    }

    #[test]
    fn rejects_non_causal_dependency() {
        let bad = vec![entry(0, 0, 1, vec![1]), entry(1, 0, 1, vec![])];
        assert!(ControllerTemplate::new(TemplateId(1), "x", bad).is_err());
    }

    #[test]
    fn rejects_misnumbered_entries() {
        let mut e = entry(0, 0, 1, vec![]);
        e.index = 5;
        assert!(ControllerTemplate::new(TemplateId(1), "x", vec![e]).is_err());
    }

    #[test]
    fn instantiation_fills_ids_and_defaults() {
        let t = sample();
        let ids = vec![TaskId(100), TaskId(101), TaskId(102)];
        let specs = t.instantiate(&ids, &InstantiationParams::Defaults).unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].id, TaskId(100));
        assert_eq!(specs[2].id, TaskId(102));
        assert_eq!(specs[1].params.as_scalar().unwrap(), 1.0);
        assert_eq!(specs[2].preferred_worker, Some(WorkerId(0)));
    }

    #[test]
    fn instantiation_with_per_task_params() {
        let t = sample();
        let ids = vec![TaskId(1), TaskId(2), TaskId(3)];
        let params = InstantiationParams::PerTask(vec![
            TaskParams::from_scalar(10.0),
            TaskParams::from_scalar(20.0),
            TaskParams::from_scalar(30.0),
        ]);
        let specs = t.instantiate(&ids, &params).unwrap();
        assert_eq!(specs[1].params.as_scalar().unwrap(), 20.0);
    }

    #[test]
    fn instantiation_with_per_stage_params() {
        let t = sample();
        let ids = vec![TaskId(1), TaskId(2), TaskId(3)];
        let mut by_stage = HashMap::new();
        by_stage.insert(StageId(2), TaskParams::from_scalar(9.0));
        let specs = t
            .instantiate(&ids, &InstantiationParams::PerStage(by_stage))
            .unwrap();
        // Stage 1 tasks keep their defaults, stage 2 task gets the override.
        assert_eq!(specs[0].params.as_scalar().unwrap(), 0.0);
        assert_eq!(specs[2].params.as_scalar().unwrap(), 9.0);
    }

    #[test]
    fn arity_mismatches_are_rejected() {
        let t = sample();
        assert!(matches!(
            t.instantiate(&[TaskId(1)], &InstantiationParams::Defaults),
            Err(CoreError::TaskIdArityMismatch {
                expected: 3,
                actual: 1
            })
        ));
        assert!(matches!(
            t.instantiate(
                &[TaskId(1), TaskId(2), TaskId(3)],
                &InstantiationParams::PerTask(vec![TaskParams::empty()])
            ),
            Err(CoreError::ParamArityMismatch { .. })
        ));
    }

    #[test]
    fn worker_queries_and_write_counts() {
        let t = sample();
        assert_eq!(t.task_count(), 3);
        assert_eq!(t.workers(), vec![WorkerId(0), WorkerId(1)]);
        assert_eq!(t.entries_for_worker(WorkerId(0)).len(), 2);
        assert_eq!(t.write_counts()[&lp(2, 0)], 1);
        assert_eq!(t.stages, vec![StageId(1), StageId(2)]);
    }

    #[test]
    fn reassignment_produces_new_template() {
        let t = sample();
        let mut assignment = HashMap::new();
        assignment.insert(1usize, WorkerId(0));
        let t2 = t.with_assignment(TemplateId(2), &assignment);
        assert_eq!(t2.id, TemplateId(2));
        assert_eq!(t2.workers(), vec![WorkerId(0)]);
        // Original untouched.
        assert_eq!(t.workers(), vec![WorkerId(0), WorkerId(1)]);
    }
}
