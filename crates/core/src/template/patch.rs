//! Patches: data movement that makes a template's preconditions hold.
//!
//! A basic block can be entered from many positions in the driver program
//! (first iteration of a loop, re-entry after the outer loop, an edge case
//! behind an `if`). When the system state at instantiation time does not meet
//! a worker template's preconditions, the controller *patches* it: it sends
//! copy directives that move the latest version of each required partition to
//! where the template expects it (Section 2.4, 4.2). Patches are cached and
//! re-used because dynamic control flow is typically narrow.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, CoreResult};
use crate::ids::{PhysicalObjectId, TemplateId, WorkerId};
use crate::template::precondition::Precondition;
use crate::versioning::{InstanceMap, VersionMap};

/// One data movement required to satisfy a precondition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatchDirective {
    /// Copy between two objects on the same worker.
    LocalCopy {
        /// The worker performing the copy.
        worker: WorkerId,
        /// Source object (holds the latest version).
        from: PhysicalObjectId,
        /// Destination object (the template's precondition target).
        to: PhysicalObjectId,
    },
    /// Copy an object from one worker to another.
    Transfer {
        /// Worker holding the latest version.
        from_worker: WorkerId,
        /// Source object.
        from: PhysicalObjectId,
        /// Worker that needs the data.
        to_worker: WorkerId,
        /// Destination object.
        to: PhysicalObjectId,
    },
}

impl PatchDirective {
    /// Returns true if the directive crosses workers.
    pub fn is_remote(&self) -> bool {
        matches!(self, PatchDirective::Transfer { .. })
    }
}

/// A patch: the copy directives that make a template group's preconditions
/// hold, given the data state it was computed against.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Patch {
    /// The worker-template group this patch prepares.
    pub target: TemplateId,
    /// Copy directives, in any order (they touch disjoint destinations).
    pub directives: Vec<PatchDirective>,
}

impl Patch {
    /// Returns true if nothing needs to move.
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// Number of directives.
    pub fn len(&self) -> usize {
        self.directives.len()
    }

    /// Number of cross-worker transfers in the patch.
    pub fn remote_transfers(&self) -> usize {
        self.directives.iter().filter(|d| d.is_remote()).count()
    }
}

/// Cache key for patches: what executed immediately before the target
/// template. Control flow is dynamic but narrow, so this small key has a very
/// high hit rate in practice (Section 4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PatchKey {
    /// The worker-template group that executed previously (if any).
    pub previous: Option<TemplateId>,
    /// The group about to be instantiated.
    pub target: TemplateId,
}

/// Computes the patch that satisfies `violated` preconditions given the
/// current instance and version maps.
///
/// For each violated precondition the controller finds an instance holding
/// the latest version of the partition and emits a local copy (same worker)
/// or a transfer (different worker). Returns an error if no instance holds
/// the latest version — that means the data was lost and recovery, not
/// patching, is required.
pub fn compute_patch(
    target: TemplateId,
    violated: &[Precondition],
    instances: &InstanceMap,
    versions: &VersionMap,
) -> CoreResult<Patch> {
    let mut directives = Vec::with_capacity(violated.len());
    for pre in violated {
        let holders = instances.latest_holders(pre.logical, versions);
        if holders.is_empty() {
            return Err(CoreError::UnsatisfiablePrecondition(pre.logical));
        }
        // Prefer a holder on the same worker (cheap local copy), otherwise
        // pick the first remote holder deterministically.
        let local = holders.iter().find(|h| h.worker == pre.worker);
        match local {
            Some(h) if h.id == pre.physical => {
                // Already satisfied (can happen when the caller passes the
                // full precondition list instead of only violations).
                continue;
            }
            Some(h) => directives.push(PatchDirective::LocalCopy {
                worker: pre.worker,
                from: h.id,
                to: pre.physical,
            }),
            None => {
                let h = holders[0];
                directives.push(PatchDirective::Transfer {
                    from_worker: h.worker,
                    from: h.id,
                    to_worker: pre.worker,
                    to: pre.physical,
                });
            }
        }
    }
    Ok(Patch { target, directives })
}

/// A cache of previously computed patches, keyed by what executed before the
/// target template.
#[derive(Clone, Debug, Default)]
pub struct PatchCacheInner {
    entries: HashMap<PatchKey, Patch>,
    hits: u64,
    misses: u64,
}

impl PatchCacheInner {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a cached patch.
    pub fn lookup(&mut self, key: PatchKey) -> Option<Patch> {
        match self.entries.get(&key) {
            Some(p) => {
                self.hits += 1;
                Some(p.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a patch.
    pub fn store(&mut self, key: PatchKey, patch: Patch) {
        self.entries.insert(key, patch);
    }

    /// Invalidates every cached patch targeting `template` (needed after the
    /// template is edited or re-installed).
    pub fn invalidate_target(&mut self, template: TemplateId) {
        self.entries.retain(|k, _| k.target != template);
    }

    /// Number of cached patches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::PhysicalInstance;
    use crate::ids::{LogicalObjectId, LogicalPartition, PartitionIndex};

    fn lp(o: u64, p: u32) -> LogicalPartition {
        LogicalPartition::new(LogicalObjectId(o), PartitionIndex(p))
    }

    fn setup() -> (InstanceMap, VersionMap) {
        let mut instances = InstanceMap::new();
        let mut versions = VersionMap::new();
        // param lives on worker 0 (fresh) and worker 1 (stale).
        instances.insert(PhysicalInstance::new(
            PhysicalObjectId(1),
            lp(1, 0),
            WorkerId(0),
        ));
        instances.insert(PhysicalInstance::new(
            PhysicalObjectId(2),
            lp(1, 0),
            WorkerId(1),
        ));
        let v1 = versions.bump(lp(1, 0));
        instances.set_version(PhysicalObjectId(1), v1).unwrap();
        (instances, versions)
    }

    #[test]
    fn patch_prefers_local_copy() {
        let (mut instances, versions) = setup();
        // Add a second, stale object on worker 0 that the template expects.
        instances.insert(PhysicalInstance::new(
            PhysicalObjectId(3),
            lp(1, 0),
            WorkerId(0),
        ));
        let violated = vec![Precondition::new(
            WorkerId(0),
            PhysicalObjectId(3),
            lp(1, 0),
        )];
        let patch = compute_patch(TemplateId(9), &violated, &instances, &versions).unwrap();
        assert_eq!(patch.len(), 1);
        assert_eq!(
            patch.directives[0],
            PatchDirective::LocalCopy {
                worker: WorkerId(0),
                from: PhysicalObjectId(1),
                to: PhysicalObjectId(3)
            }
        );
        assert_eq!(patch.remote_transfers(), 0);
    }

    #[test]
    fn patch_emits_transfer_for_remote_holder() {
        let (instances, versions) = setup();
        let violated = vec![Precondition::new(
            WorkerId(1),
            PhysicalObjectId(2),
            lp(1, 0),
        )];
        let patch = compute_patch(TemplateId(9), &violated, &instances, &versions).unwrap();
        assert_eq!(patch.len(), 1);
        assert_eq!(
            patch.directives[0],
            PatchDirective::Transfer {
                from_worker: WorkerId(0),
                from: PhysicalObjectId(1),
                to_worker: WorkerId(1),
                to: PhysicalObjectId(2)
            }
        );
        assert_eq!(patch.remote_transfers(), 1);
    }

    #[test]
    fn satisfied_precondition_produces_no_directive() {
        let (instances, versions) = setup();
        let pre = vec![Precondition::new(
            WorkerId(0),
            PhysicalObjectId(1),
            lp(1, 0),
        )];
        let patch = compute_patch(TemplateId(9), &pre, &instances, &versions).unwrap();
        assert!(patch.is_empty());
    }

    #[test]
    fn lost_data_is_an_error() {
        let (mut instances, versions) = setup();
        instances.remove(PhysicalObjectId(1));
        let violated = vec![Precondition::new(
            WorkerId(1),
            PhysicalObjectId(2),
            lp(1, 0),
        )];
        assert!(matches!(
            compute_patch(TemplateId(9), &violated, &instances, &versions),
            Err(CoreError::UnsatisfiablePrecondition(_))
        ));
    }

    #[test]
    fn patch_cache_hit_miss_and_invalidation() {
        let mut cache = PatchCacheInner::new();
        let key = PatchKey {
            previous: Some(TemplateId(1)),
            target: TemplateId(2),
        };
        assert!(cache.lookup(key).is_none());
        cache.store(
            key,
            Patch {
                target: TemplateId(2),
                directives: vec![],
            },
        );
        assert!(cache.lookup(key).is_some());
        assert_eq!(cache.stats(), (1, 1));
        cache.invalidate_target(TemplateId(2));
        assert!(cache.is_empty());
    }
}
