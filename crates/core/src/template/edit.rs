//! Template edits: in-place modification of installed worker templates.
//!
//! Edits let a controller make small scheduling changes — migrate one of many
//! partitions, add or drop a task — without re-installing a template
//! (Section 2.3, 4.3). They are attached to an instantiation message and
//! applied by the worker (and mirrored by the controller) before the skeleton
//! is expanded. Edits keep indices stable: removal tombstones an entry,
//! replacement swaps it at the same index, additions append.

use serde::{Deserialize, Serialize};

use crate::ids::{FunctionId, PhysicalObjectId, WorkerId};
use crate::template::worker_template::{SkeletonEntry, SkeletonKind};

/// A single edit to an installed worker template.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TemplateEdit {
    /// Tombstone the entry at `index`; it will no longer emit a command.
    RemoveEntry {
        /// Index of the entry to remove.
        index: usize,
    },
    /// Replace the entry at `index` with a new one (used to swap a migrated
    /// task for the data-copy command that takes its slot).
    ReplaceEntry {
        /// Index of the entry to replace.
        index: usize,
        /// The replacement entry.
        entry: SkeletonEntry,
    },
    /// Append a new entry at the end of the template.
    AddEntry {
        /// The entry to append.
        entry: SkeletonEntry,
    },
}

impl TemplateEdit {
    /// Returns a short tag for statistics.
    pub fn tag(&self) -> &'static str {
        match self {
            TemplateEdit::RemoveEntry { .. } => "remove",
            TemplateEdit::ReplaceEntry { .. } => "replace",
            TemplateEdit::AddEntry { .. } => "add",
        }
    }
}

/// The edits produced by migrating one task between two workers, as in
/// Figure 6 of the paper: on the source worker the task's slot is replaced by
/// a receive of the task's output, plus a send of its inputs; on the
/// destination worker the task is added along with the matching receive of
/// inputs and send of outputs.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MigrationEdits {
    /// Edits to apply to the source worker's template.
    pub source: Vec<TemplateEdit>,
    /// Edits to apply to the destination worker's template.
    pub destination: Vec<TemplateEdit>,
    /// Number of new transfer slots the migration consumed.
    pub new_transfer_slots: usize,
}

/// Plans the edits that migrate a single task between workers.
///
/// `task_entry_index` is the task's entry index in the source template,
/// `inputs`/`output` are the physical objects the task reads and writes on
/// the source worker, and `dest_inputs`/`dest_output` are their counterparts
/// on the destination worker (allocated by the controller). `first_transfer_slot`
/// is the first unused block-scoped transfer slot.
#[allow(clippy::too_many_arguments)]
pub fn plan_task_migration(
    task_entry_index: usize,
    function: FunctionId,
    task_slot: usize,
    param_slot: Option<usize>,
    source_worker: WorkerId,
    dest_worker: WorkerId,
    inputs: &[(PhysicalObjectId, PhysicalObjectId)],
    output: (PhysicalObjectId, PhysicalObjectId),
    first_transfer_slot: usize,
) -> MigrationEdits {
    let mut source = Vec::new();
    let mut destination = Vec::new();
    let mut slot = first_transfer_slot;

    // Source sends each input the destination needs (S1 in Figure 6).
    let mut dest_input_receive_indices = Vec::new();
    for (src_obj, dst_obj) in inputs {
        source.push(TemplateEdit::AddEntry {
            entry: SkeletonEntry::new(SkeletonKind::SendCopy {
                from: *src_obj,
                to_worker: dest_worker,
                transfer_slot: slot,
            })
            .with_reads(vec![*src_obj]),
        });
        destination.push(TemplateEdit::AddEntry {
            entry: SkeletonEntry::new(SkeletonKind::ReceiveCopy {
                to: *dst_obj,
                from_worker: source_worker,
                transfer_slot: slot,
            })
            .with_writes(vec![*dst_obj]),
        });
        dest_input_receive_indices.push(destination.len() - 1);
        slot += 1;
    }

    // Destination runs the task (depends on the receives just added; the
    // concrete before indices are resolved by the controller when it knows
    // the destination template's current length).
    let task_entry = SkeletonEntry::new(SkeletonKind::RunTask {
        function,
        task_slot,
    })
    .with_reads(inputs.iter().map(|(_, d)| *d).collect())
    .with_writes(vec![output.1]);
    let task_entry = match param_slot {
        Some(p) => task_entry.with_param_slot(p),
        None => task_entry,
    };
    destination.push(TemplateEdit::AddEntry { entry: task_entry });

    // Destination sends the output back; the source's old task slot becomes
    // the matching receive so downstream commands keep their dependency index
    // (R1/S2 in Figure 6).
    destination.push(TemplateEdit::AddEntry {
        entry: SkeletonEntry::new(SkeletonKind::SendCopy {
            from: output.1,
            to_worker: source_worker,
            transfer_slot: slot,
        })
        .with_reads(vec![output.1]),
    });
    source.push(TemplateEdit::ReplaceEntry {
        index: task_entry_index,
        entry: SkeletonEntry::new(SkeletonKind::ReceiveCopy {
            to: output.0,
            from_worker: dest_worker,
            transfer_slot: slot,
        })
        .with_writes(vec![output.0]),
    });
    slot += 1;

    MigrationEdits {
        source,
        destination,
        new_transfer_slots: slot - first_transfer_slot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags() {
        assert_eq!(TemplateEdit::RemoveEntry { index: 0 }.tag(), "remove");
        assert_eq!(
            TemplateEdit::AddEntry {
                entry: SkeletonEntry::new(SkeletonKind::Nop)
            }
            .tag(),
            "add"
        );
    }

    #[test]
    fn migration_plan_shape_matches_figure_6() {
        let plan = plan_task_migration(
            3,
            FunctionId(7),
            0,
            Some(0),
            WorkerId(1),
            WorkerId(2),
            &[(PhysicalObjectId(10), PhysicalObjectId(20))],
            (PhysicalObjectId(11), PhysicalObjectId(21)),
            5,
        );
        // Source: one send (inputs) + one replace (old task slot becomes a receive).
        assert_eq!(plan.source.len(), 2);
        assert!(matches!(plan.source[0], TemplateEdit::AddEntry { .. }));
        assert!(matches!(
            plan.source[1],
            TemplateEdit::ReplaceEntry { index: 3, .. }
        ));
        // Destination: receive input + run task + send output.
        assert_eq!(plan.destination.len(), 3);
        // Two transfers were allocated (input push and output return).
        assert_eq!(plan.new_transfer_slots, 2);
    }

    #[test]
    fn migration_with_multiple_inputs_allocates_distinct_transfers() {
        let plan = plan_task_migration(
            0,
            FunctionId(1),
            0,
            None,
            WorkerId(0),
            WorkerId(1),
            &[
                (PhysicalObjectId(1), PhysicalObjectId(5)),
                (PhysicalObjectId(2), PhysicalObjectId(6)),
            ],
            (PhysicalObjectId(3), PhysicalObjectId(7)),
            0,
        );
        assert_eq!(plan.new_transfer_slots, 3);
        assert_eq!(plan.source.len(), 3);
        assert_eq!(plan.destination.len(), 4);
    }
}
