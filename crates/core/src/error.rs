//! Error types shared across the Nimbus control plane.

use std::fmt;

use crate::ids::{CommandId, LogicalPartition, PhysicalObjectId, TaskId, TemplateId, WorkerId};

/// Errors produced by the core control-plane data structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A command graph references a command id that is not part of the graph.
    UnknownCommand(CommandId),
    /// A command graph contains a dependency cycle.
    DependencyCycle {
        /// The commands that could not be topologically ordered.
        involved: Vec<CommandId>,
    },
    /// A task referenced a logical partition that was never defined.
    UnknownLogicalPartition(LogicalPartition),
    /// A physical object was referenced that does not exist on the worker.
    UnknownPhysicalObject(PhysicalObjectId),
    /// A template was referenced that has not been installed.
    UnknownTemplate(TemplateId),
    /// A template instantiation supplied the wrong number of task identifiers.
    TaskIdArityMismatch {
        /// Number of task identifiers the template expects.
        expected: usize,
        /// Number of task identifiers supplied.
        actual: usize,
    },
    /// A template instantiation supplied the wrong number of parameter blocks.
    ParamArityMismatch {
        /// Number of parameter blocks the template expects.
        expected: usize,
        /// Number of parameter blocks supplied.
        actual: usize,
    },
    /// An edit referenced an entry index that is out of bounds.
    EditIndexOutOfBounds {
        /// The out-of-range index.
        index: usize,
        /// The number of entries in the template.
        len: usize,
    },
    /// An edit would produce an invalid template (for example a dangling
    /// dependency on a removed entry).
    InvalidEdit(String),
    /// A template's preconditions cannot be satisfied because no worker holds
    /// the latest version of a required partition.
    UnsatisfiablePrecondition(LogicalPartition),
    /// A worker referenced in an operation is not part of the cluster.
    UnknownWorker(WorkerId),
    /// A task id was reused or otherwise conflicts with an existing task.
    DuplicateTask(TaskId),
    /// A recorded basic block was empty; templates must contain at least one task.
    EmptyTemplate,
    /// Raw bytes could not be decoded into the expected parameter layout.
    MalformedParams(String),
    /// A checkpoint could not be found or decoded.
    CheckpointUnavailable(String),
    /// Generic invariant violation with a human-readable description.
    Invariant(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownCommand(id) => write!(f, "unknown command {id}"),
            CoreError::DependencyCycle { involved } => {
                write!(f, "dependency cycle involving {} commands", involved.len())
            }
            CoreError::UnknownLogicalPartition(lp) => {
                write!(f, "unknown logical partition {lp}")
            }
            CoreError::UnknownPhysicalObject(id) => write!(f, "unknown physical object {id}"),
            CoreError::UnknownTemplate(id) => write!(f, "unknown template {id}"),
            CoreError::TaskIdArityMismatch { expected, actual } => write!(
                f,
                "template instantiation expected {expected} task ids, got {actual}"
            ),
            CoreError::ParamArityMismatch { expected, actual } => write!(
                f,
                "template instantiation expected {expected} parameter blocks, got {actual}"
            ),
            CoreError::EditIndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "edit index {index} out of bounds for template of {len} entries"
                )
            }
            CoreError::InvalidEdit(msg) => write!(f, "invalid edit: {msg}"),
            CoreError::UnsatisfiablePrecondition(lp) => {
                write!(f, "no worker holds the latest version of {lp}")
            }
            CoreError::UnknownWorker(w) => write!(f, "unknown worker {w}"),
            CoreError::DuplicateTask(t) => write!(f, "duplicate task {t}"),
            CoreError::EmptyTemplate => write!(f, "basic block recorded no tasks"),
            CoreError::MalformedParams(msg) => write!(f, "malformed parameters: {msg}"),
            CoreError::CheckpointUnavailable(msg) => write!(f, "checkpoint unavailable: {msg}"),
            CoreError::Invariant(msg) => write!(f, "invariant violation: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias used across the core crate.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = CoreError::TaskIdArityMismatch {
            expected: 80,
            actual: 79,
        };
        assert!(e.to_string().contains("expected 80"));
        let e = CoreError::UnknownCommand(CommandId(9));
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&CoreError::EmptyTemplate);
    }
}
