//! A pluggable clock: real wall-clock time, or scheduler-driven virtual time.
//!
//! Timeout-driven control-plane logic (the controller's rejoin-grace
//! deadlines, most prominently) reads "now" through a [`Clock`] instead of
//! calling [`Instant::now`] directly. Under normal operation the clock is
//! [`Clock::Real`] and behaves exactly like `Instant::now()`. Under the
//! deterministic simulation harness (`nimbus-dst`) the clock is
//! [`Clock::Virtual`]: time only moves when the simulation scheduler
//! explicitly advances it, so a timeout "fires" at a scheduler decision
//! point rather than whenever the host OS happens to wake a thread.
//!
//! Virtual time is represented as a fixed base [`Instant`] plus a
//! monotonically increasing nanosecond offset, so `Clock::now()` can keep
//! returning `Instant` and every existing `deadline - now` computation
//! works unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A virtual clock: a fixed epoch plus an offset advanced by the simulation
/// scheduler.
#[derive(Debug)]
pub struct VirtualClock {
    base: Instant,
    offset_nanos: AtomicU64,
}

impl VirtualClock {
    /// Creates a virtual clock at virtual time zero.
    pub fn new() -> Self {
        Self {
            base: Instant::now(),
            offset_nanos: AtomicU64::new(0),
        }
    }

    /// The current virtual time as an `Instant`.
    pub fn now(&self) -> Instant {
        self.base + Duration::from_nanos(self.offset_nanos.load(Ordering::SeqCst))
    }

    /// Nanoseconds of virtual time elapsed since the clock's epoch.
    pub fn elapsed_nanos(&self) -> u64 {
        self.offset_nanos.load(Ordering::SeqCst)
    }

    /// Advances virtual time by `delta`. Only the simulation scheduler calls
    /// this; nodes under test never advance time themselves.
    pub fn advance(&self, delta: Duration) {
        let nanos = u64::try_from(delta.as_nanos()).unwrap_or(u64::MAX);
        self.offset_nanos.fetch_add(nanos, Ordering::SeqCst);
    }

    /// Advances virtual time so that `deadline` (an `Instant` previously
    /// derived from this clock) is no longer in the future. No-op if the
    /// deadline has already passed.
    pub fn advance_to(&self, deadline: Instant) {
        let target = deadline.saturating_duration_since(self.base);
        let nanos = u64::try_from(target.as_nanos()).unwrap_or(u64::MAX);
        // fetch_max keeps the clock monotonic even if deadlines arrive out
        // of order.
        self.offset_nanos.fetch_max(nanos, Ordering::SeqCst);
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Where a component reads "now" from.
#[derive(Clone, Debug, Default)]
pub enum Clock {
    /// Wall-clock time: `now()` is `Instant::now()`.
    #[default]
    Real,
    /// Scheduler-driven virtual time shared with a simulation harness.
    Virtual(Arc<VirtualClock>),
}

impl Clock {
    /// Creates a fresh virtual clock handle.
    pub fn virtual_clock() -> (Self, Arc<VirtualClock>) {
        let vc = Arc::new(VirtualClock::new());
        (Clock::Virtual(Arc::clone(&vc)), vc)
    }

    /// The current time according to this clock.
    pub fn now(&self) -> Instant {
        match self {
            Clock::Real => Instant::now(),
            Clock::Virtual(vc) => vc.now(),
        }
    }

    /// Whether this is a virtual (simulated) clock.
    pub fn is_virtual(&self) -> bool {
        matches!(self, Clock::Virtual(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_tracks_instant_now() {
        let c = Clock::Real;
        let a = c.now();
        let b = Instant::now();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_only_moves_when_advanced() {
        let (clock, vc) = Clock::virtual_clock();
        let t0 = clock.now();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(clock.now(), t0, "virtual time must not follow wall time");
        vc.advance(Duration::from_secs(3));
        assert_eq!(clock.now() - t0, Duration::from_secs(3));
        assert_eq!(vc.elapsed_nanos(), 3_000_000_000);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let (clock, vc) = Clock::virtual_clock();
        let t0 = clock.now();
        vc.advance_to(t0 + Duration::from_millis(10));
        vc.advance_to(t0 + Duration::from_millis(5)); // earlier: no-op
        assert_eq!(clock.now() - t0, Duration::from_millis(10));
        vc.advance_to(t0 + Duration::from_millis(20));
        assert_eq!(clock.now() - t0, Duration::from_millis(20));
    }
}
