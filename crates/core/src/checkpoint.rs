//! Checkpoint structures for fault recovery (Section 4.4).
//!
//! Nimbus automatically inserts checkpoints into the task stream. When a
//! checkpoint triggers, the controller waits for worker queues to drain,
//! snapshots the execution state (version map, instance map, iteration
//! counters), and asks every worker to persist its live objects. On worker
//! failure the controller reverts to the snapshot and reloads the data.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, CoreResult};
use crate::ids::{CheckpointId, LogicalPartition, Version, WorkerId};
use crate::versioning::{InstanceMap, VersionMap};

/// A manifest entry: one logical partition persisted by one worker.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointEntry {
    /// The partition persisted.
    pub partition: LogicalPartition,
    /// The version persisted.
    pub version: Version,
    /// The worker that wrote it.
    pub worker: WorkerId,
    /// The storage key the data was written under.
    pub key: String,
}

/// A complete checkpoint descriptor kept by the controller.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CheckpointDescriptor {
    /// Identifier of the checkpoint.
    pub id: CheckpointId,
    /// Version map at the time of the snapshot.
    pub versions: VersionMap,
    /// Instance map at the time of the snapshot.
    pub instances: InstanceMap,
    /// Data persisted to durable storage.
    pub manifest: Vec<CheckpointEntry>,
    /// Opaque application progress marker (for example the iteration index)
    /// the driver supplied when the checkpoint was taken.
    pub progress_marker: u64,
}

impl CheckpointDescriptor {
    /// Returns the storage key for a partition, if it was persisted.
    pub fn key_for(&self, partition: LogicalPartition) -> Option<&str> {
        self.manifest
            .iter()
            .find(|e| e.partition == partition)
            .map(|e| e.key.as_str())
    }

    /// Returns the cutoff versions covered by this checkpoint (used to
    /// truncate the lineage log).
    pub fn cutoff(&self) -> HashMap<LogicalPartition, Version> {
        self.manifest
            .iter()
            .map(|e| (e.partition, e.version))
            .collect()
    }
}

/// Durable storage abstraction used by checkpointing and by load/save
/// commands. The in-memory implementation is sufficient for an in-process
/// cluster; a real deployment would back this with a distributed store.
pub trait SnapshotStore: Send + Sync {
    /// Persists a blob under a key.
    fn put(&self, key: &str, data: Vec<u8>) -> CoreResult<()>;
    /// Reads a blob back.
    fn get(&self, key: &str) -> CoreResult<Vec<u8>>;
    /// Returns true if the key exists.
    fn contains(&self, key: &str) -> bool;
    /// Deletes a key (ignored if absent).
    fn delete(&self, key: &str);
    /// Number of stored keys.
    fn len(&self) -> usize;
    /// Returns true if no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Simple thread-safe in-memory snapshot store.
#[derive(Debug, Default)]
pub struct MemorySnapshotStore {
    data: parking_lot::RwLock<HashMap<String, Vec<u8>>>,
}

impl MemorySnapshotStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SnapshotStore for MemorySnapshotStore {
    fn put(&self, key: &str, data: Vec<u8>) -> CoreResult<()> {
        self.data.write().insert(key.to_string(), data);
        Ok(())
    }

    fn get(&self, key: &str) -> CoreResult<Vec<u8>> {
        self.data
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| CoreError::CheckpointUnavailable(format!("missing key {key}")))
    }

    fn contains(&self, key: &str) -> bool {
        self.data.read().contains_key(key)
    }

    fn delete(&self, key: &str) {
        self.data.write().remove(key);
    }

    fn len(&self) -> usize {
        self.data.read().len()
    }
}

/// Controller-side collection of checkpoints, most recent last.
#[derive(Clone, Debug, Default)]
pub struct CheckpointLog {
    checkpoints: Vec<CheckpointDescriptor>,
}

impl CheckpointLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a committed checkpoint.
    pub fn commit(&mut self, descriptor: CheckpointDescriptor) {
        self.checkpoints.push(descriptor);
    }

    /// Returns the most recent checkpoint.
    pub fn latest(&self) -> Option<&CheckpointDescriptor> {
        self.checkpoints.last()
    }

    /// Returns a checkpoint by id.
    pub fn get(&self, id: CheckpointId) -> Option<&CheckpointDescriptor> {
        self.checkpoints.iter().find(|c| c.id == id)
    }

    /// Number of committed checkpoints.
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// Returns true if no checkpoint has been committed.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// Drops all but the most recent `keep` checkpoints and returns the
    /// storage keys that can be deleted.
    pub fn prune(&mut self, keep: usize) -> Vec<String> {
        if self.checkpoints.len() <= keep {
            return Vec::new();
        }
        let cut = self.checkpoints.len() - keep;
        let removed: Vec<CheckpointDescriptor> = self.checkpoints.drain(0..cut).collect();
        removed
            .into_iter()
            .flat_map(|c| c.manifest.into_iter().map(|e| e.key))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LogicalObjectId, PartitionIndex};

    fn lp(o: u64, p: u32) -> LogicalPartition {
        LogicalPartition::new(LogicalObjectId(o), PartitionIndex(p))
    }

    fn descriptor(id: u64, marker: u64) -> CheckpointDescriptor {
        CheckpointDescriptor {
            id: CheckpointId(id),
            versions: VersionMap::new(),
            instances: InstanceMap::new(),
            manifest: vec![CheckpointEntry {
                partition: lp(1, 0),
                version: Version(3),
                worker: WorkerId(0),
                key: format!("ckpt/{id}/1/0"),
            }],
            progress_marker: marker,
        }
    }

    #[test]
    fn memory_store_round_trip() {
        let store = MemorySnapshotStore::new();
        store.put("a", vec![1, 2, 3]).unwrap();
        assert!(store.contains("a"));
        assert_eq!(store.get("a").unwrap(), vec![1, 2, 3]);
        assert_eq!(store.len(), 1);
        store.delete("a");
        assert!(!store.contains("a"));
        assert!(store.get("a").is_err());
    }

    #[test]
    fn descriptor_lookup_helpers() {
        let d = descriptor(1, 7);
        assert_eq!(d.key_for(lp(1, 0)), Some("ckpt/1/1/0"));
        assert_eq!(d.key_for(lp(2, 0)), None);
        assert_eq!(d.cutoff()[&lp(1, 0)], Version(3));
    }

    #[test]
    fn log_latest_and_prune() {
        let mut log = CheckpointLog::new();
        assert!(log.is_empty());
        log.commit(descriptor(1, 10));
        log.commit(descriptor(2, 20));
        log.commit(descriptor(3, 30));
        assert_eq!(log.len(), 3);
        assert_eq!(log.latest().unwrap().id, CheckpointId(3));
        assert!(log.get(CheckpointId(2)).is_some());
        let removed_keys = log.prune(1);
        assert_eq!(removed_keys.len(), 2);
        assert_eq!(log.len(), 1);
        assert_eq!(log.latest().unwrap().progress_marker, 30);
        assert!(log.prune(5).is_empty());
    }
}
