//! Strongly-typed identifiers used throughout the Nimbus control plane.
//!
//! Every entity that crosses the driver–controller or controller–worker
//! interface is named by a small copyable identifier. Using newtypes (rather
//! than raw integers) prevents an entire class of "wrong id in the wrong
//! slot" bugs and documents intent at API boundaries.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $inner:ty) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw integer value of this identifier.
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// Creates an identifier from a raw integer value.
            pub const fn from_raw(raw: $inner) -> Self {
                Self(raw)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// Identifies a logical task created by the driver program.
    TaskId,
    u64
);
define_id!(
    /// Identifies a concrete control-plane command sent to a worker.
    CommandId,
    u64
);
define_id!(
    /// Identifies a logical data object (a named dataset) defined by the driver.
    LogicalObjectId,
    u64
);
define_id!(
    /// Identifies a physical data object instance living in a worker's memory.
    PhysicalObjectId,
    u64
);
define_id!(
    /// Identifies a worker node in the cluster.
    WorkerId,
    u32
);
define_id!(
    /// Identifies an application function registered with the workers.
    FunctionId,
    u32
);
define_id!(
    /// Identifies an installed execution template (controller or worker).
    TemplateId,
    u64
);
define_id!(
    /// Identifies a stage (a parallel operation) in the driver program.
    StageId,
    u64
);
define_id!(
    /// Identifies a job submitted by a driver program.
    JobId,
    u64
);
define_id!(
    /// Identifies a worker-to-worker data transfer within the data plane.
    TransferId,
    u64
);
define_id!(
    /// Identifies a checkpoint taken for fault recovery.
    CheckpointId,
    u64
);

/// A monotonically increasing version of a logical data partition.
///
/// Nimbus data objects are mutable (Section 3.3 of the paper); the controller
/// tracks, per logical partition, which version every physical instance
/// holds so that tasks always read the latest value according to the
/// program's control flow.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default, Debug,
)]
pub struct Version(pub u64);

impl Version {
    /// The version of a freshly created, never written object.
    pub const ZERO: Version = Version(0);

    /// Returns the next version after a write.
    pub const fn next(self) -> Version {
        Version(self.0 + 1)
    }

    /// Returns the raw counter value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Index of a partition within a logical data object.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default, Debug,
)]
pub struct PartitionIndex(pub u32);

impl PartitionIndex {
    /// Returns the raw partition index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for PartitionIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for PartitionIndex {
    fn from(raw: u32) -> Self {
        PartitionIndex(raw)
    }
}

/// A `(logical object, partition)` pair: the unit of data the controller
/// versions, assigns, and copies between workers.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Debug, Default,
)]
pub struct LogicalPartition {
    /// The logical data object this partition belongs to.
    pub object: LogicalObjectId,
    /// The partition index within the object.
    pub partition: PartitionIndex,
}

impl LogicalPartition {
    /// Creates a new logical partition reference.
    pub const fn new(object: LogicalObjectId, partition: PartitionIndex) -> Self {
        Self { object, partition }
    }
}

impl fmt::Display for LogicalPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.object, self.partition)
    }
}

/// Thread-safe generator of sequential 64-bit identifiers.
///
/// The controller owns one generator per id space (tasks, commands, physical
/// objects, transfers, ...). Identifier zero is never handed out so it can be
/// used as a sentinel in serialized structures.
#[derive(Debug)]
pub struct IdGenerator {
    next: AtomicU64,
}

impl IdGenerator {
    /// Creates a generator whose first issued value is 1.
    pub fn new() -> Self {
        Self {
            next: AtomicU64::new(1),
        }
    }

    /// Creates a generator whose first issued value is `start`.
    pub fn starting_at(start: u64) -> Self {
        Self {
            next: AtomicU64::new(start),
        }
    }

    /// Issues the next raw identifier.
    pub fn next_raw(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Issues a contiguous block of `count` raw identifiers and returns the
    /// first one. Blocks are used when instantiating templates, which need a
    /// fresh identifier per cached task in a single allocation.
    pub fn next_block(&self, count: u64) -> u64 {
        self.next.fetch_add(count, Ordering::Relaxed)
    }

    /// Returns how many identifiers have been issued so far.
    pub fn issued(&self) -> u64 {
        self.next.load(Ordering::Relaxed).saturating_sub(1)
    }
}

impl Default for IdGenerator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip() {
        let t = TaskId::from_raw(42);
        assert_eq!(t.raw(), 42);
        assert_eq!(format!("{t}"), "42");
        assert_eq!(format!("{t:?}"), "TaskId(42)");
    }

    #[test]
    fn version_ordering_and_next() {
        let v0 = Version::ZERO;
        let v1 = v0.next();
        assert!(v1 > v0);
        assert_eq!(v1.raw(), 1);
        assert_eq!(format!("{v1}"), "v1");
    }

    #[test]
    fn logical_partition_display() {
        let lp = LogicalPartition::new(LogicalObjectId(3), PartitionIndex(7));
        assert_eq!(format!("{lp}"), "3:p7");
    }

    #[test]
    fn generator_is_sequential_and_skips_zero() {
        let g = IdGenerator::new();
        assert_eq!(g.next_raw(), 1);
        assert_eq!(g.next_raw(), 2);
        assert_eq!(g.issued(), 2);
    }

    #[test]
    fn generator_block_allocation() {
        let g = IdGenerator::new();
        let first = g.next_block(10);
        assert_eq!(first, 1);
        let after = g.next_raw();
        assert_eq!(after, 11);
    }

    #[test]
    fn generator_is_thread_safe() {
        use std::collections::HashSet;
        use std::sync::Arc;

        let g = Arc::new(IdGenerator::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next_raw()).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "duplicate id issued: {id}");
            }
        }
        assert_eq!(seen.len(), 8000);
    }
}
