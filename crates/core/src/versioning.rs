//! Version tracking for mutable data objects.
//!
//! The controller keeps two views of data state:
//!
//! * a [`VersionMap`] recording, for each logical partition, the latest
//!   version *according to program order* (advanced whenever a submitted task
//!   writes the partition), and
//! * an [`InstanceMap`] recording every physical instance in the cluster and
//!   the version it currently holds.
//!
//! Together they answer the two questions the control plane keeps asking:
//! "which instance holds the latest value of X?" and "is the instance worker
//! W would read stale?". Template preconditions are validated against these
//! maps and patches are computed from them.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::data::PhysicalInstance;
use crate::error::{CoreError, CoreResult};
use crate::ids::{LogicalPartition, PhysicalObjectId, Version, WorkerId};

/// Latest version of every logical partition according to program order.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VersionMap {
    latest: HashMap<LogicalPartition, Version>,
}

impl VersionMap {
    /// Creates an empty version map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the latest version of a partition (zero if never written).
    pub fn current(&self, lp: LogicalPartition) -> Version {
        self.latest.get(&lp).copied().unwrap_or(Version::ZERO)
    }

    /// Advances the version of a partition after a write and returns the new
    /// version.
    pub fn bump(&mut self, lp: LogicalPartition) -> Version {
        let entry = self.latest.entry(lp).or_insert(Version::ZERO);
        *entry = entry.next();
        *entry
    }

    /// Advances the version of a partition by `count` writes.
    pub fn bump_by(&mut self, lp: LogicalPartition, count: u64) -> Version {
        let entry = self.latest.entry(lp).or_insert(Version::ZERO);
        *entry = Version(entry.raw() + count);
        *entry
    }

    /// Sets the version of a partition explicitly (used when restoring from a
    /// checkpoint).
    pub fn set(&mut self, lp: LogicalPartition, version: Version) {
        self.latest.insert(lp, version);
    }

    /// Number of partitions tracked.
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// Returns true if no partition has been written yet.
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }

    /// Iterates over `(partition, latest version)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LogicalPartition, Version)> + '_ {
        self.latest.iter().map(|(lp, v)| (*lp, *v))
    }
}

/// Every physical instance in the cluster, indexed by object, partition, and
/// worker.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct InstanceMap {
    instances: HashMap<PhysicalObjectId, PhysicalInstance>,
    by_partition: HashMap<LogicalPartition, Vec<PhysicalObjectId>>,
    by_worker: HashMap<WorkerId, Vec<PhysicalObjectId>>,
}

impl InstanceMap {
    /// Creates an empty instance map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a new physical instance.
    pub fn insert(&mut self, instance: PhysicalInstance) {
        self.by_partition
            .entry(instance.logical)
            .or_default()
            .push(instance.id);
        self.by_worker
            .entry(instance.worker)
            .or_default()
            .push(instance.id);
        self.instances.insert(instance.id, instance);
    }

    /// Removes an instance (for example when a worker is evicted).
    pub fn remove(&mut self, id: PhysicalObjectId) -> Option<PhysicalInstance> {
        let instance = self.instances.remove(&id)?;
        if let Some(v) = self.by_partition.get_mut(&instance.logical) {
            v.retain(|x| *x != id);
        }
        if let Some(v) = self.by_worker.get_mut(&instance.worker) {
            v.retain(|x| *x != id);
        }
        Some(instance)
    }

    /// Removes every instance hosted by a worker, returning them.
    pub fn remove_worker(&mut self, worker: WorkerId) -> Vec<PhysicalInstance> {
        let ids = self.by_worker.remove(&worker).unwrap_or_default();
        let mut removed = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(instance) = self.instances.remove(&id) {
                if let Some(v) = self.by_partition.get_mut(&instance.logical) {
                    v.retain(|x| *x != id);
                }
                removed.push(instance);
            }
        }
        removed
    }

    /// Looks up an instance by its physical id.
    pub fn get(&self, id: PhysicalObjectId) -> Option<&PhysicalInstance> {
        self.instances.get(&id)
    }

    /// Updates the version held by an instance.
    pub fn set_version(&mut self, id: PhysicalObjectId, version: Version) -> CoreResult<()> {
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(CoreError::UnknownPhysicalObject(id))?;
        inst.version = version;
        Ok(())
    }

    /// Returns every instance holding the given partition.
    pub fn instances_of(&self, lp: LogicalPartition) -> Vec<&PhysicalInstance> {
        self.by_partition
            .get(&lp)
            .map(|ids| ids.iter().filter_map(|id| self.instances.get(id)).collect())
            .unwrap_or_default()
    }

    /// Returns the instance of a partition hosted by a given worker, if any.
    pub fn instance_on_worker(
        &self,
        lp: LogicalPartition,
        worker: WorkerId,
    ) -> Option<&PhysicalInstance> {
        self.by_partition.get(&lp).and_then(|ids| {
            ids.iter()
                .filter_map(|id| self.instances.get(id))
                .find(|inst| inst.worker == worker)
        })
    }

    /// Returns the instances that hold the latest version of a partition
    /// according to the supplied version map.
    pub fn latest_holders(
        &self,
        lp: LogicalPartition,
        versions: &VersionMap,
    ) -> Vec<&PhysicalInstance> {
        let latest = versions.current(lp);
        self.instances_of(lp)
            .into_iter()
            .filter(|inst| inst.version == latest)
            .collect()
    }

    /// Returns true if the instance identified by `id` holds the latest
    /// version of its partition.
    pub fn is_up_to_date(&self, id: PhysicalObjectId, versions: &VersionMap) -> bool {
        match self.instances.get(&id) {
            Some(inst) => inst.version == versions.current(inst.logical),
            None => false,
        }
    }

    /// Returns all instances hosted by a worker.
    pub fn on_worker(&self, worker: WorkerId) -> Vec<&PhysicalInstance> {
        self.by_worker
            .get(&worker)
            .map(|ids| ids.iter().filter_map(|id| self.instances.get(id)).collect())
            .unwrap_or_default()
    }

    /// Number of instances tracked.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Returns true if there are no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Iterates over all instances.
    pub fn iter(&self) -> impl Iterator<Item = &PhysicalInstance> {
        self.instances.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LogicalObjectId, PartitionIndex};

    fn lp(o: u64, p: u32) -> LogicalPartition {
        LogicalPartition::new(LogicalObjectId(o), PartitionIndex(p))
    }

    #[test]
    fn version_map_bump_and_current() {
        let mut vm = VersionMap::new();
        assert_eq!(vm.current(lp(1, 0)), Version::ZERO);
        assert_eq!(vm.bump(lp(1, 0)), Version(1));
        assert_eq!(vm.bump(lp(1, 0)), Version(2));
        assert_eq!(vm.current(lp(1, 0)), Version(2));
        assert_eq!(vm.bump_by(lp(1, 0), 3), Version(5));
        assert_eq!(vm.len(), 1);
    }

    #[test]
    fn instance_map_tracks_latest_holders() {
        let mut vm = VersionMap::new();
        let mut im = InstanceMap::new();
        let a = PhysicalInstance::new(PhysicalObjectId(1), lp(1, 0), WorkerId(0));
        let b = PhysicalInstance::new(PhysicalObjectId(2), lp(1, 0), WorkerId(1));
        im.insert(a);
        im.insert(b);

        // Both hold version 0 and version 0 is latest: both are holders.
        assert_eq!(im.latest_holders(lp(1, 0), &vm).len(), 2);

        // Worker 0 writes the partition: only its instance is up to date.
        let v1 = vm.bump(lp(1, 0));
        im.set_version(PhysicalObjectId(1), v1).unwrap();
        let holders = im.latest_holders(lp(1, 0), &vm);
        assert_eq!(holders.len(), 1);
        assert_eq!(holders[0].worker, WorkerId(0));
        assert!(im.is_up_to_date(PhysicalObjectId(1), &vm));
        assert!(!im.is_up_to_date(PhysicalObjectId(2), &vm));
    }

    #[test]
    fn instance_on_worker_lookup() {
        let mut im = InstanceMap::new();
        im.insert(PhysicalInstance::new(
            PhysicalObjectId(1),
            lp(1, 0),
            WorkerId(0),
        ));
        im.insert(PhysicalInstance::new(
            PhysicalObjectId(2),
            lp(1, 1),
            WorkerId(0),
        ));
        assert!(im.instance_on_worker(lp(1, 0), WorkerId(0)).is_some());
        assert!(im.instance_on_worker(lp(1, 0), WorkerId(1)).is_none());
        assert_eq!(im.on_worker(WorkerId(0)).len(), 2);
    }

    #[test]
    fn remove_worker_drops_instances() {
        let mut im = InstanceMap::new();
        im.insert(PhysicalInstance::new(
            PhysicalObjectId(1),
            lp(1, 0),
            WorkerId(0),
        ));
        im.insert(PhysicalInstance::new(
            PhysicalObjectId(2),
            lp(1, 0),
            WorkerId(1),
        ));
        let removed = im.remove_worker(WorkerId(0));
        assert_eq!(removed.len(), 1);
        assert_eq!(im.len(), 1);
        assert!(im
            .instances_of(lp(1, 0))
            .iter()
            .all(|i| i.worker == WorkerId(1)));
    }

    #[test]
    fn set_version_on_unknown_instance_fails() {
        let mut im = InstanceMap::new();
        assert!(matches!(
            im.set_version(PhysicalObjectId(77), Version(1)),
            Err(CoreError::UnknownPhysicalObject(_))
        ));
    }
}
