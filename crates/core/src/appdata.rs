//! Application data objects.
//!
//! Workers hold application data in mutable, in-place-updatable objects
//! (Section 3.3). The control plane never inspects their contents; it only
//! needs to clone them for copies, move them between workers, and estimate
//! their size for traffic accounting. [`AppData`] is the minimal trait that
//! supports those operations while letting applications use arbitrary Rust
//! types for their partitions.

use std::any::Any;

/// A type-erased, clonable application data object.
pub trait AppData: Any + Send {
    /// Upcasts to [`Any`] for downcasting to the concrete type.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast to [`Any`].
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Clones the object into a new boxed instance (used by copy commands).
    fn clone_box(&self) -> Box<dyn AppData>;

    /// Approximate in-memory / on-wire size in bytes, used for data-plane
    /// traffic accounting. Implementations should count heap contents, not
    /// just the struct header.
    fn approx_size(&self) -> usize;

    /// Short type label used in traces and error messages.
    fn type_label(&self) -> &'static str {
        std::any::type_name::<Self>()
    }

    /// The value reported for driver `FetchValue` requests, if this type has
    /// a scalar projection. Types without one (the default) make fetches of
    /// their datasets report `NaN`; implement this together with
    /// [`ScalarReadable`] so the driver-side compile-time gate and the
    /// worker-side runtime projection stay in sync.
    fn scalar_value(&self) -> Option<f64> {
        None
    }

    /// Serializes the object's contents for a cross-process data transfer,
    /// or `None` if this type cannot leave the process (the default). The
    /// in-process transport hands objects over directly and never calls
    /// this; the TCP transport requires it for worker-to-worker copies.
    fn to_wire(&self) -> Option<Vec<u8>> {
        None
    }

    /// Replaces this object's contents from bytes produced by
    /// [`AppData::to_wire`] on another instance of the same concrete type.
    /// The receiving worker always holds an already-created object (the
    /// controller issues `CreateData` before any copy), so decoding is
    /// in-place rather than constructing.
    fn decode_wire(&mut self, _bytes: &[u8]) -> Result<(), String> {
        Err(format!(
            "{} does not support cross-process transfers (no decode_wire)",
            self.type_label()
        ))
    }
}

/// Marker for application data types whose [`AppData::scalar_value`] is
/// meaningful: the driver's typed `fetch` only compiles for datasets of
/// these types. Implementations live next to their `scalar_value` overrides
/// in this module so the two lists cannot drift apart.
pub trait ScalarReadable: AppData {}

impl ScalarReadable for Scalar {}
impl ScalarReadable for VecF64 {}

impl Clone for Box<dyn AppData> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl std::fmt::Debug for Box<dyn AppData> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AppData<{}>({} bytes)",
            self.type_label(),
            self.approx_size()
        )
    }
}

/// Implements [`AppData`] for a concrete `Clone` type.
///
/// The optional second argument is an expression computing the approximate
/// size from `self`; it defaults to `std::mem::size_of::<T>()`.
///
/// # Examples
///
/// ```
/// use nimbus_core::impl_app_data;
///
/// #[derive(Clone)]
/// struct Partition { values: Vec<f64> }
///
/// impl_app_data!(Partition, |p: &Partition| {
///     p.values.len() * 8 + std::mem::size_of::<Partition>()
/// });
/// ```
#[macro_export]
macro_rules! impl_app_data {
    ($ty:ty) => {
        $crate::impl_app_data!($ty, |_x| std::mem::size_of::<$ty>());
    };
    ($ty:ty, $size:expr) => {
        impl $crate::appdata::AppData for $ty {
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }

            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }

            fn clone_box(&self) -> Box<dyn $crate::appdata::AppData> {
                Box::new(self.clone())
            }

            fn approx_size(&self) -> usize {
                #[allow(clippy::redundant_closure_call)]
                ($size)(self)
            }
        }
    };
}

/// A plain vector of `f64` values: the workhorse partition type used by the
/// built-in workloads (gradients, coefficients, centroids, error cells).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VecF64 {
    /// The values held by this partition.
    pub values: Vec<f64>,
}

impl VecF64 {
    /// Creates a partition holding `values`.
    pub fn new(values: Vec<f64>) -> Self {
        Self { values }
    }

    /// Creates a zero-filled partition of length `len`.
    pub fn zeros(len: usize) -> Self {
        Self {
            values: vec![0.0; len],
        }
    }
}

impl AppData for VecF64 {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn clone_box(&self) -> Box<dyn AppData> {
        Box::new(self.clone())
    }

    fn approx_size(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>() + std::mem::size_of::<VecF64>()
    }

    fn scalar_value(&self) -> Option<f64> {
        self.values.first().copied()
    }

    fn to_wire(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(self.values.len() * 8);
        for v in &self.values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        Some(out)
    }

    fn decode_wire(&mut self, bytes: &[u8]) -> Result<(), String> {
        if !bytes.len().is_multiple_of(8) {
            return Err(format!("VecF64 wire payload of {} bytes", bytes.len()));
        }
        self.values = bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        Ok(())
    }
}

/// A single scalar value, used for reduced globals such as error terms.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Scalar {
    /// The scalar value.
    pub value: f64,
}

impl Scalar {
    /// Creates a scalar.
    pub fn new(value: f64) -> Self {
        Self { value }
    }
}

impl AppData for Scalar {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn clone_box(&self) -> Box<dyn AppData> {
        Box::new(*self)
    }

    fn approx_size(&self) -> usize {
        std::mem::size_of::<Scalar>()
    }

    fn scalar_value(&self) -> Option<f64> {
        Some(self.value)
    }

    fn to_wire(&self) -> Option<Vec<u8>> {
        Some(self.value.to_le_bytes().to_vec())
    }

    fn decode_wire(&mut self, bytes: &[u8]) -> Result<(), String> {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| format!("Scalar wire payload of {} bytes", bytes.len()))?;
        self.value = f64::from_le_bytes(arr);
        Ok(())
    }
}

/// Downcasts a boxed [`AppData`] reference to a concrete type.
pub fn downcast_ref<T: 'static>(data: &dyn AppData) -> Option<&T> {
    data.as_any().downcast_ref::<T>()
}

/// Mutable downcast of an [`AppData`] reference to a concrete type.
pub fn downcast_mut<T: 'static>(data: &mut dyn AppData) -> Option<&mut T> {
    data.as_any_mut().downcast_mut::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vecf64_roundtrip_through_trait_object() {
        let boxed: Box<dyn AppData> = Box::new(VecF64::new(vec![1.0, 2.0, 3.0]));
        let cloned = boxed.clone();
        let back = downcast_ref::<VecF64>(cloned.as_ref()).unwrap();
        assert_eq!(back.values, vec![1.0, 2.0, 3.0]);
        assert!(cloned.approx_size() >= 24);
    }

    #[test]
    fn downcast_mut_mutates_in_place() {
        let mut boxed: Box<dyn AppData> = Box::new(Scalar::new(1.0));
        downcast_mut::<Scalar>(boxed.as_mut()).unwrap().value = 5.0;
        assert_eq!(downcast_ref::<Scalar>(boxed.as_ref()).unwrap().value, 5.0);
    }

    #[test]
    fn wrong_downcast_returns_none() {
        let boxed: Box<dyn AppData> = Box::new(Scalar::new(1.0));
        assert!(downcast_ref::<VecF64>(boxed.as_ref()).is_none());
    }

    #[test]
    fn type_label_is_informative() {
        let boxed: Box<dyn AppData> = Box::new(VecF64::zeros(4));
        assert!(boxed.type_label().contains("VecF64"));
        assert!(format!("{boxed:?}").contains("VecF64"));
    }
}
