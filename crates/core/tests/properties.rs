//! Randomized tests for the core control-plane invariants.
//!
//! These were originally proptest properties; the vendored build has no
//! crates.io access, so each property now runs over a fixed number of cases
//! drawn from the workspace's seeded deterministic generator. Failures are
//! reproducible: every case prints its seed on panic via the assert context.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nimbus_core::ids::{
    CommandId, FunctionId, PhysicalObjectId, StageId, TaskId, TemplateId, WorkerId,
};
use nimbus_core::template::{
    ControllerTaskEntry, ControllerTemplate, InstantiationParams, SkeletonEntry, SkeletonKind,
    TemplateEdit, WorkerInstantiation, WorkerTemplate,
};
use nimbus_core::versioning::VersionMap;
use nimbus_core::{Command, CommandGraph, CommandKind, LogicalPartition, TaskParams};

const CASES: u64 = 64;

fn random_params(rng: &mut StdRng, max_len: usize) -> TaskParams {
    let len = rng.gen_range(0..max_len + 1);
    let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-1e6..1e6)).collect();
    TaskParams::from_f64s(&values)
}

/// Parameter blocks decode to exactly the values they encoded.
#[test]
fn params_round_trip() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(0usize..64);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(-1e9..1e9)).collect();
        let p = TaskParams::from_f64s(&values);
        assert_eq!(p.as_f64s().unwrap(), values, "seed {seed}");
    }
}

/// A command graph built with only backward dependencies always has a
/// topological order that respects every before edge.
#[test]
fn command_graph_topological_order_respects_dependencies() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.gen_range(1usize..40);
        let mut graph = CommandGraph::new();
        let mut befores: Vec<Vec<CommandId>> = Vec::with_capacity(count);
        for i in 0..count {
            let before: Vec<CommandId> = if i == 0 {
                Vec::new()
            } else {
                let deps = rng.gen_range(0usize..4);
                let mut b: Vec<CommandId> = (0..deps)
                    .map(|_| CommandId(rng.gen_range(0usize..i) as u64 + 1))
                    .collect();
                b.sort_unstable();
                b.dedup();
                b
            };
            let command = Command::new(
                CommandId(i as u64 + 1),
                CommandKind::RunTask {
                    function: FunctionId(1),
                    task: TaskId(i as u64),
                },
            )
            .with_before(before.clone());
            befores.push(before);
            graph.add(command, WorkerId(0)).unwrap();
        }
        assert!(graph.validate().is_ok(), "seed {seed}");
        let order = graph.topological_order().unwrap();
        assert_eq!(order.len(), count, "seed {seed}");
        let pos = |id: CommandId| order.iter().position(|x| *x == id).unwrap();
        for ac in graph.iter() {
            for dep in &ac.command.before {
                assert!(pos(*dep) < pos(ac.command.id), "seed {seed}");
            }
        }
    }
}

/// Version maps only move forward, no matter the interleaving of writes.
#[test]
fn version_map_is_monotonic() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let writes = rng.gen_range(1usize..200);
        let mut versions = VersionMap::new();
        let mut last = std::collections::HashMap::new();
        for _ in 0..writes {
            let p = rng.gen_range(0u32..8);
            let lp = LogicalPartition::new(
                nimbus_core::LogicalObjectId(1),
                nimbus_core::PartitionIndex(p),
            );
            let v = versions.bump(lp);
            let prev = last.insert(lp, v);
            if let Some(prev) = prev {
                assert!(v > prev, "seed {seed}");
            }
        }
    }
}

/// Instantiating a controller template preserves structure and applies
/// exactly the supplied task identifiers, independent of parameters.
#[test]
fn controller_template_instantiation_preserves_structure() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let task_count = rng.gen_range(1usize..40);
        let base = rng.gen_range(1u64..1_000_000);
        let params: Vec<TaskParams> = (0..task_count)
            .map(|_| random_params(&mut rng, 8))
            .collect();
        let entries: Vec<ControllerTaskEntry> = (0..task_count)
            .map(|i| ControllerTaskEntry {
                index: i,
                stage: StageId(1 + (i % 3) as u64),
                function: FunctionId(7),
                reads: vec![LogicalPartition::new(
                    nimbus_core::LogicalObjectId(1),
                    nimbus_core::PartitionIndex(i as u32),
                )],
                writes: vec![LogicalPartition::new(
                    nimbus_core::LogicalObjectId(2),
                    nimbus_core::PartitionIndex(i as u32),
                )],
                before: if i == 0 { vec![] } else { vec![i - 1] },
                assigned_worker: WorkerId((i % 4) as u32),
                default_params: TaskParams::empty(),
            })
            .collect();
        let template = ControllerTemplate::new(TemplateId(1), "block", entries).unwrap();
        let ids: Vec<TaskId> = (0..task_count as u64).map(|i| TaskId(base + i)).collect();
        let per_task = InstantiationParams::PerTask(params.clone());
        let specs = template.instantiate(&ids, &per_task).unwrap();
        assert_eq!(specs.len(), task_count, "seed {seed}");
        for (i, spec) in specs.iter().enumerate() {
            assert_eq!(spec.id, ids[i], "seed {seed}");
            assert_eq!(spec.function, FunctionId(7), "seed {seed}");
            assert_eq!(&spec.params, &params[i], "seed {seed}");
            assert_eq!(
                spec.preferred_worker,
                Some(WorkerId((i % 4) as u32)),
                "seed {seed}"
            );
        }
    }
}

/// Removing entries via edits never changes the command identifiers of the
/// surviving entries (index stability, Section 4.3) and never makes
/// instantiation fail.
#[test]
fn edits_keep_surviving_indices_stable() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let entry_count = rng.gen_range(2usize..30);
        let remove_count = rng.gen_range(1usize..8);
        let entries: Vec<SkeletonEntry> = (0..entry_count)
            .map(|i| {
                SkeletonEntry::new(SkeletonKind::RunTask {
                    function: FunctionId(1),
                    task_slot: i,
                })
                .with_writes(vec![PhysicalObjectId(i as u64 + 1)])
                .with_before(if i == 0 { vec![] } else { vec![i - 1] })
                .with_param_slot(i)
            })
            .collect();
        let mut template =
            WorkerTemplate::new(TemplateId(1), TemplateId(1), WorkerId(0), entries).unwrap();
        let instantiation = WorkerInstantiation {
            template: TemplateId(1),
            base_command_id: 100,
            base_transfer_id: 0,
            task_ids: (0..entry_count as u64).map(TaskId).collect(),
            params: vec![TaskParams::empty(); entry_count],
            edits: vec![],
        };
        let before_edit = template.instantiate(&instantiation).unwrap();
        let removed: std::collections::HashSet<usize> = (0..remove_count)
            .map(|_| rng.gen_range(0usize..entry_count))
            .collect();
        let edits: Vec<TemplateEdit> = removed
            .iter()
            .map(|i| TemplateEdit::RemoveEntry { index: *i })
            .collect();
        template.apply_edits(&edits).unwrap();
        let after_edit = template.instantiate(&instantiation).unwrap();
        assert_eq!(after_edit.len(), entry_count - removed.len(), "seed {seed}");
        // Every surviving command keeps the exact identifier it had before.
        let before_ids: std::collections::HashMap<_, _> = before_edit
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.id))
            .collect();
        for command in &after_edit {
            let original_index = (command.id.raw() - 100) as usize;
            assert!(!removed.contains(&original_index), "seed {seed}");
            assert_eq!(command.id, before_ids[&original_index], "seed {seed}");
        }
    }
}
