//! Property-based tests for the core control-plane invariants.

use proptest::prelude::*;

use nimbus_core::ids::{CommandId, FunctionId, PhysicalObjectId, StageId, TaskId, TemplateId, WorkerId};
use nimbus_core::template::{
    ControllerTaskEntry, ControllerTemplate, InstantiationParams, SkeletonEntry, SkeletonKind,
    TemplateEdit, WorkerInstantiation, WorkerTemplate,
};
use nimbus_core::versioning::VersionMap;
use nimbus_core::{Command, CommandGraph, CommandKind, LogicalPartition, TaskParams};

fn arb_params() -> impl Strategy<Value = TaskParams> {
    prop::collection::vec(-1e6f64..1e6, 0..8).prop_map(|v| TaskParams::from_f64s(&v))
}

proptest! {
    /// Parameter blocks decode to exactly the values they encoded.
    #[test]
    fn params_round_trip(values in prop::collection::vec(-1e9f64..1e9, 0..64)) {
        let p = TaskParams::from_f64s(&values);
        prop_assert_eq!(p.as_f64s().unwrap(), values);
    }

    /// A command graph built with only backward dependencies always has a
    /// topological order that respects every before edge.
    #[test]
    fn command_graph_topological_order_respects_dependencies(
        deps in prop::collection::vec(prop::collection::vec(any::<prop::sample::Index>(), 0..4), 1..40)
    ) {
        let mut graph = CommandGraph::new();
        for (i, dep_ix) in deps.iter().enumerate() {
            let before: Vec<CommandId> = if i == 0 {
                Vec::new()
            } else {
                let mut b: Vec<CommandId> = dep_ix
                    .iter()
                    .map(|ix| CommandId(ix.index(i) as u64 + 1))
                    .collect();
                b.sort_unstable();
                b.dedup();
                b
            };
            let command = Command::new(
                CommandId(i as u64 + 1),
                CommandKind::RunTask { function: FunctionId(1), task: TaskId(i as u64) },
            )
            .with_before(before);
            graph.add(command, WorkerId(0)).unwrap();
        }
        prop_assert!(graph.validate().is_ok());
        let order = graph.topological_order().unwrap();
        prop_assert_eq!(order.len(), deps.len());
        let pos = |id: CommandId| order.iter().position(|x| *x == id).unwrap();
        for ac in graph.iter() {
            for dep in &ac.command.before {
                prop_assert!(pos(*dep) < pos(ac.command.id));
            }
        }
    }

    /// Version maps only move forward, no matter the interleaving of writes.
    #[test]
    fn version_map_is_monotonic(writes in prop::collection::vec(0u32..8, 1..200)) {
        let mut versions = VersionMap::new();
        let mut last = std::collections::HashMap::new();
        for p in writes {
            let lp = LogicalPartition::new(nimbus_core::LogicalObjectId(1), nimbus_core::PartitionIndex(p));
            let v = versions.bump(lp);
            let prev = last.insert(lp, v);
            if let Some(prev) = prev {
                prop_assert!(v > prev);
            }
        }
    }

    /// Instantiating a controller template preserves structure and applies
    /// exactly the supplied task identifiers, independent of parameters.
    #[test]
    fn controller_template_instantiation_preserves_structure(
        task_count in 1usize..40,
        params in prop::collection::vec(arb_params(), 40),
        base in 1u64..1_000_000,
    ) {
        let entries: Vec<ControllerTaskEntry> = (0..task_count)
            .map(|i| ControllerTaskEntry {
                index: i,
                stage: StageId(1 + (i % 3) as u64),
                function: FunctionId(7),
                reads: vec![LogicalPartition::new(nimbus_core::LogicalObjectId(1), nimbus_core::PartitionIndex(i as u32))],
                writes: vec![LogicalPartition::new(nimbus_core::LogicalObjectId(2), nimbus_core::PartitionIndex(i as u32))],
                before: if i == 0 { vec![] } else { vec![i - 1] },
                assigned_worker: WorkerId((i % 4) as u32),
                default_params: TaskParams::empty(),
            })
            .collect();
        let template = ControllerTemplate::new(TemplateId(1), "block", entries).unwrap();
        let ids: Vec<TaskId> = (0..task_count as u64).map(|i| TaskId(base + i)).collect();
        let per_task = InstantiationParams::PerTask(params[..task_count].to_vec());
        let specs = template.instantiate(&ids, &per_task).unwrap();
        prop_assert_eq!(specs.len(), task_count);
        for (i, spec) in specs.iter().enumerate() {
            prop_assert_eq!(spec.id, ids[i]);
            prop_assert_eq!(spec.function, FunctionId(7));
            prop_assert_eq!(&spec.params, &params[i]);
            prop_assert_eq!(spec.preferred_worker, Some(WorkerId((i % 4) as u32)));
        }
    }

    /// Removing entries via edits never changes the command identifiers of
    /// the surviving entries (index stability, Section 4.3) and never makes
    /// instantiation fail.
    #[test]
    fn edits_keep_surviving_indices_stable(
        entry_count in 2usize..30,
        remove in prop::collection::vec(any::<prop::sample::Index>(), 1..8),
    ) {
        let entries: Vec<SkeletonEntry> = (0..entry_count)
            .map(|i| {
                SkeletonEntry::new(SkeletonKind::RunTask { function: FunctionId(1), task_slot: i })
                    .with_writes(vec![PhysicalObjectId(i as u64 + 1)])
                    .with_before(if i == 0 { vec![] } else { vec![i - 1] })
                    .with_param_slot(i)
            })
            .collect();
        let mut template =
            WorkerTemplate::new(TemplateId(1), TemplateId(1), WorkerId(0), entries).unwrap();
        let instantiation = WorkerInstantiation {
            template: TemplateId(1),
            base_command_id: 100,
            base_transfer_id: 0,
            task_ids: (0..entry_count as u64).map(TaskId).collect(),
            params: vec![TaskParams::empty(); entry_count],
            edits: vec![],
        };
        let before_edit = template.instantiate(&instantiation).unwrap();
        let removed: std::collections::HashSet<usize> =
            remove.iter().map(|ix| ix.index(entry_count)).collect();
        let edits: Vec<TemplateEdit> = removed
            .iter()
            .map(|i| TemplateEdit::RemoveEntry { index: *i })
            .collect();
        template.apply_edits(&edits).unwrap();
        let after_edit = template.instantiate(&instantiation).unwrap();
        prop_assert_eq!(after_edit.len(), entry_count - removed.len());
        // Every surviving command keeps the exact identifier it had before.
        let before_ids: std::collections::HashMap<_, _> = before_edit
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.id))
            .collect();
        for command in &after_edit {
            let original_index = (command.id.raw() - 100) as usize;
            prop_assert!(!removed.contains(&original_index));
            prop_assert_eq!(command.id, before_ids[&original_index]);
        }
    }
}
