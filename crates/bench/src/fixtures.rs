//! Shared fixtures for the microbenchmarks.
//!
//! The paper's microbenchmarks (Tables 1–3) use a logistic-regression job
//! with one controller template of 8 000 tasks split into 100 worker
//! templates of 80 tasks each. [`BenchCluster`] reproduces that scenario
//! directly against the controller's data structures — no worker threads —
//! so Criterion measures pure control-plane cost, exactly what the paper
//! reports.

use nimbus_controller::{
    expand_task, AssignmentPolicy, Bookkeeping, DataManager, IdGens, TemplateManager,
};
use nimbus_core::data::DatasetDef;
use nimbus_core::ids::{
    FunctionId, LogicalObjectId, LogicalPartition, PartitionIndex, StageId, TaskId, TemplateId,
    WorkerId,
};
use nimbus_core::lineage::LineageLog;
use nimbus_core::task::TaskSpec;
use nimbus_core::template::{InstantiationParams, WorkerTemplate};
use nimbus_core::TaskParams;

/// Shape of the benchmarked basic block.
#[derive(Clone, Copy, Debug)]
pub struct BlockShape {
    /// Number of workers (the paper uses 100).
    pub workers: u32,
    /// Application tasks per worker (the paper uses 80).
    pub tasks_per_worker: u32,
}

impl BlockShape {
    /// The paper's microbenchmark shape: 8 000 tasks over 100 workers.
    pub fn paper() -> Self {
        Self {
            workers: 100,
            tasks_per_worker: 80,
        }
    }

    /// Total tasks in the block.
    pub fn tasks(&self) -> u32 {
        self.workers * self.tasks_per_worker
    }
}

/// A controller-only cluster for control-plane microbenchmarks.
pub struct BenchCluster {
    /// The controller's data manager.
    pub dm: DataManager,
    /// Dependency bookkeeping for the per-task path.
    pub bk: Bookkeeping,
    /// Identifier generators.
    pub ids: IdGens,
    /// Template manager.
    pub tm: TemplateManager,
    /// Lineage log.
    pub lineage: LineageLog,
    /// Active workers.
    pub workers: Vec<WorkerId>,
    shape: BlockShape,
}

const GRADIENT_FN: FunctionId = FunctionId(1);
const UPDATE_FN: FunctionId = FunctionId(2);
const TDATA: LogicalObjectId = LogicalObjectId(1);
const GRADIENT: LogicalObjectId = LogicalObjectId(2);
const WEIGHTS: LogicalObjectId = LogicalObjectId(3);

impl BenchCluster {
    /// Creates a cluster with the datasets of an LR-like job.
    pub fn new(shape: BlockShape) -> Self {
        let workers: Vec<WorkerId> = (0..shape.workers).map(WorkerId).collect();
        let mut dm = DataManager::new(AssignmentPolicy::hash());
        dm.define_dataset(DatasetDef::new(TDATA, "tdata", shape.tasks()));
        dm.define_dataset(DatasetDef::new(GRADIENT, "gradient", shape.tasks()));
        dm.define_dataset(DatasetDef::new(WEIGHTS, "weights", 1));
        Self {
            dm,
            bk: Bookkeeping::new(),
            ids: IdGens::new(),
            tm: TemplateManager::new(),
            lineage: LineageLog::new(),
            workers,
            shape,
        }
    }

    /// The task stream of one iteration of the benchmarked block.
    pub fn iteration_specs(&self) -> Vec<TaskSpec> {
        let mut specs = Vec::with_capacity(self.shape.tasks() as usize + 1);
        let weights = LogicalPartition::new(WEIGHTS, PartitionIndex(0));
        for p in 0..self.shape.tasks() {
            specs.push(
                TaskSpec::new(TaskId(self.ids.tasks.next_raw()), StageId(1), GRADIENT_FN)
                    .with_reads(vec![
                        LogicalPartition::new(TDATA, PartitionIndex(p)),
                        weights,
                    ])
                    .with_writes(vec![LogicalPartition::new(GRADIENT, PartitionIndex(p))])
                    .with_preferred_worker(WorkerId(p % self.shape.workers))
                    .with_params(TaskParams::from_scalar(p as f64)),
            );
        }
        // A final update task writes the weights, so the block has a
        // precondition/postcondition structure like the paper's inner loop.
        specs.push(
            TaskSpec::new(TaskId(self.ids.tasks.next_raw()), StageId(2), UPDATE_FN)
                .with_reads(vec![LogicalPartition::new(GRADIENT, PartitionIndex(0))])
                .with_writes(vec![weights])
                .with_preferred_worker(WorkerId(0))
                .with_params(TaskParams::from_scalar(0.5)),
        );
        specs
    }

    /// Expands and dispatches one task through the per-task scheduling path
    /// (the "Nimbus schedule task" row of Table 1). Returns the number of
    /// commands produced.
    pub fn schedule_one(&mut self, spec: &TaskSpec) -> usize {
        let expanded = expand_task(
            spec,
            &self.workers,
            &mut self.dm,
            &mut self.bk,
            &self.ids,
            &mut self.lineage,
        )
        .expect("expansion succeeds");
        self.tm.record_task(spec, &expanded);
        expanded.commands.len()
    }

    /// Records and installs the block, returning the controller template id,
    /// the worker-template group id, and the per-worker templates.
    pub fn install_block(
        &mut self,
        name: &str,
    ) -> (TemplateId, TemplateId, Vec<(WorkerId, WorkerTemplate)>) {
        self.tm.start_recording(name).expect("no block recording");
        for spec in self.iteration_specs() {
            self.schedule_one(&spec);
        }
        self.tm
            .finish_recording(name, &self.dm, &self.ids)
            .expect("template generation succeeds")
    }

    /// Plans one instantiation of an installed group (validation, patching,
    /// per-worker messages, bookkeeping updates).
    pub fn plan_instantiation(
        &mut self,
        group: TemplateId,
    ) -> nimbus_controller::InstantiationPlan {
        self.tm
            .plan_instantiation(
                group,
                &InstantiationParams::Defaults,
                &mut self.dm,
                &mut self.bk,
                &self.ids,
            )
            .expect("instantiation plan succeeds")
    }

    /// Queues `count` task migrations for the block (exercising edits).
    pub fn plan_migrations(&mut self, block: &str, count: usize) -> usize {
        let workers = self.workers.clone();
        self.tm
            .plan_migrations(block, count, &workers, &mut self.dm)
            .expect("migration planning succeeds")
    }

    /// The benchmark shape.
    pub fn shape(&self) -> BlockShape {
        self.shape
    }
}

/// Convenience: builds a cluster and installs one block, returning everything
/// needed by instantiation and edit benchmarks.
pub fn record_block(shape: BlockShape) -> (BenchCluster, TemplateId, TemplateId) {
    let mut cluster = BenchCluster::new(shape);
    let (ct, group, _installs) = cluster.install_block("bench_inner");
    (cluster, ct, group)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_and_installation() {
        let shape = BlockShape {
            workers: 10,
            tasks_per_worker: 8,
        };
        let (mut cluster, ct, group) = record_block(shape);
        let template = cluster.tm.registry.controller_template(ct).unwrap();
        assert_eq!(template.task_count(), 81);
        let g = cluster.tm.registry.group(group).unwrap();
        assert_eq!(g.per_worker.len(), 10);
        assert!(g.is_self_validating());
        // First instantiation needs a full validation (and usually a patch);
        // the second auto-validates.
        let first = cluster.plan_instantiation(group);
        assert!(!first.auto_validated);
        let second = cluster.plan_instantiation(group);
        assert!(second.auto_validated);
        assert_eq!(second.task_count, 81);
        // Migration planning produces pending edits.
        let planned = cluster.plan_migrations("bench_inner", 4);
        assert_eq!(planned, 4);
        let third = cluster.plan_instantiation(group);
        let edits: usize = third.per_worker.iter().map(|(_, i)| i.edits.len()).sum();
        assert!(edits >= 4);
    }
}
