//! Figure 9 companion: iterations-to-recover after a worker failure, with
//! the rejoin path (the failed worker returns and is readmitted through
//! template reinstalls + edits, zero re-recordings) versus the
//! checkpoint-restart baseline (recovery proceeds onto the survivors and the
//! next instantiation re-records templates for the shrunken allocation).
//!
//! The paper's claim is that membership changes are template *edits*, not
//! job restarts: the rejoin path must recover in ~the outage time plus a
//! handful of iterations, without ever re-recording, while the baseline pays
//! a re-recording on top of the data movement.

use std::time::{Duration, Instant};

use nimbus_bench::{print_table, BenchJson, TableRow};
use nimbus_core::appdata::{Scalar, VecF64};
use nimbus_core::ids::WorkerId;
use nimbus_core::TaskParams;
use nimbus_driver::{Dataset, StageSpec};
use nimbus_runtime::quickstart::{quickstart_setup, ADD, PARTITIONS, PARTITION_LEN, SUM};
use nimbus_runtime::{Cluster, ClusterConfig, ClusterReport};

const ITERATIONS: u32 = 40;
const KILL_AFTER: u32 = 20;
/// How long the worker stays dead before rejoining (rejoin scenario only).
const OUTAGE: Duration = Duration::from_millis(300);

struct Outcome {
    report: ClusterReport<Vec<f64>>,
    /// Wall-clock duration of every iteration (block + fetch).
    iteration_times: Vec<Duration>,
}

/// Runs the quickstart loop, killing worker 0 after iteration `KILL_AFTER`'s
/// fetch; with `rejoin` the worker comes back after `OUTAGE`.
fn run(rejoin: bool) -> Outcome {
    // Real task durations (the paper equalizes them the same way): without
    // this, release-mode iterations take microseconds and the fixed outage
    // time would swamp the per-iteration recovery accounting.
    let mut config = ClusterConfig::new(2)
        .with_tcp_transport()
        .with_spin_wait(Duration::from_millis(3))
        .with_checkpoint_every(3);
    if rejoin {
        config = config.with_rejoin_grace(Duration::from_secs(30));
    }
    let cluster = Cluster::start(config, quickstart_setup());
    let mut iteration_times = Vec::with_capacity(ITERATIONS as usize);
    let report = cluster
        .run_driver_with_cluster(|ctx, cluster| {
            let data: Dataset<VecF64> = ctx.define_dataset("data", PARTITIONS)?;
            let total: Dataset<Scalar> = ctx.define_dataset("total", 1)?;
            let mut totals = Vec::with_capacity(ITERATIONS as usize);
            for i in 0..ITERATIONS {
                let start = Instant::now();
                ctx.block("inner", |ctx| {
                    ctx.submit_stage(
                        StageSpec::new("add", ADD)
                            .write(&data)
                            .params(TaskParams::from_scalar(1.0)),
                    )?;
                    let mut sum = StageSpec::new("sum", SUM).partitions(1);
                    for p in 0..data.partitions {
                        sum = sum.read_partition(&data, p);
                    }
                    ctx.submit_stage(sum.write_partition(&total, 0))?;
                    Ok(())
                })?;
                totals.push(ctx.fetch(&total, 0)?);
                iteration_times.push(start.elapsed());
                if i == KILL_AFTER {
                    cluster.kill_worker(WorkerId(0));
                    if rejoin {
                        std::thread::sleep(OUTAGE);
                        cluster.rejoin_worker(WorkerId(0));
                    }
                }
            }
            Ok(totals)
        })
        .expect("churned job completes");
    Outcome {
        report,
        iteration_times,
    }
}

/// Recovery cost in *iterations*: total disturbed-phase wall time beyond the
/// undisturbed per-iteration median, divided by that median.
fn iterations_to_recover(outcome: &Outcome) -> f64 {
    let mut sorted: Vec<Duration> = outcome.iteration_times[..KILL_AFTER as usize].to_vec();
    sorted.sort_unstable();
    let per_iter = sorted[sorted.len() / 2].as_secs_f64().max(1e-9);
    let disturbed: f64 = outcome.iteration_times[KILL_AFTER as usize..]
        .iter()
        .map(|d| d.as_secs_f64())
        .sum();
    let remaining = (ITERATIONS - KILL_AFTER) as f64;
    (disturbed / per_iter - remaining).max(0.0)
}

fn main() {
    let rejoin = run(true);
    let restart = run(false);

    // Both scenarios must still produce the exact undisturbed totals: the
    // rejoin path via replay onto the readmitted worker, the baseline via
    // replay onto the survivor (the shared in-process vault keeps every
    // checkpoint entry reachable).
    let expected: Vec<f64> = (1..=ITERATIONS)
        .map(|i| (i as usize * PARTITIONS as usize * PARTITION_LEN) as f64)
        .collect();
    assert_eq!(rejoin.report.output, expected, "rejoin output diverged");
    assert_eq!(restart.report.output, expected, "restart output diverged");
    // The headline property: rejoin never re-records; the baseline does.
    assert_eq!(
        rejoin.report.controller.controller_templates_installed, 1,
        "rejoin path re-recorded a template"
    );
    assert!(
        restart.report.controller.controller_templates_installed >= 2,
        "checkpoint-restart baseline should re-record for the survivors"
    );

    print_table(
        &format!(
            "Figure 9 companion: worker killed after iteration {KILL_AFTER} of {ITERATIONS} \
             ({}ms outage)",
            OUTAGE.as_millis()
        ),
        &[
            TableRow::new(
                "iterations to recover",
                "rejoin",
                format!("{:.1}", iterations_to_recover(&rejoin)),
            ),
            TableRow::new(
                "iterations to recover",
                "checkpoint-restart",
                format!("{:.1}", iterations_to_recover(&restart)),
            ),
            TableRow::new(
                "template recordings",
                "rejoin / restart",
                format!(
                    "{} / {}",
                    rejoin.report.controller.controller_templates_installed,
                    restart.report.controller.controller_templates_installed
                ),
            ),
            TableRow::new(
                "instantiations replayed",
                "rejoin / restart",
                format!(
                    "{} / {}",
                    rejoin.report.controller.instantiations_replayed,
                    restart.report.controller.instantiations_replayed
                ),
            ),
            TableRow::new(
                "template edits applied",
                "rejoin / restart",
                format!(
                    "{} / {}",
                    rejoin.report.controller.edits_applied, restart.report.controller.edits_applied
                ),
            ),
            TableRow::new(
                "rejoins handled",
                "rejoin / restart",
                format!(
                    "{} / {}",
                    rejoin.report.controller.rejoins_handled,
                    restart.report.controller.rejoins_handled
                ),
            ),
        ],
    );
    BenchJson::new("fig9_rejoin")
        .metric(
            "iterations_to_recover_rejoin",
            iterations_to_recover(&rejoin),
        )
        .metric(
            "iterations_to_recover_restart",
            iterations_to_recover(&restart),
        )
        .metric(
            "template_recordings_rejoin",
            rejoin.report.controller.controller_templates_installed,
        )
        .metric(
            "template_recordings_restart",
            restart.report.controller.controller_templates_installed,
        )
        .metric(
            "instantiations_replayed_rejoin",
            rejoin.report.controller.instantiations_replayed,
        )
        .metric("outage_ms", OUTAGE.as_millis() as u64)
        .write_or_die();
}
