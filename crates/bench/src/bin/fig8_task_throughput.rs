//! Figure 8: task throughput of Nimbus and Spark as the worker count grows.

use nimbus_bench::{print_rows, print_table, BenchJson, TableRow};
use nimbus_sim::{experiments, CostProfile};

fn main() {
    let profile = CostProfile::paper();
    let rows = experiments::fig8_task_throughput(&profile);
    print_rows("Figure 8: task throughput vs workers", "workers", &rows);
    let last = rows.last().expect("rows");
    print_table(
        "Figure 8 @100 workers: paper vs reproduced (tasks/second)",
        &[
            TableRow::new(
                "Spark saturation",
                "~6,000",
                format!("{:.0}", last.get("spark_tasks_per_s").unwrap()),
            ),
            TableRow::new(
                "Nimbus",
                "~128,000",
                format!("{:.0}", last.get("nimbus_tasks_per_s").unwrap()),
            ),
            TableRow::new(
                "Nimbus peak (Table 2)",
                ">500,000",
                format!("{:.0}", profile.template_steady_state_throughput()),
            ),
        ],
    );
    BenchJson::new("fig8_task_throughput")
        .metric(
            "spark_tasks_per_sec_100_workers",
            last.get("spark_tasks_per_s").unwrap(),
        )
        .metric(
            "nimbus_tasks_per_sec_100_workers",
            last.get("nimbus_tasks_per_s").unwrap(),
        )
        .metric(
            "nimbus_peak_tasks_per_sec",
            profile.template_steady_state_throughput(),
        )
        .metric("paper_nimbus_tasks_per_sec_100_workers", "~128,000")
        .metric("paper_nimbus_peak_tasks_per_sec", ">500,000")
        .write_or_die();
}
