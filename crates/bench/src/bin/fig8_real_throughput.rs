//! Figure 8 on the *real* runtime: steady-state templated task throughput
//! of the actual controller/worker/transport stack, not the cost-model
//! simulator.
//!
//! The driver floods pipelined instantiations of a recorded basic block
//! (the paper's steady-state regime) and the bench reports tasks/s in four
//! configurations: {in-process, TCP loopback} x {batched control plane,
//! per-message control plane}. The per-message mode reproduces the
//! pre-batching wire behavior — one transport send (and one `write(2)` on
//! TCP) per control message — so the batched/per-message ratio is a
//! before/after measurement of this PR's corked hot path on the same code
//! base. Results are printed as a table and written to
//! `BENCH_fig8_real.json` alongside the simulator and paper numbers.
//!
//! `--smoke` runs a small iteration count and asserts a sane throughput
//! floor plus that the JSON report was written (the CI mode, so the binary
//! cannot rot).

use std::time::{Duration, Instant};

use nimbus_bench::{print_table, BenchJson, TableRow};
use nimbus_core::appdata::VecF64;
use nimbus_core::ids::{FunctionId, LogicalObjectId};
use nimbus_core::TaskParams;
use nimbus_driver::{Dataset, DriverContext, DriverResult, StageSpec};
use nimbus_net::{DriverMessage, Message, NodeId, TcpFabric, TransportEndpoint};
use nimbus_runtime::{AppSetup, Cluster, ClusterConfig};
use nimbus_sim::CostProfile;

const ADD: FunctionId = FunctionId(1);
const WORKERS: usize = 2;
const PARTITIONS: u32 = 16;
const SMOKE_ITERATIONS: u32 = 150;
const FULL_ITERATIONS: u32 = 3000;

/// One measured configuration.
struct Run {
    label: &'static str,
    tasks_per_sec: f64,
    seconds: f64,
    frames_coalesced: u64,
    tcp_writes: u64,
    batched_commands: u64,
}

fn setup() -> AppSetup {
    AppSetup::new()
        .function(ADD, "add", |ctx| {
            let delta = ctx.params().as_scalar().map_err(|e| e.to_string())?;
            for x in ctx.write::<VecF64>(0)?.values.iter_mut() {
                *x += delta;
            }
            Ok(())
        })
        .object(LogicalObjectId(1), |_| VecF64::zeros(4))
}

/// Records the block once, drains the warm-up, then floods `iterations`
/// pipelined instantiations and times them against the closing barrier.
fn flood(ctx: &mut DriverContext, iterations: u32) -> DriverResult<(f64, f64)> {
    let data: Dataset<VecF64> = ctx.define_dataset("data", PARTITIONS)?;
    let block = |ctx: &mut DriverContext| {
        ctx.block("flood", |ctx| {
            ctx.submit_stage(
                StageSpec::new("add", ADD)
                    .write(&data)
                    .params(TaskParams::from_scalar(1.0)),
            )?;
            Ok(())
        })
    };
    block(ctx)?; // Recording pass.
    ctx.barrier()?;
    let start = Instant::now();
    for _ in 0..iterations {
        block(ctx)?;
    }
    ctx.barrier()?;
    let seconds = start.elapsed().as_secs_f64();
    // Closed form: one add per iteration plus the recording pass.
    let value = ctx.fetch_scalar(&data, 0)?;
    assert_eq!(
        value,
        (iterations + 1) as f64,
        "flood output diverged from the closed form"
    );
    Ok((iterations as f64 * PARTITIONS as f64 / seconds, seconds))
}

fn run(label: &'static str, config: ClusterConfig, iterations: u32) -> Run {
    let cluster = Cluster::start(config, setup());
    let report = cluster
        .run_driver(|ctx| flood(ctx, iterations))
        .expect("flood job completes");
    let (tasks_per_sec, seconds) = report.output;
    Run {
        label,
        tasks_per_sec,
        seconds,
        frames_coalesced: report.network.frames_coalesced,
        tcp_writes: report.network.tcp_writes,
        batched_commands: report.network.batched_commands,
    }
}

/// Wire-path throughput of the TCP transport in isolation: small control
/// messages pushed through one connection per-message (encode + lock + one
/// `write(2)` each) versus corked into batch frames (one `write(2)` per
/// [`WIRE_BATCH`] messages). This is the layer the corked writer optimizes,
/// measured without worker execution in the way.
const WIRE_BATCH: usize = 64;

fn wire_throughput(messages: usize) -> (f64, f64) {
    let fabric =
        TcpFabric::bind_loopback(&[NodeId::Driver, NodeId::Controller]).expect("bind fabric");
    let tx = fabric.endpoint(NodeId::Driver).expect("endpoint");
    let rx = fabric.endpoint(NodeId::Controller).expect("endpoint");
    let measure_once = |batched: bool| -> f64 {
        let start = Instant::now();
        if batched {
            for chunk in 0..messages / WIRE_BATCH {
                let batch: Vec<Message> = (0..WIRE_BATCH)
                    .map(|i| {
                        Message::driver0(DriverMessage::Checkpoint {
                            marker: (chunk * WIRE_BATCH + i) as u64,
                        })
                    })
                    .collect();
                tx.send_many(NodeId::Controller, batch).expect("send_many");
            }
        } else {
            for i in 0..messages {
                tx.send(
                    NodeId::Controller,
                    Message::driver0(DriverMessage::Checkpoint { marker: i as u64 }),
                )
                .expect("send");
            }
        }
        // Delivery included: the run is over when the receiver has drained
        // everything, so the sender cannot win by just filling kernel
        // buffers.
        let total = (messages / WIRE_BATCH) * WIRE_BATCH;
        for _ in 0..total {
            rx.recv_timeout(Duration::from_secs(30)).expect("drain");
        }
        total as f64 / start.elapsed().as_secs_f64()
    };
    // Best of three: on a loaded (or single-core) machine a run can land in
    // a scheduling ping-pong between sender, reader thread, and drain loop;
    // the best run reflects the path's actual capacity.
    let best =
        |batched: bool| -> f64 { (0..3).map(|_| measure_once(batched)).fold(0.0f64, f64::max) };
    let per_message = best(false);
    let batched = best(true);
    (per_message, batched)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iterations = if smoke {
        SMOKE_ITERATIONS
    } else {
        FULL_ITERATIONS
    };

    let runs = [
        run(
            "in-process per-message",
            ClusterConfig::new(WORKERS).with_per_message_control_plane(),
            iterations,
        ),
        run(
            "in-process batched",
            ClusterConfig::new(WORKERS),
            iterations,
        ),
        run(
            "tcp per-message",
            ClusterConfig::new(WORKERS)
                .with_tcp_transport()
                .with_per_message_control_plane(),
            iterations,
        ),
        run(
            "tcp batched",
            ClusterConfig::new(WORKERS).with_tcp_transport(),
            iterations,
        ),
    ];
    let [inproc_permsg, inproc_batched, tcp_permsg, tcp_batched] = &runs;
    let tcp_speedup = tcp_batched.tasks_per_sec / tcp_permsg.tasks_per_sec;
    let inproc_speedup = inproc_batched.tasks_per_sec / inproc_permsg.tasks_per_sec;
    let (wire_per_message, wire_batched) = wire_throughput(if smoke { 32_768 } else { 262_144 });
    let wire_speedup = wire_batched / wire_per_message;
    let sim_peak = CostProfile::paper().template_steady_state_throughput();

    let mut rows: Vec<TableRow> = runs
        .iter()
        .map(|r| {
            TableRow::new(
                format!("{} tasks/s", r.label),
                "-",
                format!("{:.0}", r.tasks_per_sec),
            )
        })
        .collect();
    rows.push(TableRow::new(
        "tcp batched/per-message",
        "-",
        format!("{tcp_speedup:.2}x"),
    ));
    rows.push(TableRow::new(
        "in-process batched/per-message",
        "-",
        format!("{inproc_speedup:.2}x"),
    ));
    rows.push(TableRow::new(
        "tcp frames coalesced",
        "-",
        format!(
            "{} (writes {} vs {})",
            tcp_batched.frames_coalesced, tcp_batched.tcp_writes, tcp_permsg.tcp_writes
        ),
    ));
    rows.push(TableRow::new(
        "wire per-message msgs/s",
        "-",
        format!("{wire_per_message:.0}"),
    ));
    rows.push(TableRow::new(
        "wire corked msgs/s",
        "-",
        format!("{wire_batched:.0} ({wire_speedup:.2}x)"),
    ));
    rows.push(TableRow::new(
        "sim steady-state peak (Table 2)",
        ">500,000",
        format!("{sim_peak:.0}"),
    ));
    rows.push(TableRow::new(
        "paper @100 workers (Fig 8)",
        "~128,000",
        "see fig8_task_throughput (sim)".to_string(),
    ));
    print_table(
        &format!(
            "Figure 8 (real runtime): {iterations} instantiations x {PARTITIONS} tasks on \
             {WORKERS} workers"
        ),
        &rows,
    );

    let mut json = BenchJson::new("fig8_real")
        .metric("iterations", iterations as u64)
        .metric("tasks_per_instantiation", PARTITIONS as u64)
        .metric("workers", WORKERS as u64)
        .metric("smoke", if smoke { 1.0 } else { 0.0 });
    for r in &runs {
        let key = r.label.replace([' ', '-'], "_");
        json.push(format!("{key}_tasks_per_sec"), r.tasks_per_sec);
        json.push(format!("{key}_seconds"), r.seconds);
        json.push(format!("{key}_frames_coalesced"), r.frames_coalesced);
        json.push(format!("{key}_tcp_writes"), r.tcp_writes);
        json.push(format!("{key}_batched_commands"), r.batched_commands);
    }
    json.push("tcp_batched_over_per_message", tcp_speedup);
    json.push("in_process_batched_over_per_message", inproc_speedup);
    json.push("wire_per_message_msgs_per_sec", wire_per_message);
    json.push("wire_corked_msgs_per_sec", wire_batched);
    json.push("wire_corked_over_per_message", wire_speedup);
    json.push("sim_steady_state_tasks_per_sec", sim_peak);
    // Pre-PR provenance: the same flood, built and run from the seed tree
    // (commit 7275044) on this PR's dev container, 2026-07-30 — the
    // "measure the baseline before optimizing" numbers this bench's
    // per-message mode approximates reproducibly.
    json.push(
        "seed_baseline_note",
        "seed commit 7275044, 2026-07-30: in-process 445547 tasks/s, tcp 313880 tasks/s",
    );
    json.push("paper_tasks_per_sec_100_workers", "~128,000");
    json.push("paper_peak_tasks_per_sec", ">500,000");
    let path = json.write_or_die();
    assert!(path.exists(), "JSON report missing after write");

    // Sanity floors: the real runtime must sustain a control-plane-driven
    // task rate on every path, the batched run must coalesce frames, and
    // batching must never *cost* throughput (generous noise guard; the full
    // run reports the real ratio).
    for r in &runs {
        assert!(
            r.tasks_per_sec > 500.0,
            "{} collapsed to {:.0} tasks/s",
            r.label,
            r.tasks_per_sec
        );
    }
    assert!(
        tcp_batched.frames_coalesced > 0,
        "batched TCP run coalesced nothing"
    );
    assert!(
        tcp_batched.tcp_writes < tcp_permsg.tcp_writes,
        "batched TCP run did not reduce write(2)s ({} vs {})",
        tcp_batched.tcp_writes,
        tcp_permsg.tcp_writes
    );
    assert!(
        tcp_speedup > 0.6,
        "batched TCP control plane regressed: {tcp_speedup:.2}x"
    );
    // The corked wire path must beat per-message sends decisively: this is
    // the layer where one write(2) replaces WIRE_BATCH of them.
    assert!(
        wire_speedup > 2.0,
        "corked wire path only {wire_speedup:.2}x over per-message"
    );
}
