//! Figure 8, multi-tenant: aggregate instantiation throughput of ONE
//! controller serving N concurrent driver sessions.
//!
//! This is the regime the paper's control-plane caching is for: each driver
//! runs a synchronous convergence loop (instantiate a recorded block, fetch
//! the result), so a single session is bound by its own round-trip stalls —
//! the controller sits idle between its requests. With N sessions the
//! controller fills every stall with another job's (fully isolated)
//! instantiation stream, and aggregate tasks/s scales with job count until
//! the pool is worker- or CPU-bound.
//!
//! The cluster runs in-process with a fixed per-message latency emulating a
//! datacenter network hop, in both control-plane modes (batched and
//! per-message), for 1 and [`JOBS`] concurrent sessions. Results go to
//! `BENCH_fig8_multijob.json`; the run asserts the acceptance floor —
//! aggregate throughput for 4 jobs at least 2x a single job.
//!
//! `--smoke` runs a small iteration count (the CI mode, so the binary
//! cannot rot).

use std::time::Instant;

use nimbus_bench::{print_table, BenchJson, TableRow};
use nimbus_core::appdata::{Scalar, VecF64};
use nimbus_core::TaskParams;
use nimbus_driver::{Dataset, DriverResult, Session, StageSpec};
use nimbus_runtime::quickstart::{quickstart_setup, ADD, PARTITIONS, SUM};
use nimbus_runtime::{Cluster, ClusterConfig};

const WORKERS: usize = 2;
const JOBS: usize = 4;
/// Emulated one-way network latency: what makes a synchronous driver's
/// round-trip stalls real (and overlappable) on the in-process fabric.
const LATENCY_MICROS: u64 = 200;
const SMOKE_ITERATIONS: u32 = 40;
const FULL_ITERATIONS: u32 = 400;

/// One driver session's loop: record the block once, then `iterations`
/// iterations of instantiate + synchronous fetch (the paper's
/// data-dependent steady state). Returns its completed instantiations.
fn driver_loop(session: &mut Session, iterations: u32) -> DriverResult<u64> {
    let data: Dataset<VecF64> = session.define_dataset("data", PARTITIONS)?;
    let total: Dataset<Scalar> = session.define_dataset("total", 1)?;
    let body = |ctx: &mut Session| {
        ctx.block("steady", |ctx| {
            ctx.submit_stage(
                StageSpec::new("add", ADD)
                    .write(&data)
                    .params(TaskParams::from_scalar(1.0)),
            )?;
            let mut sum = StageSpec::new("sum", SUM).partitions(1);
            for p in 0..data.partitions {
                sum = sum.read_partition(&data, p);
            }
            ctx.submit_stage(sum.write_partition(&total, 0))?;
            Ok(())
        })
    };
    body(session)?; // Recording pass.
    session.barrier()?;
    for _ in 0..iterations {
        body(session)?;
        session.fetch(&total, 0)?;
    }
    Ok(session.instantiations_sent)
}

struct Run {
    label: String,
    jobs: usize,
    instantiations_per_sec: f64,
    tasks_per_sec: f64,
    seconds: f64,
}

/// Runs `jobs` concurrent sessions against one cluster and measures the
/// aggregate completed-instantiation rate.
fn run(label: &str, jobs: usize, batched: bool, iterations: u32) -> Run {
    let mut config =
        ClusterConfig::new(WORKERS).with_latency(std::time::Duration::from_micros(LATENCY_MICROS));
    if !batched {
        config = config.with_per_message_control_plane();
    }
    let mut cluster = Cluster::start(config, quickstart_setup());
    let mut sessions = Vec::with_capacity(jobs);
    for _ in 0..jobs {
        sessions.push(cluster.connect_driver().expect("open session"));
    }
    let start = Instant::now();
    let handles: Vec<_> = sessions
        .into_iter()
        .map(|mut session| {
            std::thread::spawn(move || {
                let sent = driver_loop(&mut session, iterations).expect("driver loop");
                session.close().expect("close session");
                sent
            })
        })
        .collect();
    let total_instantiations: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("driver thread"))
        .sum();
    let seconds = start.elapsed().as_secs_f64();
    cluster.shutdown_and_join().expect("shutdown");
    let instantiations_per_sec = total_instantiations as f64 / seconds;
    Run {
        label: label.to_string(),
        jobs,
        instantiations_per_sec,
        // Each instantiation expands to PARTITIONS add tasks + 1 reduction.
        tasks_per_sec: instantiations_per_sec * (PARTITIONS + 1) as f64,
        seconds,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iterations = if smoke {
        SMOKE_ITERATIONS
    } else {
        FULL_ITERATIONS
    };

    let runs = [
        run("1 job, per-message", 1, false, iterations),
        run(
            &format!("{JOBS} jobs, per-message"),
            JOBS,
            false,
            iterations,
        ),
        run("1 job, batched", 1, true, iterations),
        run(&format!("{JOBS} jobs, batched"), JOBS, true, iterations),
    ];
    let [single_permsg, multi_permsg, single_batched, multi_batched] = &runs;
    let batched_scaling =
        multi_batched.instantiations_per_sec / single_batched.instantiations_per_sec;
    let permsg_scaling = multi_permsg.instantiations_per_sec / single_permsg.instantiations_per_sec;

    let mut rows: Vec<TableRow> = runs
        .iter()
        .map(|r| {
            TableRow::new(
                format!("{} inst/s (tasks/s)", r.label),
                "-",
                format!("{:.0} ({:.0})", r.instantiations_per_sec, r.tasks_per_sec),
            )
        })
        .collect();
    rows.push(TableRow::new(
        format!("{JOBS}-job/1-job scaling (batched)"),
        ">=2x",
        format!("{batched_scaling:.2}x"),
    ));
    rows.push(TableRow::new(
        format!("{JOBS}-job/1-job scaling (per-message)"),
        "-",
        format!("{permsg_scaling:.2}x"),
    ));
    print_table(
        &format!(
            "Figure 8 (multi-tenant): {iterations} instantiations/driver on {WORKERS} workers, \
             {LATENCY_MICROS}us one-way latency"
        ),
        &rows,
    );

    let mut json = BenchJson::new("fig8_multijob")
        .metric("iterations_per_driver", iterations as u64)
        .metric("jobs", JOBS as u64)
        .metric("workers", WORKERS as u64)
        .metric("latency_micros", LATENCY_MICROS)
        .metric("smoke", if smoke { 1.0 } else { 0.0 });
    for r in &runs {
        let key = r.label.replace([' ', ',', '-'], "_").replace("__", "_");
        json.push(format!("{key}_jobs"), r.jobs as u64);
        json.push(
            format!("{key}_instantiations_per_sec"),
            r.instantiations_per_sec,
        );
        json.push(format!("{key}_tasks_per_sec"), r.tasks_per_sec);
        json.push(format!("{key}_seconds"), r.seconds);
    }
    json.push("multi_over_single_batched", batched_scaling);
    json.push("multi_over_single_per_message", permsg_scaling);
    let path = json.write_or_die();
    assert!(path.exists(), "JSON report missing after write");

    // Sanity floor on every configuration.
    for r in &runs {
        assert!(
            r.instantiations_per_sec > 50.0,
            "{} collapsed to {:.0} inst/s",
            r.label,
            r.instantiations_per_sec
        );
    }
    // The acceptance criterion: one controller serves 4 jobs at >= 2x the
    // aggregate rate of a single round-trip-bound job. The multi-tenant
    // control plane fills one session's stalls with the others' work.
    assert!(
        batched_scaling >= 2.0,
        "{JOBS} jobs only scaled aggregate throughput {batched_scaling:.2}x over one job"
    );
}
