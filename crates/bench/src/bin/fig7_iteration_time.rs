//! Figure 7: iteration time of logistic regression and k-means on 20/50/100
//! workers for Spark-opt, Naiad-opt, and Nimbus (execution templates).

use nimbus_bench::{print_rows, print_table, BenchJson, TableRow};
use nimbus_sim::{experiments, CostProfile};

fn main() {
    let profile = CostProfile::paper();
    let lr = experiments::fig7_iteration_time(&profile, false);
    print_rows("Figure 7a: logistic regression", "workers", &lr);
    let km = experiments::fig7_iteration_time(&profile, true);
    print_rows("Figure 7b: k-means", "workers", &km);

    let lr100 = lr.last().expect("rows");
    print_table(
        "Figure 7a @100 workers: paper vs reproduced (seconds)",
        &[
            TableRow::new(
                "Spark-opt",
                "1.43",
                format!("{:.2}", lr100.get("spark_opt_s").unwrap()),
            ),
            TableRow::new(
                "Naiad-opt",
                "0.08",
                format!("{:.2}", lr100.get("naiad_opt_s").unwrap()),
            ),
            TableRow::new(
                "Nimbus",
                "0.06",
                format!("{:.2}", lr100.get("nimbus_s").unwrap()),
            ),
        ],
    );
    let km100 = km.last().expect("rows");
    print_table(
        "Figure 7b @100 workers: paper vs reproduced (seconds)",
        &[
            TableRow::new(
                "Spark-opt",
                "1.57",
                format!("{:.2}", km100.get("spark_opt_s").unwrap()),
            ),
            TableRow::new(
                "Naiad-opt",
                "0.11",
                format!("{:.2}", km100.get("naiad_opt_s").unwrap()),
            ),
            TableRow::new(
                "Nimbus",
                "0.10",
                format!("{:.2}", km100.get("nimbus_s").unwrap()),
            ),
        ],
    );
    BenchJson::new("fig7_iteration_time")
        .metric(
            "lr_spark_opt_s_100_workers",
            lr100.get("spark_opt_s").unwrap(),
        )
        .metric(
            "lr_naiad_opt_s_100_workers",
            lr100.get("naiad_opt_s").unwrap(),
        )
        .metric("lr_nimbus_s_100_workers", lr100.get("nimbus_s").unwrap())
        .metric(
            "km_spark_opt_s_100_workers",
            km100.get("spark_opt_s").unwrap(),
        )
        .metric(
            "km_naiad_opt_s_100_workers",
            km100.get("naiad_opt_s").unwrap(),
        )
        .metric("km_nimbus_s_100_workers", km100.get("nimbus_s").unwrap())
        .metric("paper_lr_nimbus_s_100_workers", 0.06)
        .metric("paper_km_nimbus_s_100_workers", 0.10)
        .write_or_die();
}
