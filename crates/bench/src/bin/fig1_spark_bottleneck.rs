//! Figure 1: the control plane of a centralized per-task scheduler becomes
//! the bottleneck — parallelizing Spark MLlib logistic regression reduces
//! computation time but increases completion time.

use nimbus_bench::{print_rows, print_table, BenchJson, TableRow};
use nimbus_sim::{experiments, CostProfile};

fn main() {
    let profile = CostProfile::paper();
    let rows = experiments::fig1_spark_bottleneck(&profile);
    print_rows("Figure 1: Spark MLlib LR, 30-100 workers", "workers", &rows);
    let at30 = rows.first().expect("rows");
    let at100 = rows.last().expect("rows");
    print_table(
        "Figure 1: paper vs reproduced",
        &[
            TableRow::new(
                "completion @30 workers (s)",
                "1.44",
                format!("{:.2}", at30.get("iteration_s").unwrap()),
            ),
            TableRow::new(
                "completion @100 workers (s)",
                "1.73",
                format!("{:.2}", at100.get("iteration_s").unwrap()),
            ),
            TableRow::new("shape", "completion grows while computation shrinks", {
                let grows = at100.get("iteration_s") > at30.get("iteration_s");
                let shrinks = at100.get("computation_s") < at30.get("computation_s");
                format!("grows={grows}, shrinks={shrinks}")
            }),
        ],
    );
    BenchJson::new("fig1_spark_bottleneck")
        .metric("completion_s_30_workers", at30.get("iteration_s").unwrap())
        .metric(
            "completion_s_100_workers",
            at100.get("iteration_s").unwrap(),
        )
        .metric(
            "computation_s_30_workers",
            at30.get("computation_s").unwrap(),
        )
        .metric(
            "computation_s_100_workers",
            at100.get("computation_s").unwrap(),
        )
        .metric("paper_completion_s_30_workers", 1.44)
        .metric("paper_completion_s_100_workers", 1.73)
        .write_or_die();
}
