//! Figure 9: a 35-iteration timeline showing template installation at
//! iteration 10, eviction of 50 workers at iteration 20, and their return at
//! iteration 30.

use nimbus_bench::{print_rows, print_table, BenchJson, TableRow};
use nimbus_sim::{experiments, CostProfile};

fn main() {
    let profile = CostProfile::paper();
    let rows = experiments::fig9_dynamic_scheduling(&profile);
    print_rows("Figure 9: dynamic adaptation timeline", "iteration", &rows);
    let pick = |i: usize| rows[i - 1].get("iteration_s").unwrap();
    print_table(
        "Figure 9 key iterations: paper vs reproduced (seconds)",
        &[
            TableRow::new(
                "templates disabled (iter 5)",
                "~1.07",
                format!("{:.2}", pick(5)),
            ),
            TableRow::new("installing (iter 10)", "~1.3", format!("{:.2}", pick(10))),
            TableRow::new(
                "steady state (iter 15)",
                "~0.06",
                format!("{:.2}", pick(15)),
            ),
            TableRow::new(
                "after eviction (iter 25)",
                "~0.12",
                format!("{:.2}", pick(25)),
            ),
            TableRow::new(
                "after restore (iter 32)",
                "~0.06",
                format!("{:.2}", pick(32)),
            ),
        ],
    );
    BenchJson::new("fig9_dynamic_scheduling")
        .metric("iteration_s_templates_disabled", pick(5))
        .metric("iteration_s_installing", pick(10))
        .metric("iteration_s_steady_state", pick(15))
        .metric("iteration_s_after_eviction", pick(25))
        .metric("iteration_s_after_restore", pick(32))
        .metric("paper_iteration_s_steady_state", 0.06)
        .write_or_die();
}
