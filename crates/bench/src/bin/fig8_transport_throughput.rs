//! Figure 8 companion: control-plane task throughput of the same iterative
//! job on the in-process fabric versus TCP loopback sockets.
//!
//! The paper's Figure 8 shows that execution templates keep the control
//! plane off the critical path; this binary measures how much of that
//! headroom survives a real wire — every control message encoded by the
//! binary codec, framed, and pushed through loopback TCP.

use std::time::{Duration, Instant};

use nimbus_bench::{print_table, BenchJson, TableRow};
use nimbus_net::{DriverMessage, Message, NodeId, TcpFabric, TransportEndpoint};
use nimbus_runtime::quickstart::{quickstart_driver, quickstart_setup, PARTITIONS};
use nimbus_runtime::{Cluster, ClusterConfig};

const WORKERS: usize = 4;
const ITERATIONS: u32 = 200;
/// Tasks per iteration: one `add` per partition plus one `sum`.
const TASKS_PER_ITERATION: u64 = PARTITIONS as u64 + 1;

struct Run {
    seconds: f64,
    tasks_per_sec: f64,
    control_bytes: u64,
    messages: u64,
}

fn run(config: ClusterConfig) -> Run {
    let cluster = Cluster::start(config, quickstart_setup());
    let start = Instant::now();
    let report = cluster
        .run_driver(|ctx| quickstart_driver(ctx, ITERATIONS))
        .expect("job completes");
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(report.output.len(), ITERATIONS as usize);
    let tasks = ITERATIONS as u64 * TASKS_PER_ITERATION;
    Run {
        seconds,
        tasks_per_sec: tasks as f64 / seconds,
        control_bytes: report.network.control_bytes,
        messages: report.network.messages,
    }
}

/// Median round-trip time of one small control message over the TCP
/// transport. With the old 20 ms poll interval in the accept/read loops an
/// idle endpoint could not deliver a message faster than its next poll
/// tick; with blocking reads the kernel wakes the reader the moment the
/// frame arrives.
fn tcp_round_trip_median() -> Duration {
    let fabric =
        TcpFabric::bind_loopback(&[NodeId::Driver, NodeId::Controller]).expect("bind fabric");
    let a = fabric.endpoint(NodeId::Driver).expect("endpoint");
    let b = fabric.endpoint(NodeId::Controller).expect("endpoint");
    // Warm the connections in both directions.
    a.send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
        .unwrap();
    b.recv().unwrap();
    b.send(NodeId::Driver, Message::driver0(DriverMessage::Barrier))
        .unwrap();
    a.recv().unwrap();
    let mut samples = Vec::with_capacity(200);
    for i in 0..200u64 {
        let start = Instant::now();
        a.send(
            NodeId::Controller,
            Message::driver0(DriverMessage::Checkpoint { marker: i }),
        )
        .unwrap();
        b.recv().unwrap();
        b.send(
            NodeId::Driver,
            Message::driver0(DriverMessage::Checkpoint { marker: i }),
        )
        .unwrap();
        a.recv().unwrap();
        samples.push(start.elapsed());
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let in_process = run(ClusterConfig::new(WORKERS));
    let tcp = run(ClusterConfig::new(WORKERS).with_tcp_transport());
    let rtt = tcp_round_trip_median();

    print_table(
        &format!(
            "Figure 8 companion: {ITERATIONS} iterations x {TASKS_PER_ITERATION} tasks on {WORKERS} workers"
        ),
        &[
            TableRow::new(
                "in-process tasks/s",
                "-",
                format!("{:.0}", in_process.tasks_per_sec),
            ),
            TableRow::new("tcp-loopback tasks/s", "-", format!("{:.0}", tcp.tasks_per_sec)),
            TableRow::new(
                "tcp slowdown",
                "-",
                format!("{:.2}x", tcp.seconds / in_process.seconds),
            ),
            TableRow::new(
                "control messages",
                "-",
                format!("{} / {}", in_process.messages, tcp.messages),
            ),
            TableRow::new(
                "control bytes",
                "-",
                format!("{} / {}", in_process.control_bytes, tcp.control_bytes),
            ),
            TableRow::new(
                "tcp median round-trip",
                "-",
                format!("{:.1} us", rtt.as_secs_f64() * 1e6),
            ),
        ],
    );

    // The supervised transport blocks in the kernel instead of polling every
    // 20 ms, so a full round trip (two one-way deliveries) must land far
    // below the old single-delivery poll floor.
    assert!(
        rtt < Duration::from_millis(20),
        "TCP round-trip regressed to the poll-loop era: {rtt:?} >= 20ms"
    );

    BenchJson::new("fig8_transport")
        .metric("in_process_tasks_per_sec", in_process.tasks_per_sec)
        .metric("tcp_tasks_per_sec", tcp.tasks_per_sec)
        .metric("tcp_slowdown", tcp.seconds / in_process.seconds)
        .metric("in_process_control_bytes", in_process.control_bytes)
        .metric("tcp_control_bytes", tcp.control_bytes)
        .metric("tcp_median_round_trip_us", rtt.as_secs_f64() * 1e6)
        .write_or_die();

    // Exact message counts differ by a few completion batches (workers
    // flush on idle, which is timing-dependent), but both transports must
    // account the same order of control traffic through the same codec.
    let ratio = tcp.control_bytes as f64 / in_process.control_bytes as f64;
    assert!(
        (0.8..1.2).contains(&ratio),
        "control-byte accounting diverged across transports: {ratio:.2}"
    );
    assert!(in_process.tasks_per_sec > 0.0 && tcp.tasks_per_sec > 0.0);
}
