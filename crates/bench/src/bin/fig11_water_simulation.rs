//! Figure 11: outer-loop iteration time of the particle-levelset water
//! simulation for MPI, Nimbus with templates, and Nimbus without templates.
//! Also runs the in-process water-simulation proxy end to end to show that
//! execution templates support its triply nested, data-dependent control
//! flow.

use nimbus_apps::water;
use nimbus_bench::{print_rows, print_table, BenchJson, TableRow};
use nimbus_runtime::{AppSetup, Cluster, ClusterConfig};
use nimbus_sim::{experiments, CostProfile};

fn main() {
    let profile = CostProfile::paper();
    let rows = experiments::fig11_water_simulation(&profile);
    print_rows("Figure 11: water simulation frame time", "row", &rows);
    let sim = &rows[0];
    print_table(
        "Figure 11: paper vs reproduced (seconds per frame)",
        &[
            TableRow::new("MPI", "31.7", format!("{:.1}", sim.get("mpi_s").unwrap())),
            TableRow::new(
                "Nimbus",
                "36.5",
                format!("{:.1}", sim.get("nimbus_s").unwrap()),
            ),
            TableRow::new(
                "Nimbus w/o templates",
                "196.8",
                format!("{:.1}", sim.get("nimbus_without_templates_s").unwrap()),
            ),
        ],
    );

    // End-to-end functional check on the real runtime (small grid).
    let config = water::WaterConfig::default();
    let mut setup = AppSetup::new();
    water::register(&mut setup, &config);
    let cluster = Cluster::start(ClusterConfig::new(4), setup);
    let report = cluster
        .run_driver(|ctx| water::run(ctx, &config))
        .expect("water proxy completes");
    println!(
        "\nWater proxy on the in-process runtime: {} frames, {} sub-steps, {} pressure iterations, \
         {} templates installed, {} template instantiations",
        report.output.frames,
        report.output.substeps,
        report.output.pressure_iterations,
        report.controller.controller_templates_installed,
        report.controller.controller_template_instantiations,
    );
    BenchJson::new("fig11_water")
        .metric("mpi_s_per_frame", sim.get("mpi_s").unwrap())
        .metric("nimbus_s_per_frame", sim.get("nimbus_s").unwrap())
        .metric(
            "nimbus_without_templates_s_per_frame",
            sim.get("nimbus_without_templates_s").unwrap(),
        )
        .metric("proxy_frames", report.output.frames as u64)
        .metric("proxy_substeps", report.output.substeps as u64)
        .metric(
            "proxy_template_instantiations",
            report.controller.controller_template_instantiations,
        )
        .metric("paper_nimbus_s_per_frame", 36.5)
        .write_or_die();
}
