//! Figure 10: migrating 5% of tasks every 5 iterations — edits versus full
//! dataflow re-installation.

use nimbus_bench::{print_rows, print_table, BenchJson, TableRow};
use nimbus_sim::{experiments, CostProfile};

fn main() {
    let profile = CostProfile::paper();
    let rows = experiments::fig10_migration(&profile);
    print_rows(
        "Figure 10: cumulative time, 20 iterations",
        "iteration",
        &rows,
    );
    let last = rows.last().expect("rows");
    let nimbus = last.get("nimbus_elapsed_s").unwrap();
    let naiad = last.get("naiad_elapsed_s").unwrap();
    print_table(
        "Figure 10: paper vs reproduced",
        &[
            TableRow::new("Nimbus 20 iterations (s)", "~1.3", format!("{nimbus:.2}")),
            TableRow::new("Naiad-opt 20 iterations (s)", "~2.4", format!("{naiad:.2}")),
            TableRow::new("speedup", "~2x", format!("{:.2}x", naiad / nimbus)),
        ],
    );
    BenchJson::new("fig10_migration")
        .metric("nimbus_elapsed_s_20_iterations", nimbus)
        .metric("naiad_elapsed_s_20_iterations", naiad)
        .metric("speedup", naiad / nimbus)
        .metric("paper_speedup", "~2x")
        .write_or_die();
}
