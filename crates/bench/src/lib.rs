//! # nimbus-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation:
//!
//! * Criterion benches (`benches/table{1,2,3}_*.rs`) measure the per-task
//!   costs of template installation, instantiation, and edits on this
//!   machine — the counterparts of Tables 1–3.
//! * Figure binaries (`src/bin/fig*.rs`) run the cluster simulator (and,
//!   where feasible, the real in-process runtime) to reproduce the shape of
//!   Figures 1 and 7–11, printing paper-vs-reproduced values side by side.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fixtures;
pub mod json;
pub mod report;

pub use fixtures::{record_block, BenchCluster, BlockShape};
pub use json::{BenchJson, MetricValue};
pub use report::{print_rows, print_table, TableRow};
